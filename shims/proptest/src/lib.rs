//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's surface this workspace uses: the
//! `proptest!` macro over `arg in strategy` argument lists, numeric
//! range strategies, `proptest::bool::ANY`, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, and `ProptestConfig::with_cases`.
//! Sampling is a deterministic splitmix64 stream seeded from the test
//! name, so failures reproduce exactly across runs. No shrinking: the
//! failing inputs are printed instead.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another sample.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Result of one test case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic sampling stream for one property test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from the test's name (stable across runs).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of sampled values for one macro argument.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}
int_strategy!(usize);
int_strategy!(u8);
int_strategy!(u16);
int_strategy!(u32);
int_strategy!(u64);
int_strategy!(i32);
int_strategy!(i64);

macro_rules! float_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    };
}
float_strategy!(f32);
float_strategy!(f64);

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_f64() < 0.5
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit option lists.

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options` (`prop::sample::select`).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> crate::Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut crate::TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs, proptest-style.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __tried: u32 = 0;
            let __max_tries = __cfg.cases.saturating_mul(64).max(64);
            while __accepted < __cfg.cases && __tried < __max_tries {
                __tried += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(&::std::format!("{} = {:?}, ", stringify!($arg), $arg));
                )+
                let __outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => { __accepted += 1; }
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property failed after {} cases: {}\n  inputs: {}",
                            __accepted, msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Rejects the current inputs (resample without counting the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and attributes on cases are accepted.
        #[test]
        fn ranges_and_assume(x in 1usize..=32, f in 0.25f64..0.75, b in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!((1..=32).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
            prop_assert_eq!(b as usize * 2, if b { 2 } else { 0 });
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..10 {
            assert_eq!((1usize..100).sample(&mut a), (1usize..100).sample(&mut b));
        }
    }
}
