//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`) with
//! a simple wall-clock harness: a short warm-up, then a timed run that
//! reports the mean iteration time. No statistics, plots, or saved
//! baselines — numbers print to stdout, which is all the repo's
//! `scripts/check.sh` and CHANGES.md entries need.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one benchmark directly on the criterion root.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size.max(10), &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size
            .unwrap_or_else(|| self.criterion.sample_size.max(10))
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("  {id}"), self.effective_samples(), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.effective_samples();
        run_one(&format!("  {id}"), samples, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handle: the closure passed to `iter` is what gets measured.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per iteration of the last `iter` call.
    pub mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also sizes very slow benchmarks).
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        // Budget ~200ms or `samples` iterations, whichever is smaller.
        let budget = Duration::from_millis(200);
        let iters = if once.is_zero() {
            self.samples.max(10)
        } else {
            ((budget.as_secs_f64() / once.as_secs_f64()) as usize).clamp(1, self.samples.max(1))
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("{label}: {:>12.3?} /iter", b.mean);
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert!(ran > 0);
    }
}
