//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates-io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen` for standard
//! floats, and `Rng::gen_range` over numeric ranges. The generator is a
//! splitmix64 stream — statistically fine for parameter initialisation
//! and synthetic data, and fully reproducible from the seed, which is
//! all the workspace requires (tests only assert determinism, never
//! specific values).

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution for `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<R: distributions::SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    /// Deterministic splitmix64 generator — the offline stand-in for
    /// `rand::rngs::StdRng`. Same seed ⇒ same stream, different seeds ⇒
    /// different streams (splitmix64 is a bijection of the counter).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    //! Sampling traits used by [`Rng::gen`](crate::Rng::gen) and
    //! [`Rng::gen_range`](crate::Rng::gen_range).

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types samplable from the standard distribution.
    pub trait Standard {
        /// Draws one value from `rng`.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Standard for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges samplable by [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange {
        /// The element type produced.
        type Output;
        /// Draws one value uniformly from the range.
        fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    macro_rules! float_range {
        ($t:ty) => {
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = <$t as Standard>::sample_standard(rng);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange for RangeInclusive<$t> {
                type Output = $t;
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = <$t as Standard>::sample_standard(rng);
                    lo + u * (hi - lo)
                }
            }
        };
    }
    float_range!(f32);
    float_range!(f64);

    macro_rules! int_range {
        ($t:ty) => {
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange for RangeInclusive<$t> {
                type Output = $t;
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        };
    }
    int_range!(usize);
    int_range!(u64);
    int_range!(u32);
    int_range!(i64);
    int_range!(i32);
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            let i = r.gen_range(3usize..10);
            assert!((3..10).contains(&i));
        }
    }
}
