//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel`'s unbounded MPSC
//! channels; `std::sync::mpsc` provides the identical surface
//! (`Sender` is `Clone + Send`, `try_recv` distinguishes `Empty` from
//! `Disconnected`), so this shim re-exports it under crossbeam's paths.

pub mod channel {
    //! Unbounded channels with crossbeam's names, backed by `std::sync::mpsc`.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel, crossbeam-style.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn round_trip_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
