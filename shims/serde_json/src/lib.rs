//! Offline stand-in for the `serde_json` crate.
//!
//! The workspace only needs to *parse* JSON it produced itself (the
//! Chrome-trace test round-trips `sim::trace` output), so this shim
//! implements a self-contained `Value` tree and a recursive-descent
//! parser for the full JSON grammar — no serde derive machinery.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like serde_json's arbitrary
    /// precision disabled default for the ranges this repo emits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object's key-value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (None for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == *self
    }
}

/// Parse error with byte offset context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this repo;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_json() {
        let json =
            r#"[{"name":"F mb0","cat":"forward","ph":"X","pid":0,"tid":1,"ts":12.5,"dur":3.25e1}]"#;
        let v = from_str(json).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["tid"].as_u64(), Some(1));
        assert_eq!(events[0]["dur"].as_f64(), Some(32.5));
        assert_eq!(events[0]["missing"], Value::Null);
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = from_str(r#"{"a":[1,-2.5,null,true],"s":"q\"\nA"}"#).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(-2.5));
        assert_eq!(v["a"][3], Value::Bool(true));
        assert_eq!(v["s"].as_str(), Some("q\"\nA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[] trailing").is_err());
    }
}
