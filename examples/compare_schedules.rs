//! Render every scheduling method side by side on the same small problem
//! (the paper's Figures 2–4 in one view) and compare bubble ratios and
//! peak in-flight activations.
//!
//! ```sh
//! cargo run --release --example compare_schedules
//! ```

use mepipe::schedule::{
    exec::{execute, UnitCost},
    generator::{Dapple, GPipe, TeraPipe},
    render::render,
    validate::{peak_in_flight, validate},
    Schedule,
};
use mepipe::{Dims, ScheduleGenerator, Svpp};

fn show(name: &str, schedule: &Schedule, cost: &UnitCost, unit_fraction: usize) {
    validate(schedule).expect("schedule must validate");
    let t = execute(schedule, cost).expect("schedule must execute");
    println!("=== {name} ===");
    println!("{}", render(schedule, cost).expect("renderable"));
    let peaks = peak_in_flight(schedule);
    println!(
        "bubble {:.1}%  makespan {}  stage-0 peak {} units of A/{unit_fraction} = {:.3}A\n",
        t.bubble_ratio() * 100.0,
        t.makespan,
        peaks[0],
        peaks[0] as f64 / unit_fraction as f64,
    );
}

fn main() {
    let (p, n, s) = (4usize, 4usize, 2usize);

    // Whole-micro-batch methods: one unit = A/p of activations; a forward
    // over a whole micro-batch takes `s` ticks of slice work.
    let coarse = UnitCost {
        fwd: s as f64,
        bwd: 2.0 * s as f64,
        wgrad: 0.0,
    };
    show(
        "GPipe",
        &GPipe.generate(&Dims::new(p, n)).unwrap(),
        &coarse,
        p,
    );
    show(
        "DAPPLE (1F1B)",
        &Dapple.generate(&Dims::new(p, n)).unwrap(),
        &coarse,
        p,
    );

    // Slice-level methods: one unit = A/(p·s).
    let fine = UnitCost {
        fwd: 1.0,
        bwd: 2.0,
        wgrad: 0.0,
    };
    show(
        "TeraPipe",
        &TeraPipe.generate(&Dims::new(p, n).slices(s)).unwrap(),
        &fine,
        p * s,
    );
    show(
        "SVPP (MEPipe), v=1",
        &Svpp::new().generate(&Dims::new(p, n).slices(s)).unwrap(),
        &fine,
        p * s,
    );
    show(
        "SVPP (MEPipe), v=2",
        &Svpp::new()
            .generate(&Dims::new(p, n).virtual_chunks(2).slices(s))
            .unwrap(),
        &fine,
        p * s * 2,
    );
    println!(
        "Tokens: F=forward B=backward; letter = micro-batch (capitals = 2nd chunk); digit = slice."
    );
}
