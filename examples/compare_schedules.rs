//! Render every scheduling method side by side on the same small problem
//! (the paper's Figures 2–4 in one view) and compare bubble ratios and
//! peak in-flight activations.
//!
//! ```sh
//! cargo run --release --example compare_schedules
//! ```

use mepipe::core::svpp::{generate_svpp, SvppConfig};
use mepipe::schedule::{
    baselines,
    exec::{execute, UnitCost},
    render::render,
    validate::{peak_in_flight, validate},
    Schedule,
};

fn show(name: &str, schedule: &Schedule, cost: &UnitCost, unit_fraction: usize) {
    validate(schedule).expect("schedule must validate");
    let t = execute(schedule, cost).expect("schedule must execute");
    println!("=== {name} ===");
    println!("{}", render(schedule, cost).expect("renderable"));
    let peaks = peak_in_flight(schedule);
    println!(
        "bubble {:.1}%  makespan {}  stage-0 peak {} units of A/{unit_fraction} = {:.3}A\n",
        t.bubble_ratio() * 100.0,
        t.makespan,
        peaks[0],
        peaks[0] as f64 / unit_fraction as f64,
    );
}

fn main() {
    let (p, n, s) = (4usize, 4usize, 2usize);

    // Whole-micro-batch methods: one unit = A/p of activations; a forward
    // over a whole micro-batch takes `s` ticks of slice work.
    let coarse = UnitCost { fwd: s as f64, bwd: 2.0 * s as f64, wgrad: 0.0 };
    show("GPipe", &baselines::generate_gpipe(p, n).unwrap(), &coarse, p);
    show("DAPPLE (1F1B)", &baselines::generate_dapple(p, n).unwrap(), &coarse, p);

    // Slice-level methods: one unit = A/(p·s).
    let fine = UnitCost { fwd: 1.0, bwd: 2.0, wgrad: 0.0 };
    show(
        "TeraPipe",
        &baselines::generate_terapipe(p, n, s).unwrap(),
        &fine,
        p * s,
    );
    show(
        "SVPP (MEPipe), v=1",
        &generate_svpp(&SvppConfig {
            stages: p,
            virtual_chunks: 1,
            slices: s,
            micro_batches: n,
            warmup_cap: None,
        })
        .unwrap(),
        &fine,
        p * s,
    );
    show(
        "SVPP (MEPipe), v=2",
        &generate_svpp(&SvppConfig {
            stages: p,
            virtual_chunks: 2,
            slices: s,
            micro_batches: n,
            warmup_cap: None,
        })
        .unwrap(),
        &fine,
        p * s * 2,
    );
    println!("Tokens: F=forward B=backward; letter = micro-batch (capitals = 2nd chunk); digit = slice.");
}
