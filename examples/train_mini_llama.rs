//! Train a mini-Llama end-to-end on the *real* threaded pipeline runtime
//! under an SVPP schedule, and verify against single-device execution.
//!
//! This exercises the whole MEPipe dataflow on live tensors: slice-wise
//! causal attention with KV handoff, reverse-slice dKV accumulation,
//! fine-grained weight-gradient draining while blocked on the
//! interconnect, and per-stage activation-memory tracking.
//!
//! ```sh
//! cargo run --release --example train_mini_llama
//! ```

use mepipe::model::config::TransformerConfig;
use mepipe::tensor::init::synthetic_tokens;
use mepipe::trace::bubble;
use mepipe::train::{
    metrics::run_metrics,
    optim::Sgd,
    params::ModelParams,
    pipeline::{PipelineRuntime, WgradMode},
    reference::batch_forward_backward,
};
use mepipe::{Dims, Mepipe, ScheduleGenerator};

fn main() {
    let cfg = TransformerConfig {
        seq_len: 64,
        ..TransformerConfig::tiny(4)
    };
    let (stages, slices, micro_batches) = (2usize, 4usize, 4usize);

    let schedule = Mepipe::new()
        .generate(&Dims::new(stages, micro_batches).slices(slices))
        .expect("valid SVPP config");

    let mut runtime = PipelineRuntime::new(ModelParams::init(cfg, 42), stages, 1);
    let mut reference = ModelParams::init(cfg, 42);
    let lr = 0.15;

    println!("step | pipeline loss | reference loss | drained W GEMMs | peak act bytes/stage");
    for step in 0..10u64 {
        let batch: Vec<Vec<usize>> = (0..micro_batches)
            .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 1000 + step * 16 + i as u64))
            .collect();

        let stats = runtime
            .train_step(&schedule, &batch, WgradMode::DrainOnWait, lr)
            .expect("train step");
        let r = batch_forward_backward(&reference, &batch);
        Sgd { lr }.step_model(&mut reference, &r.grads);

        println!(
            "{step:>4} | {:>13.5} | {:>14.5} | {:>15} | {:?}",
            stats.loss,
            r.loss,
            stats.drained_wgrads.iter().sum::<usize>(),
            stats.peak_bytes
        );
        assert!(
            (stats.loss - r.loss).abs() < 1e-3,
            "pipeline diverged from the single-device reference"
        );
    }
    println!("\npipelined SVPP training matches single-device training step for step ✓");

    // One more iteration with span tracing on: where did the wall-clock
    // time of a real pipelined step actually go?
    let runtime = runtime.with_tracing(true);
    let batch: Vec<Vec<usize>> = (0..micro_batches)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, 9000 + i as u64))
        .collect();
    let traced = runtime
        .run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None)
        .expect("traced iteration");
    println!();
    print!(
        "{}",
        bubble::attribute(traced.trace.as_ref().expect("trace")).render()
    );
    let reg = run_metrics(&traced);
    println!(
        "\nmetrics registry ({} families), sample of the Prometheus exposition:",
        reg.len()
    );
    for line in reg
        .to_prometheus_text()
        .lines()
        .filter(|l| l.starts_with("mepipe_stage_busy_seconds") || l.starts_with("mepipe_loss"))
    {
        println!("  {line}");
    }
}
