//! Grid-search the optimal parallel strategy for every system on a
//! cluster you describe — the Section 7.1 methodology as a library call.
//!
//! ```sh
//! cargo run --release --example strategy_search [7b|13b|34b] [gbs]
//! ```

use mepipe::hw::topology::ClusterSpec;
use mepipe::model::config::TransformerConfig;
use mepipe::strategy::{search_all, Method};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = match args.first().map(String::as_str) {
        Some("7b") => TransformerConfig::llama2_7b(),
        Some("34b") => TransformerConfig::llama2_34b(),
        _ => TransformerConfig::llama2_13b(),
    };
    let gbs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let cluster = ClusterSpec::rtx4090_cluster();

    println!(
        "Searching strategies: hidden {}, {} layers, GBS {gbs}, {} GPUs ({})",
        model.hidden,
        model.layers,
        cluster.num_devices(),
        cluster.accelerator.name
    );
    println!();
    println!(
        "{:<8} {:>12} {:>28} {:>9} {:>7}",
        "system", "iteration", "config (PP, CP/SPP, VP, rc)", "bubble", "MFU"
    );

    let mut best_baseline = f64::INFINITY;
    let mut mepipe = None;
    for (method, result) in search_all(&model, &cluster, gbs) {
        match result {
            Some(e) => {
                println!(
                    "{:<8} {:>9.0} ms {:>28} {:>8.1}% {:>6.1}%",
                    method.name(),
                    e.iteration_time * 1e3,
                    e.candidate.label(),
                    e.bubble_ratio * 100.0,
                    e.mfu * 100.0
                );
                if method == Method::Mepipe {
                    mepipe = Some(e.iteration_time);
                } else {
                    best_baseline = best_baseline.min(e.iteration_time);
                }
            }
            None => println!("{:<8} {:>12} {:>28}", method.name(), "infeasible", "-"),
        }
    }
    if let Some(t) = mepipe {
        if best_baseline.is_finite() {
            println!(
                "\nMEPipe speedup over the best baseline: {:.2}x",
                best_baseline / t
            );
        }
    }
}
