//! The paper's Section-6 pipeline end to end: *profile* real per-slice op
//! times on this machine, feed them to the *scheduler* + *simulator* to
//! predict the iteration, then *execute* the same schedule on the
//! threaded runtime and compare.
//!
//! ```sh
//! cargo run --release --example profile_and_predict
//! ```

use std::time::Instant;

use mepipe::model::config::TransformerConfig;
use mepipe::sim::engine::{simulate, SimConfig};
use mepipe::tensor::init::synthetic_tokens;
use mepipe::train::{
    params::ModelParams,
    pipeline::{PipelineRuntime, WgradMode},
    profiler::profile_chunk,
};
use mepipe::{Dims, Mepipe, ScheduleGenerator};

fn main() {
    let cfg = TransformerConfig {
        seq_len: 256,
        ..TransformerConfig::tiny(4)
    };
    let (stages, slices, micro_batches) = (2usize, 4usize, 4usize);
    let model = ModelParams::init(cfg, 99);

    // 1. Profile: measure F / Bi / W per slice on one chunk, for real.
    let layers_per_chunk = cfg.layers / stages;
    let profiled = profile_chunk(&model, layers_per_chunk, slices, 3);
    println!(
        "profiled per-slice forward times (ms): {:?}",
        profiled
            .forward
            .iter()
            .map(|t| (t * 1e3 * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "slice imbalance (last/first): {:.2}x — the Section 5 imbalance, measured",
        profiled.forward[slices - 1] / profiled.forward[0]
    );

    // 2. Schedule + simulate with the profiled costs.
    let schedule = Mepipe::new()
        .generate(&Dims::new(stages, micro_batches).slices(slices))
        .expect("valid config");
    let prediction = simulate(
        &schedule,
        &profiled,
        &SimConfig {
            dynamic_wgrad: true,
            include_dp_sync: false,
            include_optimizer: false,
            ..Default::default()
        },
    )
    .expect("simulation runs");
    println!(
        "predicted iteration: {:.1} ms (bubble {:.1}%)",
        prediction.iteration_time * 1e3,
        prediction.bubble_ratio() * 100.0
    );

    // 3. Execute the same schedule on the threaded runtime and time it.
    let rt = PipelineRuntime::new(model, stages, 1);
    let batch: Vec<Vec<usize>> = (0..micro_batches)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, i as u64))
        .collect();
    // Warm up allocators/caches once.
    let _ = rt
        .run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None)
        .expect("warm-up iteration");
    let t0 = Instant::now();
    let stats = rt
        .run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None)
        .expect("measured iteration");
    let measured = t0.elapsed().as_secs_f64();
    println!(
        "measured iteration : {:.1} ms (loss {:.4}, {} W GEMMs drained into waits)",
        measured * 1e3,
        stats.loss,
        stats.drained_wgrads.iter().sum::<usize>()
    );
    println!(
        "prediction/measured: {:.2} — thread scheduling and channel overheads \
account for the gap; the *shape* (which stages idle, where W drains) matches.",
        prediction.iteration_time / measured
    );
}
