//! Quickstart: generate an SVPP schedule, validate it, simulate it on the
//! paper's RTX 4090 cluster and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mepipe::hw::topology::ClusterSpec;
use mepipe::model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe::schedule::validate::validate;
use mepipe::sim::{
    engine::{simulate, SimConfig},
    metrics, ModelCost,
};
use mepipe::{Dims, Mepipe, ScheduleGenerator, SvppConfig};

fn main() -> Result<(), String> {
    // Llama-13B on 64x RTX 4090 with the paper's optimal MEPipe strategy:
    // pipeline 8, SPP slices 4, data parallel 8, global batch 128.
    let model = TransformerConfig::llama2_13b();
    let cluster = ClusterSpec::rtx4090_cluster();
    let spec = PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices: 4 },
        recompute: false,
        micro_batch_size: 1,
        global_batch: 128,
    };

    // 1. Generate the SVPP schedule (split backward for fine-grained W).
    let dims = Dims::new(spec.pp, spec.micro_batches())
        .virtual_chunks(spec.vp)
        .slices(4);
    let cfg = SvppConfig::from_dims(&dims);
    let schedule = Mepipe::new().generate(&dims)?;
    validate(&schedule)?;
    println!(
        "SVPP schedule: {} stages x {} ops, warmup budget f = {}",
        schedule.num_workers(),
        schedule.workers[0].len(),
        cfg.effective_warmup()
    );

    // 2. Price it and simulate one iteration under the 24 GB card's real
    //    activation budget — deferred weight-gradient work retains memory,
    //    so the budget is what forces stage 0 to drain eagerly (Section 5).
    let cost = ModelCost::new(ExecutionCost::new(model, spec, &cluster)?);
    let budget = mepipe::model::memory::activation_budget_bytes(
        &model,
        &spec,
        cluster.accelerator.usable_memory_bytes(),
    );
    let result = simulate(
        &schedule,
        &cost,
        &SimConfig {
            dynamic_wgrad: true,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )?;
    if let Some((worker, bytes)) = result.oom {
        return Err(format!(
            "OOM on worker {worker}: {:.1} GiB",
            bytes / 1024f64.powi(3)
        ));
    }

    println!("iteration time : {:.0} ms", result.iteration_time * 1e3);
    println!("bubble ratio   : {:.1}%", result.bubble_ratio() * 100.0);
    println!(
        "peak activation: {:.2} GiB on the most loaded worker",
        result
            .peak_activation_bytes
            .iter()
            .copied()
            .fold(0.0, f64::max)
            / 1024f64.powi(3)
    );
    println!(
        "MFU            : {:.1}%  (paper reports 35% / 5852 ms for this setup)",
        metrics::mfu(&result, cost.execution_cost()) * 100.0
    );
    Ok(())
}
