//! Pick the SVPP variant for a memory budget (Section 4.5's memory model)
//! and show the memory/bubble trade-off curve of Section 4.2.
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use mepipe::core::svpp::SvppConfig;
use mepipe::core::variants::{enumerate_variants, select_variant_for_budget};
use mepipe::hw::accelerator::AcceleratorSpec;
use mepipe::model::{
    config::TransformerConfig,
    memory,
    partition::{PartitionSpec, SequenceSplit},
};

fn main() {
    let model = TransformerConfig::llama2_13b();
    let spec = PartitionSpec {
        pp: 8,
        vp: 1,
        dp: 8,
        seq: SequenceSplit::SlicePipeline { slices: 4 },
        recompute: false,
        micro_batch_size: 1,
        global_batch: 128,
    };
    let cfg = SvppConfig::new(8, 4, spec.micro_batches());
    let gib = 1024f64.powi(3);

    println!("Llama-13B on one RTX 4090, MEPipe (PP 8, SPP 4, DP 8):");
    println!(
        "  static memory : {:.2} GiB (fp16 params+grads {:.2} + sharded Adam)",
        memory::static_bytes_per_worker(&model, &spec) / gib,
        4.0 * model.num_params() as f64 / spec.pp as f64 / gib,
    );
    let accel = AcceleratorSpec::rtx4090();
    println!(
        "  activation budget: {:.2} GiB -> at most {} in-flight slice units",
        memory::activation_budget_bytes(&model, &spec, accel.usable_memory_bytes()) / gib,
        memory::max_in_flight_units(&model, &spec, accel.usable_memory_bytes())
    );
    println!();

    println!("variant family (Section 4.2): f = forwards admitted before the first backward");
    println!(
        "{:>4} {:>14} {:>16}",
        "f", "peak act (GiB)", "bubble estimate"
    );
    for v in enumerate_variants(&cfg, &model, &spec) {
        println!(
            "{:>4} {:>14.2} {:>15.1}%",
            v.warmup,
            v.peak_activation_bytes / gib,
            v.bubble_estimate * 100.0
        );
    }
    println!();

    match select_variant_for_budget(cfg, &model, &spec, &accel) {
        Some(picked) => println!(
            "selected variant for the 24 GB card: f = {} (of the {}..={} family)",
            picked.warmup_cap.unwrap(),
            cfg.min_warmup(),
            cfg.max_warmup()
        ),
        None => println!("even the f = v*s floor does not fit — pick more slices or stages"),
    }
}
