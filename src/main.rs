//! `mepipe` — command-line front end to the MEPipe toolkit.
//!
//! ```text
//! mepipe schedule --method svpp -p 4 -s 2 -n 4 --render
//! mepipe simulate --model 13b --gbs 128 --pp 8 --spp 4 --dp 8 [--trace t.json]
//! mepipe search   --model 13b --gbs 128 [--cluster a100] [--verbose]
//! mepipe analyze  -p 8 -v 2 -s 4 -n 16
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use mepipe::core::analytic::{table3, AnalysisParams};
use mepipe::hw::topology::ClusterSpec;
use mepipe::model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    memory,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe::schedule::{
    exec::{execute, UnitCost},
    generator::{self, ScheduleGenerator},
    render::render,
    stats::message_stats,
    validate::{peak_in_flight, validate},
    Schedule,
};
use mepipe::sim::{
    engine::{simulate, SimConfig},
    metrics, to_chrome_trace, ModelCost,
};
use mepipe::strategy::{search_all, search_verbose, Method};
use mepipe::{Dims, Mepipe, Svpp};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = parse_flags(rest);
    let result = match cmd.as_str() {
        "schedule" => cmd_schedule(&flags),
        "simulate" => cmd_simulate(&flags),
        "search" => cmd_search(&flags),
        "analyze" => cmd_analyze(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "mepipe — slice-level pipeline scheduling toolkit

USAGE:
  mepipe schedule --method <svpp|dapple|gpipe|terapipe|vpp|zb|zbv|hanayo|dualpipe|blocks|synth>
                  -p <stages> [-v <chunks>] [-s <slices>] -n <micro-batches>
                  [-f <warmup>] [--split] [--render]
  mepipe simulate --model <7b|13b|34b> --gbs <N> --pp <N> --dp <N>
                  [--spp <N> | --cp <N>] [--vp <N>] [--recompute]
                  [--cluster <4090|a100>] [--trace <file.json>]
  mepipe search   --model <7b|13b|34b> --gbs <N> [--cluster <4090|a100>] [--verbose]
  mepipe analyze  -p <stages> [-v <chunks>] [-s <slices>] -n <micro-batches>";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            let value = args.get(i + 1).filter(|v| !v.starts_with('-'));
            match value {
                Some(v) => {
                    out.insert(key.to_string(), v.clone());
                    i += 2;
                }
                None => {
                    out.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn usize_flag(
    flags: &HashMap<String, String>,
    key: &str,
    default: Option<usize>,
) -> Result<usize, String> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        None => default.ok_or_else(|| format!("missing required flag --{key}")),
    }
}

fn model_flag(flags: &HashMap<String, String>) -> Result<TransformerConfig, String> {
    match flags.get("model").map(String::as_str) {
        Some("7b") => Ok(TransformerConfig::llama2_7b()),
        Some("13b") | None => Ok(TransformerConfig::llama2_13b()),
        Some("34b") => Ok(TransformerConfig::llama2_34b()),
        Some(other) => Err(format!("unknown model `{other}` (7b|13b|34b)")),
    }
}

fn cluster_flag(flags: &HashMap<String, String>) -> Result<ClusterSpec, String> {
    match flags.get("cluster").map(String::as_str) {
        Some("a100") => Ok(ClusterSpec::a100_cluster()),
        Some("4090") | None => Ok(ClusterSpec::rtx4090_cluster()),
        Some(other) => Err(format!("unknown cluster `{other}` (4090|a100)")),
    }
}

fn cmd_schedule(flags: &HashMap<String, String>) -> Result<(), String> {
    let p = usize_flag(flags, "p", None)?;
    let v = usize_flag(flags, "v", Some(1))?;
    let s = usize_flag(flags, "s", Some(1))?;
    let n = usize_flag(flags, "n", None)?;
    let split = flags.contains_key("split");
    let method = flags.get("method").map(String::as_str).unwrap_or("svpp");
    let dims = Dims::new(p, n).virtual_chunks(v).slices(s);
    let warmup: Option<usize> = flags
        .get("f")
        .map(|x| x.parse().map_err(|_| "bad --f"))
        .transpose()?;
    let generator: Box<dyn ScheduleGenerator> = match method {
        "svpp" | "mepipe" => {
            let (sv, me) = match warmup {
                Some(f) => (Svpp::new().warmup_cap(f), Mepipe::new().warmup_cap(f)),
                None => (Svpp::new(), Mepipe::new()),
            };
            if split {
                Box::new(me)
            } else {
                Box::new(sv)
            }
        }
        "dapple" => Box::new(generator::Dapple),
        "gpipe" => Box::new(generator::GPipe),
        "terapipe" => Box::new(generator::TeraPipe),
        "vpp" => Box::new(generator::Vpp),
        "zb" => Box::new(generator::Zb),
        "zbv" => Box::new(generator::Zbv),
        "hanayo" => Box::new(generator::Hanayo),
        "dualpipe" => match warmup {
            Some(f) => Box::new(mepipe::schedule::DualPipe::new().warmup_cap(f)),
            None => Box::new(mepipe::schedule::DualPipe::new()),
        },
        "blocks" => match warmup {
            Some(f) => Box::new(mepipe::schedule::Blocks::uniform().lifespan(f)),
            None => Box::new(mepipe::schedule::Blocks::uniform()),
        },
        "synth" => match warmup {
            Some(f) => Box::new(mepipe::core::Synth::new().cap(f)),
            None => Box::new(mepipe::core::Synth::new()),
        },
        other => return Err(format!("unknown method `{other}`")),
    };
    let dims = match method {
        "vpp" | "hanayo" => dims.virtual_chunks(v.max(2)),
        "zbv" | "dualpipe" => dims.virtual_chunks(2),
        _ => dims,
    };
    let schedule: Schedule = generator.generate(&dims)?;
    validate(&schedule)?;
    let t = execute(&schedule, &UnitCost::ones())?;
    let peaks = peak_in_flight(&schedule);
    let msgs = message_stats(&schedule);
    println!(
        "{}: {} workers x {} ops; bubble {:.1}% (unit costs); stage-0 peak {} units; {} boundary messages",
        schedule.meta.name,
        schedule.num_workers(),
        schedule.workers[0].len(),
        t.bubble_ratio() * 100.0,
        peaks[0],
        msgs.total(),
    );
    if flags.contains_key("render") {
        println!("{}", render(&schedule, &UnitCost::ones())?);
    }
    Ok(())
}

fn spec_from_flags(
    flags: &HashMap<String, String>,
    devices: usize,
) -> Result<PartitionSpec, String> {
    let pp = usize_flag(flags, "pp", None)?;
    let dp = usize_flag(flags, "dp", None)?;
    let vp = usize_flag(flags, "vp", Some(1))?;
    let gbs = usize_flag(flags, "gbs", None)?;
    let seq = match (flags.get("spp"), flags.get("cp")) {
        (Some(_), Some(_)) => return Err("--spp and --cp are mutually exclusive".into()),
        (Some(s), None) => SequenceSplit::SlicePipeline {
            slices: s.parse().map_err(|_| "bad --spp")?,
        },
        (None, Some(c)) => SequenceSplit::Context {
            size: c.parse().map_err(|_| "bad --cp")?,
        },
        (None, None) => SequenceSplit::None,
    };
    let spec = PartitionSpec {
        pp,
        vp,
        dp,
        seq,
        recompute: flags.contains_key("recompute"),
        micro_batch_size: 1,
        global_batch: gbs,
    };
    let _ = devices;
    Ok(spec)
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = model_flag(flags)?;
    let cluster = cluster_flag(flags)?;
    let spec = spec_from_flags(flags, cluster.num_devices())?;
    spec.validate(&model, cluster.num_devices())?;
    let dims = Dims::new(spec.pp, spec.micro_batches())
        .virtual_chunks(spec.vp)
        .slices(spec.seq.spp_slices());
    let schedule = Mepipe::new().generate(&dims)?;
    let cost = ModelCost::new(ExecutionCost::new(model, spec, &cluster)?);
    let budget =
        memory::activation_budget_bytes(&model, &spec, cluster.accelerator.usable_memory_bytes());
    let r = simulate(
        &schedule,
        &cost,
        &SimConfig {
            dynamic_wgrad: true,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )?;
    if let Some((w, bytes)) = r.oom {
        return Err(format!(
            "OOM: worker {w} needs {:.1} GiB of activations (budget {:.1} GiB)",
            bytes / 1024f64.powi(3),
            budget / 1024f64.powi(3)
        ));
    }
    println!("iteration time : {:.0} ms", r.iteration_time * 1e3);
    println!("bubble ratio   : {:.1}%", r.bubble_ratio() * 100.0);
    println!(
        "peak activation: {:.2} GiB",
        r.peak_activation_bytes.iter().copied().fold(0.0, f64::max) / 1024f64.powi(3)
    );
    println!(
        "MFU            : {:.1}%",
        metrics::mfu(&r, cost.execution_cost()) * 100.0
    );
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, to_chrome_trace(&r.segments))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("chrome trace   : {path} (open in chrome://tracing)");
    }
    Ok(())
}

fn cmd_search(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = model_flag(flags)?;
    let cluster = cluster_flag(flags)?;
    let gbs = usize_flag(flags, "gbs", Some(128))?;
    if flags.contains_key("verbose") {
        for m in Method::all() {
            println!("== {} ==", m.name());
            for (c, e) in search_verbose(m, &model, &cluster, gbs) {
                match e {
                    Ok(e) => println!(
                        "  {:<18} {:>8.0} ms  bubble {:>5.1}%  MFU {:>5.1}%",
                        c.label(),
                        e.iteration_time * 1e3,
                        e.bubble_ratio * 100.0,
                        e.mfu * 100.0
                    ),
                    Err(why) => println!("  {:<18} infeasible: {why}", c.label()),
                }
            }
        }
        return Ok(());
    }
    for (m, e) in search_all(&model, &cluster, gbs) {
        match e {
            Some(e) => println!(
                "{:<8} {:>8.0} ms  {:<16}  bubble {:>5.1}%  MFU {:>5.1}%",
                m.name(),
                e.iteration_time * 1e3,
                e.candidate.label(),
                e.bubble_ratio * 100.0,
                e.mfu * 100.0
            ),
            None => println!("{:<8} infeasible", m.name()),
        }
    }
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let a = AnalysisParams {
        p: usize_flag(flags, "p", None)?,
        v: usize_flag(flags, "v", Some(1))?,
        s: usize_flag(flags, "s", Some(1))?,
        n: usize_flag(flags, "n", None)?,
    };
    println!(
        "Table 3 closed forms at p={}, v={}, s={}, n={}:",
        a.p, a.v, a.s, a.n
    );
    println!("{:<12} {:>12} {:>12}", "method", "bubble", "memory (A)");
    for row in table3(a) {
        let fmt = |x: Option<f64>| x.map_or("-".into(), |v| format!("{v:.3}"));
        println!(
            "{:<12} {:>12} {:>12}",
            row.method,
            fmt(row.bubble_ratio),
            fmt(row.memory_fraction)
        );
    }
    Ok(())
}
