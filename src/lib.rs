//! MEPipe — memory-efficient slice-level pipeline scheduling for LLM
//! training, a Rust reproduction of the EuroSys '25 paper.
//!
//! This facade crate re-exports every subsystem under one roof:
//!
//! * [`hw`] — accelerators, links, cluster topology, pricing.
//! * [`model`] — transformer configurations and the FLOP/memory cost model.
//! * [`schedule`] — the schedule IR plus baseline schedules (GPipe, DAPPLE,
//!   VPP, Hanayo, TeraPipe, zero-bubble).
//! * [`core`] — the paper's contribution: SVPP schedule generation, its
//!   memory-limited variants, backward rescheduling, fine-grained
//!   weight-gradient computation and the closed-form analysis of Table 3.
//! * [`sim`] — discrete-event cluster simulator that executes schedules.
//! * [`tensor`] — from-scratch CPU tensor library with explicit backward.
//! * [`train`] — real threaded pipeline training runtime on a mini-Llama.
//! * [`trace`] — measured-execution tracing: per-op span rings, the shared
//!   Chrome/Perfetto writer, bubble attribution and the metrics registry.
//! * [`strategy`] — parallel-strategy grid search (Tables 5–8).
//!
//! # Examples
//!
//! Every scheduling method generates through the unified
//! [`ScheduleGenerator`] API from the same [`Dims`]:
//!
//! ```
//! use mepipe::{Dims, ScheduleGenerator, Svpp};
//!
//! // The Figure 4(a) schedule: 4 stages, 2 slices, 4 micro-batches.
//! let schedule = Svpp::new().generate(&Dims::new(4, 4).slices(2)).unwrap();
//! assert_eq!(schedule.num_workers(), 4);
//! ```
#![warn(missing_docs)]

pub use mepipe_core as core;
pub use mepipe_hw as hw;
pub use mepipe_model as model;
pub use mepipe_schedule as schedule;
pub use mepipe_sim as sim;
pub use mepipe_strategy as strategy;
pub use mepipe_tensor as tensor;
pub use mepipe_trace as trace;
pub use mepipe_train as train;

pub use mepipe_core::svpp::{Mepipe, Svpp, SvppConfig};
pub use mepipe_schedule::generator::{Dims, ScheduleError, ScheduleGenerator};
