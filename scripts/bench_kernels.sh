#!/usr/bin/env bash
# Runs the kernel-engine benchmark and refreshes BENCH_kernels.json at
# the repo root. The bench compares the blocked/packed kernels against
# the naive scalar references (single thread) and records worker-pool
# scaling; see crates/bench/benches/kernels.rs for what is measured.
#
# Numbers are machine-dependent — re-run this after touching anything
# under crates/tensor/src/ops/ or crates/tensor/src/pool.rs so the
# checked-in JSON matches the code.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p mepipe-bench --bench kernels
