#!/usr/bin/env bash
# Runs the transport-layer benchmark and refreshes BENCH_comm.json at the
# repo root: the same MEPipe training iteration (2 stages x 4 slices x 4
# micro-batches) on every mepipe-comm backend — in-process bounded
# queues, framed tensors over Unix-domain sockets, and link emulation at
# PCIe 4.0 and 100G InfiniBand speeds. The socket and in-process rows are
# repeated under the bf16 wire codec (socket_uds_bf16, inproc_bf16) so
# the JSON records the payload compression alongside the f32 baseline;
# each row carries payload_precodec_bytes / payload_postcodec_bytes /
# encode_overlap_s from the per-link codec counters. Emulated rows include the
# measured/modeled wire-time ratio from mepipe_sim::commcheck; expect it
# well above 1 on fast links, where per-frame sleeps are dominated by OS
# timer granularity and ack round trips (see crates/sim/src/commcheck.rs).
#
# Numbers are machine-dependent — re-run after touching the transport,
# the frame codec, or the pipeline runtime so the checked-in JSON matches
# the code.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p mepipe-bench --bench comm
