#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, build and tests.
#
# Everything runs against the vendored shim crates (see .cargo/config.toml
# and shims/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> schedule-zoo smoke (render + validate every registered generator)"
cargo run --release -p mepipe-bench --bin experiments -- zoo

echo "==> solver smoke (full synthesis per grid point, 10 s wall-clock cap)"
cargo run --release -p mepipe-bench --bin experiments -- solver_smoke

echo "==> train bench smoke (one untimed pipeline iteration)"
cargo bench -p mepipe-bench --bench train -- --smoke

echo "==> comm bench smoke (one untimed iteration per transport backend)"
cargo bench -p mepipe-bench --bench comm -- --smoke

echo "==> comm bench gate (socket_uds <= 1.10x inproc, bf16 codec parity)"
cargo bench -p mepipe-bench --bench comm -- --gate

echo "==> multi-process smoke (4 worker processes over Unix sockets)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 4

echo "==> multi-process codec smoke (2 workers, bf16 wire codec)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 2 --codec bf16

echo "==> trace-report smoke (traced 2-stage iteration: measured+sim traces, bubble, metrics)"
TRACE_DIR="$(mktemp -d)"
# The binary itself validates the trace JSON parses and holds one
# compute track per stage, and that tracing is bit-invisible.
cargo run --release -p mepipe-train --bin mepipe-worker -- trace-report \
  --stages 2 --micro-batches 2 --slices 4 --seq-len 32 --layers 4 --out "$TRACE_DIR"
for f in measured.trace.json sim.trace.json bubble.txt bubblecheck.txt metrics.json metrics.prom; do
  test -s "$TRACE_DIR/$f" || { echo "trace-report did not write $f"; exit 1; }
done
rm -rf "$TRACE_DIR"

echo "==> merged-trace smoke (4 worker processes, one epoch-aligned Chrome JSON)"
MERGE_DIR="$(mktemp -d)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 4 \
  --trace-out "$MERGE_DIR/merged.trace.json" --metrics-out "$MERGE_DIR/metrics.prom"
test -s "$MERGE_DIR/merged.trace.json" || { echo "launch did not write a merged trace"; exit 1; }
test -s "$MERGE_DIR/metrics.prom" || { echo "launch did not write metrics"; exit 1; }
rm -rf "$MERGE_DIR"

echo "==> autotune smoke (4 workers over UDS, 2 calibration rounds, strict error decrease)"
# The binary asserts the bubblecheck mean relative error strictly
# decreases across rounds and that the hot-swapped schedule reproduces
# the in-process loss bit for bit.
AUTOTUNE_DIR="$(mktemp -d)"
cargo run --release -p mepipe-train --bin mepipe-worker -- autotune \
  --stages 4 --rounds 2 --dir "$AUTOTUNE_DIR"
rm -rf "$AUTOTUNE_DIR"

echo "==> fault-injection smoke (dropped/corrupted frames, retried, same loss)"
cargo run --release -p mepipe-train --bin mepipe-worker -- selftest-faults

echo "==> memcheck smoke (measured stage peaks vs the schedule's in-flight model, Fig-8 shape)"
# The binary exits non-zero when any stage's measured/modeled ratio
# leaves the [0.5, 2] warning band or a metric name fails the lint.
cargo run --release -p mepipe-train --bin mepipe-worker -- memcheck \
  --stages 4 --micro-batches 8 --slices 2 --seq-len 32 --layers 4

echo "==> control-plane smoke 1/2 (oneshot: 2 spooled jobs, one chaos-killed, on a 1x4 fleet)"
# The serve exit code is the assertion: 0 only if every job completed
# with zero iterations lost beyond its checkpoint interval and every
# requested replay verification was bit-identical.
cargo build --release -p mepipe-ctl --bin mepipe-ctl
CTL_BIN=target/release/mepipe-ctl
CTL_DIR="$(mktemp -d)"
mkdir -p "$CTL_DIR/spool"
cat > "$CTL_DIR/spool/steady.toml" <<'EOF'
name = "steady"
iters = 4
stages = 2
layers = 4
micro_batches = 2
slices = 2
seq_len = 16
checkpoint_interval = 2
verify = true
EOF
cat > "$CTL_DIR/spool/chaotic.toml" <<'EOF'
name = "chaotic"
iters = 6
stages = 2
layers = 4
micro_batches = 2
slices = 2
seq_len = 16
checkpoint_interval = 2
verify = true
kill_stage = 1
kill_at_iter = 3
EOF
timeout 300 "$CTL_BIN" serve --socket "$CTL_DIR/ctl.sock" --spool "$CTL_DIR/spool" \
  --out "$CTL_DIR/out" --nodes 1 --slots-per-node 4 --tick-ms 20 \
  --oneshot --expect-jobs 2
grep -q 'mepipe_ctl_job_restarts_total{job="chaotic"} 1' "$CTL_DIR/out/metrics.prom" \
  || { echo "chaos job did not restart exactly once"; exit 1; }
grep -q 'mepipe_ctl_job_lost_beyond_interval_total{job="chaotic"} 0' "$CTL_DIR/out/metrics.prom" \
  || { echo "recovery lost more than one checkpoint interval"; exit 1; }
# The chaos kill must also leave a flight-recorder dump whose recent
# events name the killed stage.
test -s "$CTL_DIR/out/postmortem-chaotic.json" \
  || { echo "chaos kill left no postmortem dump"; exit 1; }
grep -q 'stage 1 exited' "$CTL_DIR/out/postmortem-chaotic.json" \
  || { echo "postmortem does not name the killed stage"; exit 1; }
grep -q '"stage":1' "$CTL_DIR/out/postmortem-chaotic.json" \
  || { echo "postmortem events carry no stage tag"; exit 1; }
rm -rf "$CTL_DIR"

echo "==> control-plane smoke 2/2 (drain mid-run: live re-shard off the drained node)"
CTL_DIR="$(mktemp -d)"
cat > "$CTL_DIR/elastic.toml" <<'EOF'
name = "elastic"
iters = 40
stages = 2
layers = 4
micro_batches = 4
slices = 2
seq_len = 16
checkpoint_interval = 2
verify = true
EOF
timeout 300 "$CTL_BIN" serve --socket "$CTL_DIR/ctl.sock" --out "$CTL_DIR/out" \
  --nodes 2 --slots-per-node 2 --tick-ms 20 --http 127.0.0.1:0 \
  2> "$CTL_DIR/serve.log" &
CTL_PID=$!
"$CTL_BIN" submit --socket "$CTL_DIR/ctl.sock" "$CTL_DIR/elastic.toml"
# The daemon announces its bound observability address in the event log.
WORKER_BIN=target/release/mepipe-worker
OBS_ADDR=""
for _ in $(seq 1 200); do
  OBS_ADDR=$(grep -o 'http://[0-9.:]*' "$CTL_DIR/serve.log" 2>/dev/null | head -1 | sed 's|http://||' || true)
  if [ -n "$OBS_ADDR" ]; then break; fi
  sleep 0.05
done
test -n "$OBS_ADDR" || { echo "daemon never announced its observability endpoint"; exit 1; }
[ "$("$WORKER_BIN" http-get "$OBS_ADDR" /healthz)" = "ok" ] \
  || { echo "/healthz did not answer ok"; exit 1; }
"$WORKER_BIN" http-get "$OBS_ADDR" /status | grep -q '"jobs"' \
  || { echo "/status is missing the jobs array"; exit 1; }
# Wait for a published checkpoint (a stage logs iter 2 only after
# iter-2.bin landed) by scraping the live endpoint with the exporter's
# own client; the completed-iterations gauge must be monotone under
# load. Then drain the node the gang packed onto.
PREV=-1
for _ in $(seq 1 600); do
  DONE=$("$WORKER_BIN" http-get "$OBS_ADDR" /metrics 2>/dev/null \
    | awk '/^mepipe_ctl_job_completed_iterations\{job="elastic"\}/ {print $2}' || true)
  DONE=${DONE%%.*}
  DONE=${DONE:-0}
  if [ "$DONE" -lt "$PREV" ]; then
    echo "completed iterations went backwards ($PREV -> $DONE)"; exit 1
  fi
  PREV=$DONE
  if [ "$DONE" -ge 3 ]; then break; fi
  sleep 0.05
done
[ "$PREV" -ge 3 ] || { echo "job never reached 3 completed iterations"; exit 1; }
"$WORKER_BIN" http-get "$OBS_ADDR" /metrics \
  | grep -q 'mepipe_ctl_stage_completed_iterations' \
  || { echo "live scrape is missing per-stage progress"; exit 1; }
"$CTL_BIN" drain --socket "$CTL_DIR/ctl.sock" node-0
"$CTL_BIN" shutdown --socket "$CTL_DIR/ctl.sock"
wait "$CTL_PID"
grep -q 'mepipe_ctl_job_reshards_total{job="elastic"} 1' "$CTL_DIR/out/metrics.prom" \
  || { echo "drain did not trigger exactly one live re-shard"; exit 1; }
grep -q 'mepipe_ctl_job_lost_beyond_interval_total{job="elastic"} 0' "$CTL_DIR/out/metrics.prom" \
  || { echo "re-shard lost more than one checkpoint interval"; exit 1; }
rm -rf "$CTL_DIR"

echo "==> cargo test -q --workspace (tier-1 + workspace suites)"
cargo test -q --workspace

echo "All checks passed."
