#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, build and tests.
#
# Everything runs against the vendored shim crates (see .cargo/config.toml
# and shims/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> train bench smoke (one untimed pipeline iteration)"
cargo bench -p mepipe-bench --bench train -- --smoke

echo "==> comm bench smoke (one untimed iteration per transport backend)"
cargo bench -p mepipe-bench --bench comm -- --smoke

echo "==> multi-process smoke (4 worker processes over Unix sockets)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 4

echo "==> fault-injection smoke (dropped/corrupted frames, retried, same loss)"
cargo run --release -p mepipe-train --bin mepipe-worker -- selftest-faults

echo "==> cargo test -q --workspace (tier-1 + workspace suites)"
cargo test -q --workspace

echo "All checks passed."
