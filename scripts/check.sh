#!/usr/bin/env bash
# Full offline quality gate: formatting, lints, build and tests.
#
# Everything runs against the vendored shim crates (see .cargo/config.toml
# and shims/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> schedule-zoo smoke (render + validate every registered generator)"
cargo run --release -p mepipe-bench --bin experiments -- zoo

echo "==> solver smoke (full synthesis per grid point, 10 s wall-clock cap)"
cargo run --release -p mepipe-bench --bin experiments -- solver_smoke

echo "==> train bench smoke (one untimed pipeline iteration)"
cargo bench -p mepipe-bench --bench train -- --smoke

echo "==> comm bench smoke (one untimed iteration per transport backend)"
cargo bench -p mepipe-bench --bench comm -- --smoke

echo "==> comm bench gate (socket_uds <= 1.10x inproc, bf16 codec parity)"
cargo bench -p mepipe-bench --bench comm -- --gate

echo "==> multi-process smoke (4 worker processes over Unix sockets)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 4

echo "==> multi-process codec smoke (2 workers, bf16 wire codec)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 2 --codec bf16

echo "==> trace-report smoke (traced 2-stage iteration: measured+sim traces, bubble, metrics)"
TRACE_DIR="$(mktemp -d)"
# The binary itself validates the trace JSON parses and holds one
# compute track per stage, and that tracing is bit-invisible.
cargo run --release -p mepipe-train --bin mepipe-worker -- trace-report \
  --stages 2 --micro-batches 2 --slices 4 --seq-len 32 --layers 4 --out "$TRACE_DIR"
for f in measured.trace.json sim.trace.json bubble.txt bubblecheck.txt metrics.json metrics.prom; do
  test -s "$TRACE_DIR/$f" || { echo "trace-report did not write $f"; exit 1; }
done
rm -rf "$TRACE_DIR"

echo "==> merged-trace smoke (4 worker processes, one epoch-aligned Chrome JSON)"
MERGE_DIR="$(mktemp -d)"
cargo run --release -p mepipe-train --bin mepipe-worker -- launch --stages 4 \
  --trace-out "$MERGE_DIR/merged.trace.json" --metrics-out "$MERGE_DIR/metrics.prom"
test -s "$MERGE_DIR/merged.trace.json" || { echo "launch did not write a merged trace"; exit 1; }
test -s "$MERGE_DIR/metrics.prom" || { echo "launch did not write metrics"; exit 1; }
rm -rf "$MERGE_DIR"

echo "==> autotune smoke (4 workers over UDS, 2 calibration rounds, strict error decrease)"
# The binary asserts the bubblecheck mean relative error strictly
# decreases across rounds and that the hot-swapped schedule reproduces
# the in-process loss bit for bit.
AUTOTUNE_DIR="$(mktemp -d)"
cargo run --release -p mepipe-train --bin mepipe-worker -- autotune \
  --stages 4 --rounds 2 --dir "$AUTOTUNE_DIR"
rm -rf "$AUTOTUNE_DIR"

echo "==> fault-injection smoke (dropped/corrupted frames, retried, same loss)"
cargo run --release -p mepipe-train --bin mepipe-worker -- selftest-faults

echo "==> cargo test -q --workspace (tier-1 + workspace suites)"
cargo test -q --workspace

echo "All checks passed."
