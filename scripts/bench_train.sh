#!/usr/bin/env bash
# Runs the end-to-end training-iteration benchmark and refreshes
# BENCH_train.json at the repo root: whole `train_step` iterations of the
# threaded pipeline runtime on a mini-Llama (2 stages x 8 slices x 4
# micro-batches), plus the data-parallel replica scenario. The JSON also
# records the pre-arena baseline measured on the same config, so the
# speedup field is a real before/after; see crates/bench/benches/train.rs.
#
# Numbers are machine-dependent — re-run this after touching the arena,
# the kernels, or the pipeline runtime so the checked-in JSON matches the
# code. On a shared machine, run it a few times and keep a representative
# window: the bench already takes the minimum over samples inside one
# run, but cross-run drift can still be large.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p mepipe-bench --bench train
