#!/usr/bin/env bash
# Runs the end-to-end training-iteration benchmark and refreshes
# BENCH_train.json at the repo root: whole `train_step` iterations of the
# threaded pipeline runtime on a mini-Llama (2 stages x 8 slices x 4
# micro-batches), the data-parallel replica scenario, the multi-process
# launch scenario, the online-autotune scenario (calibration loop on
# an emulated 2 ms/message link; `autotune_speedup` records iteration
# time before vs after the calibrated hot-swap), and the chaos-recovery
# scenario (the same job clean vs chaos-killed under the mepipe-ctl
# daemon; `recovery_overhead` is the wall-clock price of detection +
# restart + re-running at most one checkpoint interval). The JSON also records
# the pre-arena baseline measured on the same config, so the speedup
# field is a real before/after; see crates/bench/benches/train.rs.
#
# Numbers are machine-dependent — re-run this after touching the arena,
# the kernels, the pipeline runtime, or the calibration loop so the
# checked-in JSON matches the code. On a shared machine, run it a few
# times and keep a representative window: the bench already takes the
# minimum over samples inside one run, but cross-run drift can still be
# large.
set -euo pipefail
cd "$(dirname "$0")/.."

# The launch scenario shells out to the release worker binary.
cargo build --release -p mepipe-train --bin mepipe-worker

cargo bench -p mepipe-bench --bench train
