/root/repo/target/release/examples/strategy_search-582c6552a3a6a072.d: examples/strategy_search.rs

/root/repo/target/release/examples/strategy_search-582c6552a3a6a072: examples/strategy_search.rs

examples/strategy_search.rs:
