/root/repo/target/release/examples/compare_schedules-62a809806cce4c98.d: examples/compare_schedules.rs

/root/repo/target/release/examples/compare_schedules-62a809806cce4c98: examples/compare_schedules.rs

examples/compare_schedules.rs:
