/root/repo/target/release/examples/train_mini_llama-4cbac1983bf8fc81.d: examples/train_mini_llama.rs

/root/repo/target/release/examples/train_mini_llama-4cbac1983bf8fc81: examples/train_mini_llama.rs

examples/train_mini_llama.rs:
