/root/repo/target/release/examples/quickstart-3d1e0d3d4f5c70d1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3d1e0d3d4f5c70d1: examples/quickstart.rs

examples/quickstart.rs:
