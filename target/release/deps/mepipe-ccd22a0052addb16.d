/root/repo/target/release/deps/mepipe-ccd22a0052addb16.d: src/lib.rs

/root/repo/target/release/deps/libmepipe-ccd22a0052addb16.rlib: src/lib.rs

/root/repo/target/release/deps/libmepipe-ccd22a0052addb16.rmeta: src/lib.rs

src/lib.rs:
