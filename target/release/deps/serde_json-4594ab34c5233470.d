/root/repo/target/release/deps/serde_json-4594ab34c5233470.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-4594ab34c5233470.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-4594ab34c5233470.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
