/root/repo/target/release/deps/simulator-39cc63685a36c72e.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-39cc63685a36c72e: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
