/root/repo/target/release/deps/rand-935e0075a2e1c9b2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-935e0075a2e1c9b2.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-935e0075a2e1c9b2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
