/root/repo/target/release/deps/mepipe_hw-ff0d3660acd20de1.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libmepipe_hw-ff0d3660acd20de1.rlib: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libmepipe_hw-ff0d3660acd20de1.rmeta: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
