/root/repo/target/release/deps/serde_json-3ccfa464abbdbe76.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3ccfa464abbdbe76.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3ccfa464abbdbe76.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
