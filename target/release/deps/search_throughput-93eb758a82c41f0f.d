/root/repo/target/release/deps/search_throughput-93eb758a82c41f0f.d: crates/bench/benches/search_throughput.rs

/root/repo/target/release/deps/search_throughput-93eb758a82c41f0f: crates/bench/benches/search_throughput.rs

crates/bench/benches/search_throughput.rs:
