/root/repo/target/release/deps/mepipe_strategy-980e96e28ddab094.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-980e96e28ddab094.rlib: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-980e96e28ddab094.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
