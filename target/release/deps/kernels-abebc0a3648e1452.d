/root/repo/target/release/deps/kernels-abebc0a3648e1452.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-abebc0a3648e1452: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
