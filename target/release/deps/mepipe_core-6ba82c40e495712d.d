/root/repo/target/release/deps/mepipe_core-6ba82c40e495712d.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/release/deps/libmepipe_core-6ba82c40e495712d.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/release/deps/libmepipe_core-6ba82c40e495712d.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
