/root/repo/target/release/deps/mepipe_train-bb07cffce897fed0.d: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs

/root/repo/target/release/deps/libmepipe_train-bb07cffce897fed0.rlib: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs

/root/repo/target/release/deps/libmepipe_train-bb07cffce897fed0.rmeta: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs

crates/train/src/lib.rs:
crates/train/src/checkpoint.rs:
crates/train/src/cp.rs:
crates/train/src/layer.rs:
crates/train/src/memtrack.rs:
crates/train/src/optim.rs:
crates/train/src/params.rs:
crates/train/src/pipeline.rs:
crates/train/src/profiler.rs:
crates/train/src/reference.rs:
crates/train/src/tp.rs:
