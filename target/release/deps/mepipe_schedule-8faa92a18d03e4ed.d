/root/repo/target/release/deps/mepipe_schedule-8faa92a18d03e4ed.d: crates/schedule/src/lib.rs crates/schedule/src/baselines/mod.rs crates/schedule/src/baselines/dapple.rs crates/schedule/src/baselines/gpipe.rs crates/schedule/src/baselines/hanayo.rs crates/schedule/src/baselines/terapipe.rs crates/schedule/src/baselines/vpp.rs crates/schedule/src/baselines/zb.rs crates/schedule/src/baselines/zbv.rs crates/schedule/src/deps.rs crates/schedule/src/exec.rs crates/schedule/src/generate.rs crates/schedule/src/generator.rs crates/schedule/src/ir.rs crates/schedule/src/render.rs crates/schedule/src/stats.rs crates/schedule/src/validate.rs

/root/repo/target/release/deps/libmepipe_schedule-8faa92a18d03e4ed.rlib: crates/schedule/src/lib.rs crates/schedule/src/baselines/mod.rs crates/schedule/src/baselines/dapple.rs crates/schedule/src/baselines/gpipe.rs crates/schedule/src/baselines/hanayo.rs crates/schedule/src/baselines/terapipe.rs crates/schedule/src/baselines/vpp.rs crates/schedule/src/baselines/zb.rs crates/schedule/src/baselines/zbv.rs crates/schedule/src/deps.rs crates/schedule/src/exec.rs crates/schedule/src/generate.rs crates/schedule/src/generator.rs crates/schedule/src/ir.rs crates/schedule/src/render.rs crates/schedule/src/stats.rs crates/schedule/src/validate.rs

/root/repo/target/release/deps/libmepipe_schedule-8faa92a18d03e4ed.rmeta: crates/schedule/src/lib.rs crates/schedule/src/baselines/mod.rs crates/schedule/src/baselines/dapple.rs crates/schedule/src/baselines/gpipe.rs crates/schedule/src/baselines/hanayo.rs crates/schedule/src/baselines/terapipe.rs crates/schedule/src/baselines/vpp.rs crates/schedule/src/baselines/zb.rs crates/schedule/src/baselines/zbv.rs crates/schedule/src/deps.rs crates/schedule/src/exec.rs crates/schedule/src/generate.rs crates/schedule/src/generator.rs crates/schedule/src/ir.rs crates/schedule/src/render.rs crates/schedule/src/stats.rs crates/schedule/src/validate.rs

crates/schedule/src/lib.rs:
crates/schedule/src/baselines/mod.rs:
crates/schedule/src/baselines/dapple.rs:
crates/schedule/src/baselines/gpipe.rs:
crates/schedule/src/baselines/hanayo.rs:
crates/schedule/src/baselines/terapipe.rs:
crates/schedule/src/baselines/vpp.rs:
crates/schedule/src/baselines/zb.rs:
crates/schedule/src/baselines/zbv.rs:
crates/schedule/src/deps.rs:
crates/schedule/src/exec.rs:
crates/schedule/src/generate.rs:
crates/schedule/src/generator.rs:
crates/schedule/src/ir.rs:
crates/schedule/src/render.rs:
crates/schedule/src/stats.rs:
crates/schedule/src/validate.rs:
