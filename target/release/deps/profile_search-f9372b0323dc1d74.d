/root/repo/target/release/deps/profile_search-f9372b0323dc1d74.d: crates/bench/src/bin/profile_search.rs

/root/repo/target/release/deps/profile_search-f9372b0323dc1d74: crates/bench/src/bin/profile_search.rs

crates/bench/src/bin/profile_search.rs:
