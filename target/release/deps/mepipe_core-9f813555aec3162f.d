/root/repo/target/release/deps/mepipe_core-9f813555aec3162f.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/release/deps/mepipe_core-9f813555aec3162f: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
