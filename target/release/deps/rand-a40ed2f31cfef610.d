/root/repo/target/release/deps/rand-a40ed2f31cfef610.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-a40ed2f31cfef610: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
