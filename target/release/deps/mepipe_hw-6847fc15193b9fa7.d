/root/repo/target/release/deps/mepipe_hw-6847fc15193b9fa7.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libmepipe_hw-6847fc15193b9fa7.rlib: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libmepipe_hw-6847fc15193b9fa7.rmeta: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
