/root/repo/target/release/deps/search_throughput-696c588371d88c97.d: crates/bench/benches/search_throughput.rs

/root/repo/target/release/deps/search_throughput-696c588371d88c97: crates/bench/benches/search_throughput.rs

crates/bench/benches/search_throughput.rs:
