/root/repo/target/release/deps/experiments-e4e520b77541c2a3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e4e520b77541c2a3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
