/root/repo/target/release/deps/gen_timing-e41913b10b0e56c4.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/release/deps/gen_timing-e41913b10b0e56c4: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
