/root/repo/target/release/deps/mepipe_strategy-96a19736dcd0a92f.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/mepipe_strategy-96a19736dcd0a92f: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
