/root/repo/target/release/deps/criterion-3da5683a3b7d8640.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-3da5683a3b7d8640: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
