/root/repo/target/release/deps/schedule_generation-c725aa9ff7d3d1ac.d: crates/bench/benches/schedule_generation.rs

/root/repo/target/release/deps/schedule_generation-c725aa9ff7d3d1ac: crates/bench/benches/schedule_generation.rs

crates/bench/benches/schedule_generation.rs:
