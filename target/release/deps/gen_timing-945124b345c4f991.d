/root/repo/target/release/deps/gen_timing-945124b345c4f991.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/release/deps/gen_timing-945124b345c4f991: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
