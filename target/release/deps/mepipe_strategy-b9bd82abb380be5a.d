/root/repo/target/release/deps/mepipe_strategy-b9bd82abb380be5a.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-b9bd82abb380be5a.rlib: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-b9bd82abb380be5a.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
