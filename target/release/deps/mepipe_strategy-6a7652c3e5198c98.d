/root/repo/target/release/deps/mepipe_strategy-6a7652c3e5198c98.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-6a7652c3e5198c98.rlib: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/release/deps/libmepipe_strategy-6a7652c3e5198c98.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
