/root/repo/target/release/deps/mepipe_core-b70fe424f6440b88.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/release/deps/libmepipe_core-b70fe424f6440b88.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/release/deps/libmepipe_core-b70fe424f6440b88.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
