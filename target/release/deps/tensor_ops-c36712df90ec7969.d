/root/repo/target/release/deps/tensor_ops-c36712df90ec7969.d: crates/bench/benches/tensor_ops.rs

/root/repo/target/release/deps/tensor_ops-c36712df90ec7969: crates/bench/benches/tensor_ops.rs

crates/bench/benches/tensor_ops.rs:
