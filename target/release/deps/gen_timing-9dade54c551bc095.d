/root/repo/target/release/deps/gen_timing-9dade54c551bc095.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/release/deps/gen_timing-9dade54c551bc095: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
