/root/repo/target/release/deps/experiments-ded2b18202961f3d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-ded2b18202961f3d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
