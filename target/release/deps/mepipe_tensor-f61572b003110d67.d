/root/repo/target/release/deps/mepipe_tensor-f61572b003110d67.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmepipe_tensor-f61572b003110d67.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmepipe_tensor-f61572b003110d67.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/embedding.rs:
crates/tensor/src/ops/loss.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/naive.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/vecops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/tensor.rs:
