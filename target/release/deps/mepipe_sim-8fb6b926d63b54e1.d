/root/repo/target/release/deps/mepipe_sim-8fb6b926d63b54e1.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/mepipe_sim-8fb6b926d63b54e1: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
