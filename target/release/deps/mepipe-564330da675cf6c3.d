/root/repo/target/release/deps/mepipe-564330da675cf6c3.d: src/main.rs

/root/repo/target/release/deps/mepipe-564330da675cf6c3: src/main.rs

src/main.rs:
