/root/repo/target/release/deps/mepipe-8a0c3e488238df8b.d: src/lib.rs

/root/repo/target/release/deps/libmepipe-8a0c3e488238df8b.rlib: src/lib.rs

/root/repo/target/release/deps/libmepipe-8a0c3e488238df8b.rmeta: src/lib.rs

src/lib.rs:
