/root/repo/target/release/deps/mepipe_sim-e4cdd8046edb89c4.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmepipe_sim-e4cdd8046edb89c4.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmepipe_sim-e4cdd8046edb89c4.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
