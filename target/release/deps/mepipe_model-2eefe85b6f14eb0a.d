/root/repo/target/release/deps/mepipe_model-2eefe85b6f14eb0a.d: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/release/deps/libmepipe_model-2eefe85b6f14eb0a.rlib: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/release/deps/libmepipe_model-2eefe85b6f14eb0a.rmeta: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

crates/model/src/lib.rs:
crates/model/src/comm.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/flops.rs:
crates/model/src/gemm.rs:
crates/model/src/memory.rs:
crates/model/src/partition.rs:
