/root/repo/target/release/deps/kernels-1c92a9f9c0129f10.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-1c92a9f9c0129f10: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
