/root/repo/target/release/deps/search_throughput-2b7308f1f28f61d9.d: crates/bench/benches/search_throughput.rs

/root/repo/target/release/deps/search_throughput-2b7308f1f28f61d9: crates/bench/benches/search_throughput.rs

crates/bench/benches/search_throughput.rs:
