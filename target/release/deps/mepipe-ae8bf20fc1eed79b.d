/root/repo/target/release/deps/mepipe-ae8bf20fc1eed79b.d: src/main.rs

/root/repo/target/release/deps/mepipe-ae8bf20fc1eed79b: src/main.rs

src/main.rs:
