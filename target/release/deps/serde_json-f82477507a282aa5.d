/root/repo/target/release/deps/serde_json-f82477507a282aa5.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-f82477507a282aa5: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
