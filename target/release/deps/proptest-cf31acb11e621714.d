/root/repo/target/release/deps/proptest-cf31acb11e621714.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cf31acb11e621714.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cf31acb11e621714.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
