/root/repo/target/release/deps/experiments-e71a73b361a7464c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e71a73b361a7464c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
