/root/repo/target/release/deps/mepipe-1cda06f47df68f5f.d: src/main.rs

/root/repo/target/release/deps/mepipe-1cda06f47df68f5f: src/main.rs

src/main.rs:
