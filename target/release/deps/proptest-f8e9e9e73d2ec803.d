/root/repo/target/release/deps/proptest-f8e9e9e73d2ec803.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-f8e9e9e73d2ec803: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
