/root/repo/target/release/deps/crossbeam-d6460f746c5226cb.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-d6460f746c5226cb: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
