/root/repo/target/release/deps/mepipe_hw-3902534c50e0b694.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/mepipe_hw-3902534c50e0b694: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
