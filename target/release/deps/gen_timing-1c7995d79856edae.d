/root/repo/target/release/deps/gen_timing-1c7995d79856edae.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/release/deps/gen_timing-1c7995d79856edae: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
