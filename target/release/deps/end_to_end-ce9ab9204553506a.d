/root/repo/target/release/deps/end_to_end-ce9ab9204553506a.d: crates/bench/benches/end_to_end.rs

/root/repo/target/release/deps/end_to_end-ce9ab9204553506a: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
