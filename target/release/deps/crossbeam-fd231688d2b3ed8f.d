/root/repo/target/release/deps/crossbeam-fd231688d2b3ed8f.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-fd231688d2b3ed8f.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-fd231688d2b3ed8f.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
