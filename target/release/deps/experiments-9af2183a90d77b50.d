/root/repo/target/release/deps/experiments-9af2183a90d77b50.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-9af2183a90d77b50: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
