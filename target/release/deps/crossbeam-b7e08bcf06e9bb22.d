/root/repo/target/release/deps/crossbeam-b7e08bcf06e9bb22.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b7e08bcf06e9bb22.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b7e08bcf06e9bb22.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
