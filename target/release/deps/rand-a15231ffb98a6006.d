/root/repo/target/release/deps/rand-a15231ffb98a6006.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a15231ffb98a6006.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a15231ffb98a6006.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
