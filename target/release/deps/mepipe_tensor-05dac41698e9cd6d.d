/root/repo/target/release/deps/mepipe_tensor-05dac41698e9cd6d.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmepipe_tensor-05dac41698e9cd6d.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmepipe_tensor-05dac41698e9cd6d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/embedding.rs:
crates/tensor/src/ops/loss.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/naive.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/vecops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/tensor.rs:
