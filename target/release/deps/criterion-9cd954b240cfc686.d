/root/repo/target/release/deps/criterion-9cd954b240cfc686.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9cd954b240cfc686.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9cd954b240cfc686.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
