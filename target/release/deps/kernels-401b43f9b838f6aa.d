/root/repo/target/release/deps/kernels-401b43f9b838f6aa.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-401b43f9b838f6aa: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
