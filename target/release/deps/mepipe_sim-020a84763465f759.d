/root/repo/target/release/deps/mepipe_sim-020a84763465f759.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmepipe_sim-020a84763465f759.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libmepipe_sim-020a84763465f759.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
