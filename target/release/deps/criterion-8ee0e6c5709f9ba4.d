/root/repo/target/release/deps/criterion-8ee0e6c5709f9ba4.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8ee0e6c5709f9ba4.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8ee0e6c5709f9ba4.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
