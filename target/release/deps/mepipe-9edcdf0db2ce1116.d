/root/repo/target/release/deps/mepipe-9edcdf0db2ce1116.d: src/lib.rs

/root/repo/target/release/deps/mepipe-9edcdf0db2ce1116: src/lib.rs

src/lib.rs:
