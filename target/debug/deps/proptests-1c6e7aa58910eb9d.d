/root/repo/target/debug/deps/proptests-1c6e7aa58910eb9d.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1c6e7aa58910eb9d: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
