/root/repo/target/debug/deps/tensor_ops-24cf300bd3652a61.d: crates/bench/benches/tensor_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ops-24cf300bd3652a61.rmeta: crates/bench/benches/tensor_ops.rs Cargo.toml

crates/bench/benches/tensor_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
