/root/repo/target/debug/deps/experiments-b03392ab830b23dd.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-b03392ab830b23dd.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
