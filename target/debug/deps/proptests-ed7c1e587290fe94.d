/root/repo/target/debug/deps/proptests-ed7c1e587290fe94.d: crates/hw/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ed7c1e587290fe94: crates/hw/tests/proptests.rs

crates/hw/tests/proptests.rs:
