/root/repo/target/debug/deps/large_cluster-f885efebad51335a.d: crates/core/tests/large_cluster.rs

/root/repo/target/debug/deps/large_cluster-f885efebad51335a: crates/core/tests/large_cluster.rs

crates/core/tests/large_cluster.rs:
