/root/repo/target/debug/deps/harness-48433c4bcd8ba1e6.d: crates/bench/tests/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-48433c4bcd8ba1e6.rmeta: crates/bench/tests/harness.rs Cargo.toml

crates/bench/tests/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
