/root/repo/target/debug/deps/rand-f713600dfed99718.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-f713600dfed99718: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
