/root/repo/target/debug/deps/search_throughput-f06befb3698184b8.d: crates/bench/benches/search_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_throughput-f06befb3698184b8.rmeta: crates/bench/benches/search_throughput.rs Cargo.toml

crates/bench/benches/search_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
