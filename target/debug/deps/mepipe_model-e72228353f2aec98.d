/root/repo/target/debug/deps/mepipe_model-e72228353f2aec98.d: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_model-e72228353f2aec98.rmeta: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/comm.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/flops.rs:
crates/model/src/gemm.rs:
crates/model/src/memory.rs:
crates/model/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
