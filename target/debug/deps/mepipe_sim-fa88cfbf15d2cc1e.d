/root/repo/target/debug/deps/mepipe_sim-fa88cfbf15d2cc1e.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_sim-fa88cfbf15d2cc1e.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
