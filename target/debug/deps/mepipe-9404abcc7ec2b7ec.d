/root/repo/target/debug/deps/mepipe-9404abcc7ec2b7ec.d: src/main.rs

/root/repo/target/debug/deps/mepipe-9404abcc7ec2b7ec: src/main.rs

src/main.rs:
