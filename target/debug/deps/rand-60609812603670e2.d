/root/repo/target/debug/deps/rand-60609812603670e2.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-60609812603670e2.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-60609812603670e2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
