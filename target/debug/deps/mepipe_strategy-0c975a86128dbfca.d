/root/repo/target/debug/deps/mepipe_strategy-0c975a86128dbfca.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/mepipe_strategy-0c975a86128dbfca: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
