/root/repo/target/debug/deps/mepipe_core-2b2673f7cf0d5e38.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/debug/deps/libmepipe_core-2b2673f7cf0d5e38.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/debug/deps/libmepipe_core-2b2673f7cf0d5e38.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
