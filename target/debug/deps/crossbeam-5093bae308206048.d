/root/repo/target/debug/deps/crossbeam-5093bae308206048.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-5093bae308206048: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
