/root/repo/target/debug/deps/proptests-0f849ad64e0d0962.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0f849ad64e0d0962.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
