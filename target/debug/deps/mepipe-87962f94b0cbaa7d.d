/root/repo/target/debug/deps/mepipe-87962f94b0cbaa7d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-87962f94b0cbaa7d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
