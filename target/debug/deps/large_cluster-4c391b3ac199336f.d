/root/repo/target/debug/deps/large_cluster-4c391b3ac199336f.d: crates/core/tests/large_cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblarge_cluster-4c391b3ac199336f.rmeta: crates/core/tests/large_cluster.rs Cargo.toml

crates/core/tests/large_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
