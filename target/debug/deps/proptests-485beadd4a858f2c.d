/root/repo/target/debug/deps/proptests-485beadd4a858f2c.d: crates/model/tests/proptests.rs

/root/repo/target/debug/deps/proptests-485beadd4a858f2c: crates/model/tests/proptests.rs

crates/model/tests/proptests.rs:
