/root/repo/target/debug/deps/engine_parity-a8f8bd678da1c872.d: crates/strategy/tests/engine_parity.rs Cargo.toml

/root/repo/target/debug/deps/libengine_parity-a8f8bd678da1c872.rmeta: crates/strategy/tests/engine_parity.rs Cargo.toml

crates/strategy/tests/engine_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
