/root/repo/target/debug/deps/proptests-237f2874e97ca1eb.d: crates/schedule/tests/proptests.rs

/root/repo/target/debug/deps/proptests-237f2874e97ca1eb: crates/schedule/tests/proptests.rs

crates/schedule/tests/proptests.rs:
