/root/repo/target/debug/deps/serde_json-d2f38524bb4e36ed.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-d2f38524bb4e36ed: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
