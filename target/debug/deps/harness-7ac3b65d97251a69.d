/root/repo/target/debug/deps/harness-7ac3b65d97251a69.d: crates/bench/tests/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-7ac3b65d97251a69.rmeta: crates/bench/tests/harness.rs Cargo.toml

crates/bench/tests/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
