/root/repo/target/debug/deps/search_throughput-e47b01baeb41a4d6.d: crates/bench/benches/search_throughput.rs

/root/repo/target/debug/deps/search_throughput-e47b01baeb41a4d6: crates/bench/benches/search_throughput.rs

crates/bench/benches/search_throughput.rs:
