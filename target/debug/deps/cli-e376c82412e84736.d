/root/repo/target/debug/deps/cli-e376c82412e84736.d: tests/cli.rs

/root/repo/target/debug/deps/cli-e376c82412e84736: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mepipe=/root/repo/target/debug/mepipe
