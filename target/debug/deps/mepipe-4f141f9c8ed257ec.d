/root/repo/target/debug/deps/mepipe-4f141f9c8ed257ec.d: src/lib.rs

/root/repo/target/debug/deps/libmepipe-4f141f9c8ed257ec.rlib: src/lib.rs

/root/repo/target/debug/deps/libmepipe-4f141f9c8ed257ec.rmeta: src/lib.rs

src/lib.rs:
