/root/repo/target/debug/deps/serde_json-d2f27025c388df9e.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d2f27025c388df9e.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d2f27025c388df9e.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
