/root/repo/target/debug/deps/experiments-a83df3beb21bc076.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a83df3beb21bc076: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
