/root/repo/target/debug/deps/harness-0d58cc7b264c0b01.d: crates/bench/tests/harness.rs

/root/repo/target/debug/deps/harness-0d58cc7b264c0b01: crates/bench/tests/harness.rs

crates/bench/tests/harness.rs:
