/root/repo/target/debug/deps/mepipe-4fef694eb53e3b50.d: src/lib.rs

/root/repo/target/debug/deps/libmepipe-4fef694eb53e3b50.rlib: src/lib.rs

/root/repo/target/debug/deps/libmepipe-4fef694eb53e3b50.rmeta: src/lib.rs

src/lib.rs:
