/root/repo/target/debug/deps/mepipe_schedule-f00859fc0945ca58.d: crates/schedule/src/lib.rs crates/schedule/src/baselines/mod.rs crates/schedule/src/baselines/dapple.rs crates/schedule/src/baselines/gpipe.rs crates/schedule/src/baselines/hanayo.rs crates/schedule/src/baselines/terapipe.rs crates/schedule/src/baselines/vpp.rs crates/schedule/src/baselines/zb.rs crates/schedule/src/baselines/zbv.rs crates/schedule/src/deps.rs crates/schedule/src/exec.rs crates/schedule/src/generate.rs crates/schedule/src/generator.rs crates/schedule/src/ir.rs crates/schedule/src/render.rs crates/schedule/src/stats.rs crates/schedule/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_schedule-f00859fc0945ca58.rmeta: crates/schedule/src/lib.rs crates/schedule/src/baselines/mod.rs crates/schedule/src/baselines/dapple.rs crates/schedule/src/baselines/gpipe.rs crates/schedule/src/baselines/hanayo.rs crates/schedule/src/baselines/terapipe.rs crates/schedule/src/baselines/vpp.rs crates/schedule/src/baselines/zb.rs crates/schedule/src/baselines/zbv.rs crates/schedule/src/deps.rs crates/schedule/src/exec.rs crates/schedule/src/generate.rs crates/schedule/src/generator.rs crates/schedule/src/ir.rs crates/schedule/src/render.rs crates/schedule/src/stats.rs crates/schedule/src/validate.rs Cargo.toml

crates/schedule/src/lib.rs:
crates/schedule/src/baselines/mod.rs:
crates/schedule/src/baselines/dapple.rs:
crates/schedule/src/baselines/gpipe.rs:
crates/schedule/src/baselines/hanayo.rs:
crates/schedule/src/baselines/terapipe.rs:
crates/schedule/src/baselines/vpp.rs:
crates/schedule/src/baselines/zb.rs:
crates/schedule/src/baselines/zbv.rs:
crates/schedule/src/deps.rs:
crates/schedule/src/exec.rs:
crates/schedule/src/generate.rs:
crates/schedule/src/generator.rs:
crates/schedule/src/ir.rs:
crates/schedule/src/render.rs:
crates/schedule/src/stats.rs:
crates/schedule/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
