/root/repo/target/debug/deps/tensor_ops-109c9f0c6dde694c.d: crates/bench/benches/tensor_ops.rs

/root/repo/target/debug/deps/tensor_ops-109c9f0c6dde694c: crates/bench/benches/tensor_ops.rs

crates/bench/benches/tensor_ops.rs:
