/root/repo/target/debug/deps/search_throughput-eb7240567c40200e.d: crates/bench/benches/search_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_throughput-eb7240567c40200e.rmeta: crates/bench/benches/search_throughput.rs Cargo.toml

crates/bench/benches/search_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
