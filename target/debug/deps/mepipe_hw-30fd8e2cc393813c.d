/root/repo/target/debug/deps/mepipe_hw-30fd8e2cc393813c.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libmepipe_hw-30fd8e2cc393813c.rlib: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libmepipe_hw-30fd8e2cc393813c.rmeta: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
