/root/repo/target/debug/deps/engine_parity-0903355c79c190be.d: crates/strategy/tests/engine_parity.rs

/root/repo/target/debug/deps/engine_parity-0903355c79c190be: crates/strategy/tests/engine_parity.rs

crates/strategy/tests/engine_parity.rs:
