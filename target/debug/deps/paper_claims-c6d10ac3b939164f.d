/root/repo/target/debug/deps/paper_claims-c6d10ac3b939164f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c6d10ac3b939164f: tests/paper_claims.rs

tests/paper_claims.rs:
