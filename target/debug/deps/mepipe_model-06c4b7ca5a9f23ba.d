/root/repo/target/debug/deps/mepipe_model-06c4b7ca5a9f23ba.d: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/debug/deps/libmepipe_model-06c4b7ca5a9f23ba.rlib: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/debug/deps/libmepipe_model-06c4b7ca5a9f23ba.rmeta: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

crates/model/src/lib.rs:
crates/model/src/comm.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/flops.rs:
crates/model/src/gemm.rs:
crates/model/src/memory.rs:
crates/model/src/partition.rs:
