/root/repo/target/debug/deps/engine_parity-929e0921203323fe.d: crates/strategy/tests/engine_parity.rs

/root/repo/target/debug/deps/engine_parity-929e0921203323fe: crates/strategy/tests/engine_parity.rs

crates/strategy/tests/engine_parity.rs:
