/root/repo/target/debug/deps/proptests-cacf61c4782878fb.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cacf61c4782878fb: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
