/root/repo/target/debug/deps/mepipe-d37c920e8c6e38fa.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-d37c920e8c6e38fa.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
