/root/repo/target/debug/deps/mepipe-e3f64f16de4fd1a3.d: src/main.rs

/root/repo/target/debug/deps/mepipe-e3f64f16de4fd1a3: src/main.rs

src/main.rs:
