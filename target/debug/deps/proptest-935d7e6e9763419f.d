/root/repo/target/debug/deps/proptest-935d7e6e9763419f.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-935d7e6e9763419f: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
