/root/repo/target/debug/deps/experiments-73cd57521edd82f7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-73cd57521edd82f7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
