/root/repo/target/debug/deps/end_to_end-a966d0bb07c0d6da.d: crates/bench/benches/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a966d0bb07c0d6da: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
