/root/repo/target/debug/deps/mepipe_core-6b583de4d4181012.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_core-6b583de4d4181012.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
