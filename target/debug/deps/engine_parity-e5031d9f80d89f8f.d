/root/repo/target/debug/deps/engine_parity-e5031d9f80d89f8f.d: crates/strategy/tests/engine_parity.rs Cargo.toml

/root/repo/target/debug/deps/libengine_parity-e5031d9f80d89f8f.rmeta: crates/strategy/tests/engine_parity.rs Cargo.toml

crates/strategy/tests/engine_parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
