/root/repo/target/debug/deps/mepipe-9df9b8e975bb354f.d: src/lib.rs

/root/repo/target/debug/deps/mepipe-9df9b8e975bb354f: src/lib.rs

src/lib.rs:
