/root/repo/target/debug/deps/mepipe_strategy-17e2e25f91b61abe.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/libmepipe_strategy-17e2e25f91b61abe.rlib: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/libmepipe_strategy-17e2e25f91b61abe.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
