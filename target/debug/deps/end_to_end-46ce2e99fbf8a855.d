/root/repo/target/debug/deps/end_to_end-46ce2e99fbf8a855.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-46ce2e99fbf8a855: tests/end_to_end.rs

tests/end_to_end.rs:
