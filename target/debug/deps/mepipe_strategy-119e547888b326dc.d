/root/repo/target/debug/deps/mepipe_strategy-119e547888b326dc.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/libmepipe_strategy-119e547888b326dc.rlib: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/libmepipe_strategy-119e547888b326dc.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
