/root/repo/target/debug/deps/tensor_ops-d39b3a2798dc3cd4.d: crates/bench/benches/tensor_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtensor_ops-d39b3a2798dc3cd4.rmeta: crates/bench/benches/tensor_ops.rs Cargo.toml

crates/bench/benches/tensor_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
