/root/repo/target/debug/deps/mepipe_model-f2b6ea5902084ba0.d: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/debug/deps/mepipe_model-f2b6ea5902084ba0: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

crates/model/src/lib.rs:
crates/model/src/comm.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/flops.rs:
crates/model/src/gemm.rs:
crates/model/src/memory.rs:
crates/model/src/partition.rs:
