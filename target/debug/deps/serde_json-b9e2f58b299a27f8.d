/root/repo/target/debug/deps/serde_json-b9e2f58b299a27f8.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-b9e2f58b299a27f8: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
