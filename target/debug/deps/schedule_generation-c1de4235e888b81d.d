/root/repo/target/debug/deps/schedule_generation-c1de4235e888b81d.d: crates/bench/benches/schedule_generation.rs

/root/repo/target/debug/deps/schedule_generation-c1de4235e888b81d: crates/bench/benches/schedule_generation.rs

crates/bench/benches/schedule_generation.rs:
