/root/repo/target/debug/deps/experiments-46caa71df033ad28.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-46caa71df033ad28: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
