/root/repo/target/debug/deps/proptests-d424abac4a7fec1f.d: crates/model/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d424abac4a7fec1f.rmeta: crates/model/tests/proptests.rs Cargo.toml

crates/model/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
