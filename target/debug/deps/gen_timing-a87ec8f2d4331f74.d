/root/repo/target/debug/deps/gen_timing-a87ec8f2d4331f74.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/debug/deps/gen_timing-a87ec8f2d4331f74: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
