/root/repo/target/debug/deps/mepipe-27bc324ad437e8d1.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-27bc324ad437e8d1.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
