/root/repo/target/debug/deps/mepipe_train-673691158a044599.d: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs

/root/repo/target/debug/deps/mepipe_train-673691158a044599: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs

crates/train/src/lib.rs:
crates/train/src/checkpoint.rs:
crates/train/src/cp.rs:
crates/train/src/layer.rs:
crates/train/src/memtrack.rs:
crates/train/src/optim.rs:
crates/train/src/params.rs:
crates/train/src/pipeline.rs:
crates/train/src/profiler.rs:
crates/train/src/reference.rs:
crates/train/src/tp.rs:
