/root/repo/target/debug/deps/mepipe_tensor-90f4aef05963594a.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libmepipe_tensor-90f4aef05963594a.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libmepipe_tensor-90f4aef05963594a.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/embedding.rs:
crates/tensor/src/ops/loss.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/naive.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/vecops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/tensor.rs:
