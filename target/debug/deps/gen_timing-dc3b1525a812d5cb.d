/root/repo/target/debug/deps/gen_timing-dc3b1525a812d5cb.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/debug/deps/gen_timing-dc3b1525a812d5cb: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
