/root/repo/target/debug/deps/gen_timing-d7e227b2a00f7235.d: crates/bench/src/bin/gen_timing.rs Cargo.toml

/root/repo/target/debug/deps/libgen_timing-d7e227b2a00f7235.rmeta: crates/bench/src/bin/gen_timing.rs Cargo.toml

crates/bench/src/bin/gen_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
