/root/repo/target/debug/deps/mepipe_tensor-b97bcab82e380124.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_tensor-b97bcab82e380124.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/embedding.rs crates/tensor/src/ops/loss.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/naive.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/vecops.rs crates/tensor/src/pool.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/embedding.rs:
crates/tensor/src/ops/loss.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/naive.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/vecops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
