/root/repo/target/debug/deps/mepipe-0c77e749686ca360.d: src/main.rs

/root/repo/target/debug/deps/mepipe-0c77e749686ca360: src/main.rs

src/main.rs:
