/root/repo/target/debug/deps/mepipe-8d9bb1018e2a9b4f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-8d9bb1018e2a9b4f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
