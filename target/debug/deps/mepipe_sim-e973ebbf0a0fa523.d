/root/repo/target/debug/deps/mepipe_sim-e973ebbf0a0fa523.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/mepipe_sim-e973ebbf0a0fa523: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
