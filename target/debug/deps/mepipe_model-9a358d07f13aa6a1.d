/root/repo/target/debug/deps/mepipe_model-9a358d07f13aa6a1.d: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/debug/deps/libmepipe_model-9a358d07f13aa6a1.rlib: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

/root/repo/target/debug/deps/libmepipe_model-9a358d07f13aa6a1.rmeta: crates/model/src/lib.rs crates/model/src/comm.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/flops.rs crates/model/src/gemm.rs crates/model/src/memory.rs crates/model/src/partition.rs

crates/model/src/lib.rs:
crates/model/src/comm.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/flops.rs:
crates/model/src/gemm.rs:
crates/model/src/memory.rs:
crates/model/src/partition.rs:
