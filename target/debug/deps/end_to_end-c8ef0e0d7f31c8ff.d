/root/repo/target/debug/deps/end_to_end-c8ef0e0d7f31c8ff.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c8ef0e0d7f31c8ff: tests/end_to_end.rs

tests/end_to_end.rs:
