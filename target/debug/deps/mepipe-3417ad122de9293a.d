/root/repo/target/debug/deps/mepipe-3417ad122de9293a.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-3417ad122de9293a.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
