/root/repo/target/debug/deps/proptest-ee7235da69a71896.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ee7235da69a71896.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ee7235da69a71896.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
