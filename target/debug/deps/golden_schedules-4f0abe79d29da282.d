/root/repo/target/debug/deps/golden_schedules-4f0abe79d29da282.d: tests/golden_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_schedules-4f0abe79d29da282.rmeta: tests/golden_schedules.rs Cargo.toml

tests/golden_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
