/root/repo/target/debug/deps/mepipe_strategy-1c9f6162fa72cef2.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

/root/repo/target/debug/deps/mepipe_strategy-1c9f6162fa72cef2: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
