/root/repo/target/debug/deps/mepipe_train-d9b640d871225b2a.d: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_train-d9b640d871225b2a.rmeta: crates/train/src/lib.rs crates/train/src/checkpoint.rs crates/train/src/cp.rs crates/train/src/layer.rs crates/train/src/memtrack.rs crates/train/src/optim.rs crates/train/src/params.rs crates/train/src/pipeline.rs crates/train/src/profiler.rs crates/train/src/reference.rs crates/train/src/tp.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/checkpoint.rs:
crates/train/src/cp.rs:
crates/train/src/layer.rs:
crates/train/src/memtrack.rs:
crates/train/src/optim.rs:
crates/train/src/params.rs:
crates/train/src/pipeline.rs:
crates/train/src/profiler.rs:
crates/train/src/reference.rs:
crates/train/src/tp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
