/root/repo/target/debug/deps/proptest-55eab861136d9d84.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-55eab861136d9d84.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-55eab861136d9d84.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
