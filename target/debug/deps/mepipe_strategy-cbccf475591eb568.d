/root/repo/target/debug/deps/mepipe_strategy-cbccf475591eb568.d: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_strategy-cbccf475591eb568.rmeta: crates/strategy/src/lib.rs crates/strategy/src/engine.rs crates/strategy/src/evaluate.rs crates/strategy/src/search.rs crates/strategy/src/space.rs Cargo.toml

crates/strategy/src/lib.rs:
crates/strategy/src/engine.rs:
crates/strategy/src/evaluate.rs:
crates/strategy/src/search.rs:
crates/strategy/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
