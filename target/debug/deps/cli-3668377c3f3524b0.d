/root/repo/target/debug/deps/cli-3668377c3f3524b0.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-3668377c3f3524b0.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mepipe=placeholder:mepipe
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
