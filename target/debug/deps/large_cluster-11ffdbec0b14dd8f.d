/root/repo/target/debug/deps/large_cluster-11ffdbec0b14dd8f.d: crates/core/tests/large_cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblarge_cluster-11ffdbec0b14dd8f.rmeta: crates/core/tests/large_cluster.rs Cargo.toml

crates/core/tests/large_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
