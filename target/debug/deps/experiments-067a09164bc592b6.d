/root/repo/target/debug/deps/experiments-067a09164bc592b6.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-067a09164bc592b6: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
