/root/repo/target/debug/deps/simulator-e2e9663d07367441.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-e2e9663d07367441.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
