/root/repo/target/debug/deps/gen_timing-64a850ba21ba490c.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/debug/deps/gen_timing-64a850ba21ba490c: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
