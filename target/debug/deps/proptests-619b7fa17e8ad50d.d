/root/repo/target/debug/deps/proptests-619b7fa17e8ad50d.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-619b7fa17e8ad50d: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
