/root/repo/target/debug/deps/mepipe_hw-e47c43718ad2ae03.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libmepipe_hw-e47c43718ad2ae03.rlib: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libmepipe_hw-e47c43718ad2ae03.rmeta: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
