/root/repo/target/debug/deps/proptests-d102cc94bba3b2d4.d: crates/hw/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d102cc94bba3b2d4.rmeta: crates/hw/tests/proptests.rs Cargo.toml

crates/hw/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
