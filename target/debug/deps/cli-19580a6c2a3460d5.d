/root/repo/target/debug/deps/cli-19580a6c2a3460d5.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-19580a6c2a3460d5.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_mepipe=placeholder:mepipe
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
