/root/repo/target/debug/deps/mepipe_hw-0898d8c137d9a0ec.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/mepipe_hw-0898d8c137d9a0ec: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
