/root/repo/target/debug/deps/mepipe_sim-82a837f14a498958.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_sim-82a837f14a498958.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
