/root/repo/target/debug/deps/mepipe-fa385c6f15faa66b.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-fa385c6f15faa66b.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
