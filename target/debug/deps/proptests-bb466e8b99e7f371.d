/root/repo/target/debug/deps/proptests-bb466e8b99e7f371.d: crates/hw/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bb466e8b99e7f371: crates/hw/tests/proptests.rs

crates/hw/tests/proptests.rs:
