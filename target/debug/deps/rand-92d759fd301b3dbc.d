/root/repo/target/debug/deps/rand-92d759fd301b3dbc.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-92d759fd301b3dbc.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
