/root/repo/target/debug/deps/proptests-4c110abc6609fd2f.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4c110abc6609fd2f: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
