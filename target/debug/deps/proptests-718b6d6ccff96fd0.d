/root/repo/target/debug/deps/proptests-718b6d6ccff96fd0.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-718b6d6ccff96fd0.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
