/root/repo/target/debug/deps/property_tests-ef5376a290d0e539.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-ef5376a290d0e539: tests/property_tests.rs

tests/property_tests.rs:
