/root/repo/target/debug/deps/criterion-413dfafa8bbeb24f.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-413dfafa8bbeb24f.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-413dfafa8bbeb24f.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
