/root/repo/target/debug/deps/serde_json-5883f148f45e8db3.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5883f148f45e8db3.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-5883f148f45e8db3.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
