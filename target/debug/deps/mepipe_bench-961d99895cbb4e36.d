/root/repo/target/debug/deps/mepipe_bench-961d99895cbb4e36.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/disc9.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11_12.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/schedules.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab67.rs crates/bench/src/experiments/tab9.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmepipe_bench-961d99895cbb4e36.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/disc9.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11_12.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/schedules.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab67.rs crates/bench/src/experiments/tab9.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmepipe_bench-961d99895cbb4e36.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/disc9.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11_12.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/schedules.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab67.rs crates/bench/src/experiments/tab9.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/disc9.rs:
crates/bench/src/experiments/fig1.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11_12.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/schedules.rs:
crates/bench/src/experiments/tab2.rs:
crates/bench/src/experiments/tab3.rs:
crates/bench/src/experiments/tab67.rs:
crates/bench/src/experiments/tab9.rs:
crates/bench/src/report.rs:
