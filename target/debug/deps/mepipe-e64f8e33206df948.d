/root/repo/target/debug/deps/mepipe-e64f8e33206df948.d: src/main.rs

/root/repo/target/debug/deps/mepipe-e64f8e33206df948: src/main.rs

src/main.rs:
