/root/repo/target/debug/deps/proptests-76a776d69433fbb0.d: crates/model/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-76a776d69433fbb0.rmeta: crates/model/tests/proptests.rs Cargo.toml

crates/model/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
