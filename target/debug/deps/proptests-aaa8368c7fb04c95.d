/root/repo/target/debug/deps/proptests-aaa8368c7fb04c95.d: crates/schedule/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-aaa8368c7fb04c95.rmeta: crates/schedule/tests/proptests.rs Cargo.toml

crates/schedule/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
