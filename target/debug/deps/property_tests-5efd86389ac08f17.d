/root/repo/target/debug/deps/property_tests-5efd86389ac08f17.d: tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-5efd86389ac08f17.rmeta: tests/property_tests.rs Cargo.toml

tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
