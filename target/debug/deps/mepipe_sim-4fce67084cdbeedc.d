/root/repo/target/debug/deps/mepipe_sim-4fce67084cdbeedc.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmepipe_sim-4fce67084cdbeedc.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libmepipe_sim-4fce67084cdbeedc.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
