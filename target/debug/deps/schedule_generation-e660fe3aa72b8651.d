/root/repo/target/debug/deps/schedule_generation-e660fe3aa72b8651.d: crates/bench/benches/schedule_generation.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_generation-e660fe3aa72b8651.rmeta: crates/bench/benches/schedule_generation.rs Cargo.toml

crates/bench/benches/schedule_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
