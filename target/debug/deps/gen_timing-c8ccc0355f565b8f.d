/root/repo/target/debug/deps/gen_timing-c8ccc0355f565b8f.d: crates/bench/src/bin/gen_timing.rs

/root/repo/target/debug/deps/gen_timing-c8ccc0355f565b8f: crates/bench/src/bin/gen_timing.rs

crates/bench/src/bin/gen_timing.rs:
