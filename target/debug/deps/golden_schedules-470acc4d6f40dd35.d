/root/repo/target/debug/deps/golden_schedules-470acc4d6f40dd35.d: tests/golden_schedules.rs

/root/repo/target/debug/deps/golden_schedules-470acc4d6f40dd35: tests/golden_schedules.rs

tests/golden_schedules.rs:
