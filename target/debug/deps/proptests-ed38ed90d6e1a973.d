/root/repo/target/debug/deps/proptests-ed38ed90d6e1a973.d: crates/model/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ed38ed90d6e1a973: crates/model/tests/proptests.rs

crates/model/tests/proptests.rs:
