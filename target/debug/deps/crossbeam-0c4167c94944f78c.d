/root/repo/target/debug/deps/crossbeam-0c4167c94944f78c.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-0c4167c94944f78c.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-0c4167c94944f78c.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
