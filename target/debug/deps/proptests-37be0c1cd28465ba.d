/root/repo/target/debug/deps/proptests-37be0c1cd28465ba.d: crates/schedule/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-37be0c1cd28465ba.rmeta: crates/schedule/tests/proptests.rs Cargo.toml

crates/schedule/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
