/root/repo/target/debug/deps/golden_schedules-adde8520e4d169ff.d: tests/golden_schedules.rs

/root/repo/target/debug/deps/golden_schedules-adde8520e4d169ff: tests/golden_schedules.rs

tests/golden_schedules.rs:
