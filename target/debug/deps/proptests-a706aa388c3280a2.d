/root/repo/target/debug/deps/proptests-a706aa388c3280a2.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a706aa388c3280a2.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
