/root/repo/target/debug/deps/rand-b32340ebb6ad4d5c.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b32340ebb6ad4d5c.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b32340ebb6ad4d5c.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
