/root/repo/target/debug/deps/mepipe_core-abc9701aec580435.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/debug/deps/libmepipe_core-abc9701aec580435.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/debug/deps/libmepipe_core-abc9701aec580435.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
