/root/repo/target/debug/deps/mepipe-c5e28e1f3ad88613.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-c5e28e1f3ad88613.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
