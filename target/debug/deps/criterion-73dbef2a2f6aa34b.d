/root/repo/target/debug/deps/criterion-73dbef2a2f6aa34b.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-73dbef2a2f6aa34b.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
