/root/repo/target/debug/deps/golden_schedules-088115e482ab1114.d: tests/golden_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_schedules-088115e482ab1114.rmeta: tests/golden_schedules.rs Cargo.toml

tests/golden_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
