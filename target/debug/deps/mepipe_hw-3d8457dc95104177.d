/root/repo/target/debug/deps/mepipe_hw-3d8457dc95104177.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/mepipe_hw-3d8457dc95104177: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
