/root/repo/target/debug/deps/harness-82b9e4a0a922a6bc.d: crates/bench/tests/harness.rs

/root/repo/target/debug/deps/harness-82b9e4a0a922a6bc: crates/bench/tests/harness.rs

crates/bench/tests/harness.rs:
