/root/repo/target/debug/deps/mepipe_core-77721211241d7c9f.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

/root/repo/target/debug/deps/mepipe_core-77721211241d7c9f: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/nonuniform.rs crates/core/src/reschedule.rs crates/core/src/svpp.rs crates/core/src/variants.rs crates/core/src/wgrad.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/nonuniform.rs:
crates/core/src/reschedule.rs:
crates/core/src/svpp.rs:
crates/core/src/variants.rs:
crates/core/src/wgrad.rs:
