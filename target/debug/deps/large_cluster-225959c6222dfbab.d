/root/repo/target/debug/deps/large_cluster-225959c6222dfbab.d: crates/core/tests/large_cluster.rs

/root/repo/target/debug/deps/large_cluster-225959c6222dfbab: crates/core/tests/large_cluster.rs

crates/core/tests/large_cluster.rs:
