/root/repo/target/debug/deps/mepipe-2351906ad1bd3410.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe-2351906ad1bd3410.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
