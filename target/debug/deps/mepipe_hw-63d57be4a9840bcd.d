/root/repo/target/debug/deps/mepipe_hw-63d57be4a9840bcd.d: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_hw-63d57be4a9840bcd.rmeta: crates/hw/src/lib.rs crates/hw/src/accelerator.rs crates/hw/src/link.rs crates/hw/src/mapping.rs crates/hw/src/pricing.rs crates/hw/src/topology.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/accelerator.rs:
crates/hw/src/link.rs:
crates/hw/src/mapping.rs:
crates/hw/src/pricing.rs:
crates/hw/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
