/root/repo/target/debug/deps/property_tests-23aa423bd9f27ea1.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-23aa423bd9f27ea1: tests/property_tests.rs

tests/property_tests.rs:
