/root/repo/target/debug/deps/simulator-32654554e07a958f.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-32654554e07a958f: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
