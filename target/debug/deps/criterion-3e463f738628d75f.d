/root/repo/target/debug/deps/criterion-3e463f738628d75f.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-3e463f738628d75f: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
