/root/repo/target/debug/deps/schedule_generation-9060bd7a02a813f4.d: crates/bench/benches/schedule_generation.rs Cargo.toml

/root/repo/target/debug/deps/libschedule_generation-9060bd7a02a813f4.rmeta: crates/bench/benches/schedule_generation.rs Cargo.toml

crates/bench/benches/schedule_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
