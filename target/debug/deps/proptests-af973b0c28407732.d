/root/repo/target/debug/deps/proptests-af973b0c28407732.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-af973b0c28407732: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
