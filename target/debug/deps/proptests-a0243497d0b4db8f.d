/root/repo/target/debug/deps/proptests-a0243497d0b4db8f.d: crates/schedule/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a0243497d0b4db8f: crates/schedule/tests/proptests.rs

crates/schedule/tests/proptests.rs:
