/root/repo/target/debug/deps/mepipe-b7514d32baefb808.d: src/lib.rs

/root/repo/target/debug/deps/mepipe-b7514d32baefb808: src/lib.rs

src/lib.rs:
