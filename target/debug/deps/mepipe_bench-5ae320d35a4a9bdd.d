/root/repo/target/debug/deps/mepipe_bench-5ae320d35a4a9bdd.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/disc9.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11_12.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/schedules.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab67.rs crates/bench/src/experiments/tab9.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmepipe_bench-5ae320d35a4a9bdd.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/disc9.rs crates/bench/src/experiments/fig1.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11_12.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/schedules.rs crates/bench/src/experiments/tab2.rs crates/bench/src/experiments/tab3.rs crates/bench/src/experiments/tab67.rs crates/bench/src/experiments/tab9.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/disc9.rs:
crates/bench/src/experiments/fig1.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11_12.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/schedules.rs:
crates/bench/src/experiments/tab2.rs:
crates/bench/src/experiments/tab3.rs:
crates/bench/src/experiments/tab67.rs:
crates/bench/src/experiments/tab9.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
