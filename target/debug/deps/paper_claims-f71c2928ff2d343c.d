/root/repo/target/debug/deps/paper_claims-f71c2928ff2d343c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-f71c2928ff2d343c: tests/paper_claims.rs

tests/paper_claims.rs:
