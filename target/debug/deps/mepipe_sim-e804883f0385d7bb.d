/root/repo/target/debug/deps/mepipe_sim-e804883f0385d7bb.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/mepipe_sim-e804883f0385d7bb: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/timeline.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/timeline.rs:
crates/sim/src/trace.rs:
