/root/repo/target/debug/deps/cli-3dad3292c972947d.d: tests/cli.rs

/root/repo/target/debug/deps/cli-3dad3292c972947d: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_mepipe=/root/repo/target/debug/mepipe
