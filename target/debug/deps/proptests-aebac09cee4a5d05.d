/root/repo/target/debug/deps/proptests-aebac09cee4a5d05.d: crates/hw/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-aebac09cee4a5d05.rmeta: crates/hw/tests/proptests.rs Cargo.toml

crates/hw/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
