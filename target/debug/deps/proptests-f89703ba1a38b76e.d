/root/repo/target/debug/deps/proptests-f89703ba1a38b76e.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f89703ba1a38b76e: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
