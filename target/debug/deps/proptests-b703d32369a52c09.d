/root/repo/target/debug/deps/proptests-b703d32369a52c09.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b703d32369a52c09: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
