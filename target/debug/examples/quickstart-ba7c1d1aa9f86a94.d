/root/repo/target/debug/examples/quickstart-ba7c1d1aa9f86a94.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ba7c1d1aa9f86a94.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
