/root/repo/target/debug/examples/quickstart-04ef81eb9eaad0bc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-04ef81eb9eaad0bc: examples/quickstart.rs

examples/quickstart.rs:
