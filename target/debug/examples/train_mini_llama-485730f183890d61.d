/root/repo/target/debug/examples/train_mini_llama-485730f183890d61.d: examples/train_mini_llama.rs

/root/repo/target/debug/examples/train_mini_llama-485730f183890d61: examples/train_mini_llama.rs

examples/train_mini_llama.rs:
