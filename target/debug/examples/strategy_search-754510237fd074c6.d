/root/repo/target/debug/examples/strategy_search-754510237fd074c6.d: examples/strategy_search.rs

/root/repo/target/debug/examples/strategy_search-754510237fd074c6: examples/strategy_search.rs

examples/strategy_search.rs:
