/root/repo/target/debug/examples/profile_and_predict-c94a682ad98493bc.d: examples/profile_and_predict.rs

/root/repo/target/debug/examples/profile_and_predict-c94a682ad98493bc: examples/profile_and_predict.rs

examples/profile_and_predict.rs:
