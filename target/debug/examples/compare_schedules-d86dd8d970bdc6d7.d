/root/repo/target/debug/examples/compare_schedules-d86dd8d970bdc6d7.d: examples/compare_schedules.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_schedules-d86dd8d970bdc6d7.rmeta: examples/compare_schedules.rs Cargo.toml

examples/compare_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
