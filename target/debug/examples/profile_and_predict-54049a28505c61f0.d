/root/repo/target/debug/examples/profile_and_predict-54049a28505c61f0.d: examples/profile_and_predict.rs

/root/repo/target/debug/examples/profile_and_predict-54049a28505c61f0: examples/profile_and_predict.rs

examples/profile_and_predict.rs:
