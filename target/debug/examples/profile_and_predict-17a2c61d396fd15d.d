/root/repo/target/debug/examples/profile_and_predict-17a2c61d396fd15d.d: examples/profile_and_predict.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_and_predict-17a2c61d396fd15d.rmeta: examples/profile_and_predict.rs Cargo.toml

examples/profile_and_predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
