/root/repo/target/debug/examples/memory_budget-dbd3e9aa351d4c9d.d: examples/memory_budget.rs

/root/repo/target/debug/examples/memory_budget-dbd3e9aa351d4c9d: examples/memory_budget.rs

examples/memory_budget.rs:
