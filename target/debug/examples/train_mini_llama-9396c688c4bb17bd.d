/root/repo/target/debug/examples/train_mini_llama-9396c688c4bb17bd.d: examples/train_mini_llama.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_mini_llama-9396c688c4bb17bd.rmeta: examples/train_mini_llama.rs Cargo.toml

examples/train_mini_llama.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
