/root/repo/target/debug/examples/memory_budget-4b1a42c9b2b6a98b.d: examples/memory_budget.rs

/root/repo/target/debug/examples/memory_budget-4b1a42c9b2b6a98b: examples/memory_budget.rs

examples/memory_budget.rs:
