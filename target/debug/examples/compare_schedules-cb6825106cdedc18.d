/root/repo/target/debug/examples/compare_schedules-cb6825106cdedc18.d: examples/compare_schedules.rs

/root/repo/target/debug/examples/compare_schedules-cb6825106cdedc18: examples/compare_schedules.rs

examples/compare_schedules.rs:
