/root/repo/target/debug/examples/compare_schedules-ad2334e26f5bdea6.d: examples/compare_schedules.rs

/root/repo/target/debug/examples/compare_schedules-ad2334e26f5bdea6: examples/compare_schedules.rs

examples/compare_schedules.rs:
