/root/repo/target/debug/examples/quickstart-ffe2ee6da15fcc33.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ffe2ee6da15fcc33.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
