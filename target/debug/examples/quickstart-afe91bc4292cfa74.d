/root/repo/target/debug/examples/quickstart-afe91bc4292cfa74.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-afe91bc4292cfa74: examples/quickstart.rs

examples/quickstart.rs:
