/root/repo/target/debug/examples/compare_schedules-a4fac69768d02efd.d: examples/compare_schedules.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_schedules-a4fac69768d02efd.rmeta: examples/compare_schedules.rs Cargo.toml

examples/compare_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
