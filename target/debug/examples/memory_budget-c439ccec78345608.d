/root/repo/target/debug/examples/memory_budget-c439ccec78345608.d: examples/memory_budget.rs Cargo.toml

/root/repo/target/debug/examples/libmemory_budget-c439ccec78345608.rmeta: examples/memory_budget.rs Cargo.toml

examples/memory_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
