/root/repo/target/debug/examples/strategy_search-0ae0998977bcdd4f.d: examples/strategy_search.rs

/root/repo/target/debug/examples/strategy_search-0ae0998977bcdd4f: examples/strategy_search.rs

examples/strategy_search.rs:
