/root/repo/target/debug/examples/train_mini_llama-f45fd17fb3f19f9e.d: examples/train_mini_llama.rs

/root/repo/target/debug/examples/train_mini_llama-f45fd17fb3f19f9e: examples/train_mini_llama.rs

examples/train_mini_llama.rs:
