/root/repo/target/debug/examples/strategy_search-922ef94489eee516.d: examples/strategy_search.rs Cargo.toml

/root/repo/target/debug/examples/libstrategy_search-922ef94489eee516.rmeta: examples/strategy_search.rs Cargo.toml

examples/strategy_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
