//! Gang supervision: one training job's stage processes as a unit.
//!
//! A gang is `stages` copies of `mepipe-worker job`, one per fleet
//! slot, sharing a mesh directory for per-iteration UDS rendezvous. The
//! gang is scheduled and dies as a unit — a stage that exits leaves its
//! peers blocked in transport waits forever (the mesh has no accept
//! timeout by design), so the supervisor's one job is to notice the
//! first casualty and kill the rest. Liveness comes from two signals:
//! exit statuses polled without blocking, and per-stage progress files
//! the workers append one line per iteration (a stage that stops
//! appending while still running is hung, not slow — every stage
//! advances in lockstep or not at all).

use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// The pipeline shape a gang runs — everything a worker needs to
/// regenerate the schedule deterministically from flags, and everything
/// the verifier needs to replay it in-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GangShape {
    /// Pipeline stages (= processes = fleet slots).
    pub stages: usize,
    /// Sequence slices per micro-batch.
    pub slices: usize,
    /// Generator memory knob (`--warmup`): SVPP warmup cap, or the
    /// order solver's unit cap for synthesized schedules.
    pub warmup: Option<usize>,
    /// Regenerate through the order solver (`--schedule synth`) rather
    /// than the hand-written SVPP generator.
    pub synthesized: bool,
}

/// Everything needed to launch one gang attempt.
#[derive(Debug, Clone)]
pub struct GangConfig {
    /// Path to the `mepipe-worker` binary.
    pub worker_bin: PathBuf,
    /// Pipeline shape for this attempt.
    pub shape: GangShape,
    /// Micro-batches per iteration.
    pub micro_batches: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Model/batch seed.
    pub seed: u64,
    /// SGD learning rate.
    pub lr: f32,
    /// Target iteration count (exclusive upper bound).
    pub iters: usize,
    /// First iteration this attempt runs (the restore point).
    pub start_iter: usize,
    /// Checkpoint every this many completed iterations.
    pub ckpt_interval: usize,
    /// Directory receiving `stage-I/iter-N.bin` checkpoints (one epoch).
    pub ckpt_dir: PathBuf,
    /// Scratch for this attempt: mesh dirs, progress files, trace dumps.
    pub work_dir: PathBuf,
    /// Per-stage checkpoint to restore before running (empty = fresh).
    pub restore_from: Vec<Option<PathBuf>>,
    /// Chaos: `(stage, iteration)` — that stage aborts at that iteration.
    pub kill: Option<(usize, usize)>,
    /// Record spans so the control plane can merge a Chrome trace.
    pub traced: bool,
}

impl GangConfig {
    /// Where stage `stage` appends its per-iteration progress lines.
    pub fn progress_path(&self, stage: usize) -> PathBuf {
        self.work_dir.join(format!("progress-stage-{stage}.txt"))
    }

    /// Where stage `stage` dumps its latest iteration's span trace.
    pub fn trace_path(&self, stage: usize) -> PathBuf {
        self.work_dir.join(format!("trace-stage-{stage}.txt"))
    }

    fn stage_command(&self, stage: usize) -> Command {
        let mut cmd = Command::new(&self.worker_bin);
        cmd.arg("job")
            .arg("--stage")
            .arg(stage.to_string())
            .arg("--stages")
            .arg(self.shape.stages.to_string())
            .arg("--micro-batches")
            .arg(self.micro_batches.to_string())
            .arg("--slices")
            .arg(self.shape.slices.to_string())
            .arg("--seq-len")
            .arg(self.seq_len.to_string())
            .arg("--layers")
            .arg(self.layers.to_string())
            .arg("--seed")
            .arg(self.seed.to_string())
            .arg("--lr")
            .arg(self.lr.to_string())
            .arg("--iters")
            .arg(self.iters.to_string())
            .arg("--start-iter")
            .arg(self.start_iter.to_string())
            .arg("--ckpt-interval")
            .arg(self.ckpt_interval.to_string())
            .arg("--ckpt-dir")
            .arg(&self.ckpt_dir)
            .arg("--dir")
            .arg(self.work_dir.join("mesh"))
            .arg("--progress")
            .arg(self.progress_path(stage));
        if let Some(w) = self.shape.warmup {
            cmd.arg("--warmup").arg(w.to_string());
        }
        if self.shape.synthesized {
            cmd.arg("--schedule").arg("synth");
        }
        if let Some(path) = self.restore_from.get(stage).and_then(Option::as_ref) {
            cmd.arg("--restore-from").arg(path);
        }
        if let Some((kill_stage, at_iter)) = self.kill {
            if kill_stage == stage {
                cmd.arg("--kill-at-iter").arg(at_iter.to_string());
            }
        }
        if self.traced {
            cmd.arg("--trace-out").arg(self.trace_path(stage));
        }
        cmd.stdout(Stdio::piped());
        cmd
    }
}

struct Member {
    stage: usize,
    child: Option<Child>,
    reader: Option<std::thread::JoinHandle<String>>,
    stdout: Option<String>,
    status: Option<ExitStatus>,
    /// Progress-file size when last seen growing, and when.
    last_len: u64,
    last_growth: Instant,
}

/// What one non-blocking poll of the gang observed.
#[derive(Debug, Clone, PartialEq)]
pub enum GangPoll {
    /// All stages alive (or cleanly exited and waiting on siblings).
    Running,
    /// Every stage exited 0; `loss` is the stage-order share sum of the
    /// final iteration — bit-identical to an in-process run.
    Completed {
        /// Final-iteration loss, shares summed in stage order.
        loss: f64,
    },
    /// A stage died or hung; the rest were killed. `why` names it.
    Failed {
        /// Which stage started the failure and how.
        why: String,
    },
}

/// A launched gang under supervision.
pub struct Gang {
    cfg: GangConfig,
    members: Vec<Member>,
    done: Option<GangPoll>,
}

impl Gang {
    /// Spawns every stage of the gang.
    ///
    /// # Errors
    ///
    /// Returns an error (after killing any already-spawned stages) if a
    /// spawn fails, naming the stage and the OS error.
    pub fn launch(cfg: GangConfig) -> Result<Self, String> {
        std::fs::create_dir_all(&cfg.work_dir)
            .map_err(|e| format!("create gang work dir {}: {e}", cfg.work_dir.display()))?;
        std::fs::create_dir_all(&cfg.ckpt_dir)
            .map_err(|e| format!("create checkpoint dir {}: {e}", cfg.ckpt_dir.display()))?;
        let mut members = Vec::with_capacity(cfg.shape.stages);
        for stage in 0..cfg.shape.stages {
            let mut child = match cfg.stage_command(stage).spawn() {
                Ok(c) => c,
                Err(e) => {
                    let mut gang = Gang {
                        cfg,
                        members,
                        done: None,
                    };
                    gang.kill();
                    return Err(format!("spawn stage {stage}: {e}"));
                }
            };
            // Drain stdout on a thread so a chatty worker can't deadlock
            // against a full pipe while the daemon polls exit statuses.
            let mut stdout = child.stdout.take().expect("piped stdout");
            let reader = std::thread::spawn(move || {
                use std::io::Read;
                let mut buf = String::new();
                let _ = stdout.read_to_string(&mut buf);
                buf
            });
            members.push(Member {
                stage,
                child: Some(child),
                reader: Some(reader),
                stdout: None,
                status: None,
                last_len: 0,
                last_growth: Instant::now(),
            });
        }
        Ok(Gang {
            cfg,
            members,
            done: None,
        })
    }

    /// The config this gang was launched with.
    pub fn config(&self) -> &GangConfig {
        &self.cfg
    }

    /// Iterations each stage has completed, parsed from the progress
    /// files (`iter K ...` lines; completion of iteration K means K+1
    /// iterations done). A stage with no lines yet sits at the attempt's
    /// start iteration. Readable during and after the run — the files
    /// survive the processes, which is what makes post-mortem loss
    /// accounting possible.
    pub fn progress_iters(&self) -> Vec<usize> {
        (0..self.cfg.shape.stages)
            .map(|stage| {
                let text =
                    std::fs::read_to_string(self.cfg.progress_path(stage)).unwrap_or_default();
                text.lines()
                    .filter_map(|l| {
                        l.strip_prefix("iter ")?
                            .split_whitespace()
                            .next()?
                            .parse()
                            .ok()
                    })
                    .map(|k: usize| k + 1)
                    .max()
                    .unwrap_or(self.cfg.start_iter)
            })
            .collect()
    }

    /// Whole-job progress: the slowest stage's completed iterations.
    pub fn completed_iters(&self) -> usize {
        self.progress_iters().into_iter().min().unwrap_or(0)
    }

    /// Polls the gang without blocking. `hang_timeout` bounds how long a
    /// still-running stage may go without appending a progress line
    /// before the gang is declared hung. Terminal results are sticky:
    /// once `Completed` or `Failed` is returned, so is every later call.
    pub fn poll(&mut self, hang_timeout: Duration) -> GangPoll {
        if let Some(done) = &self.done {
            return done.clone();
        }
        let mut first_failure: Option<String> = None;
        for m in &mut self.members {
            let Some(child) = m.child.as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) => {
                    m.child.take();
                    m.status = Some(status);
                    m.stdout = m.reader.take().and_then(|r| r.join().ok());
                    if !status.success() && first_failure.is_none() {
                        first_failure = Some(format!("stage {} exited with {status}", m.stage));
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    if first_failure.is_none() {
                        first_failure = Some(format!("stage {}: poll failed: {e}", m.stage));
                    }
                }
            }
        }
        if first_failure.is_none() {
            for m in &mut self.members {
                if m.child.is_none() {
                    continue;
                }
                let len = std::fs::metadata(self.cfg.progress_path(m.stage))
                    .map(|md| md.len())
                    .unwrap_or(0);
                if len > m.last_len {
                    m.last_len = len;
                    m.last_growth = Instant::now();
                } else if m.last_growth.elapsed() > hang_timeout {
                    first_failure = Some(format!(
                        "stage {} made no progress for {:.0?}",
                        m.stage, hang_timeout
                    ));
                    break;
                }
            }
        }
        if let Some(why) = first_failure {
            self.kill();
            let done = GangPoll::Failed { why };
            self.done = Some(done.clone());
            return done;
        }
        if self.members.iter().any(|m| m.child.is_some()) {
            return GangPoll::Running;
        }
        // Every stage exited 0: combine final-iteration loss shares in
        // stage order, the same addition order as the in-process merge.
        let mut loss = 0.0f64;
        for m in &self.members {
            let stdout = m.stdout.as_deref().unwrap_or("");
            let prefix = format!("RESULT stage={} loss_bits=", m.stage);
            let Some(bits) = stdout
                .lines()
                .find_map(|l| l.strip_prefix(prefix.as_str())?.split_whitespace().next())
                .and_then(|f| f.parse::<u64>().ok())
            else {
                let done = GangPoll::Failed {
                    why: format!("stage {} exited 0 but printed no RESULT line", m.stage),
                };
                self.done = Some(done.clone());
                return done;
            };
            loss += f64::from_bits(bits);
        }
        let done = GangPoll::Completed { loss };
        self.done = Some(done.clone());
        done
    }

    /// Kills and reaps every still-running stage. Idempotent.
    pub fn kill(&mut self) {
        for m in &mut self.members {
            if let Some(mut child) = m.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(reader) = m.reader.take() {
                m.stdout = reader.join().ok().or(m.stdout.take());
            }
        }
    }
}

impl Drop for Gang {
    fn drop(&mut self) {
        self.kill();
    }
}
