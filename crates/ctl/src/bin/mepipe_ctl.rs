//! `mepipe-ctl`: drive the control plane from a shell.
//!
//! Subcommands:
//!
//! * `serve --socket S [--spool DIR] [--out DIR] [--nodes N]
//!   [--slots-per-node K] [--worker-bin PATH] [--hang-timeout-secs T]
//!   [--tick-ms M] [--http ADDR] [--oneshot --expect-jobs J]` — run the
//!   daemon over a simulated fleet of `N × K` slots. `--http` mounts
//!   the observability endpoint (`/metrics`, `/status`, `/healthz`) on
//!   a TCP address, polled from the tick loop. `--oneshot` exits once J
//!   jobs are terminal; the exit code is 0 only if every job completed
//!   with zero iterations lost beyond its checkpoint interval and every
//!   requested verification passed.
//! * `submit --socket S SPECFILE` — submit a job document (JSON or
//!   TOML).
//! * `status --socket S` — print the queue and fleet snapshot.
//! * `drain --socket S NODE` — drain a node; gangs on it re-shard off.
//! * `add-node --socket S --slots K` — grow the fleet; running jobs
//!   re-shard wider when the strategy search says the capacity helps.
//! * `shutdown --socket S` — finish running jobs, then exit.

use std::path::PathBuf;
use std::time::Duration;

use mepipe_comm::control::{Request, Response};
use mepipe_ctl::{request, serve, Daemon, ServeOptions};
use mepipe_hw::Fleet;

fn default_worker_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("mepipe-worker")))
        .unwrap_or_else(|| PathBuf::from("mepipe-worker"))
}

struct Flags {
    values: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(rest: &[String], bare: &[&str]) -> Flags {
        let mut values = Vec::new();
        let mut positional = Vec::new();
        let mut it = rest.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if bare.contains(&name) {
                    values.push((name.to_string(), "true".to_string()));
                } else {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("missing value for --{name}"));
                    values.push((name.to_string(), v.clone()));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Flags { values, positional }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("bad value for --{name}: {v}")),
            None => default,
        }
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn socket_from(flags: &Flags) -> PathBuf {
    PathBuf::from(flags.get("socket").unwrap_or("ctl.sock"))
}

fn run_client(req: &Request, flags: &Flags) -> i32 {
    match request(&socket_from(flags), req, Duration::from_secs(10)) {
        Ok(Response::Ok(detail)) => {
            println!("{detail}");
            0
        }
        Ok(Response::Err(reason)) => {
            eprintln!("error: {reason}");
            1
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = argv
        .split_first()
        .expect("usage: mepipe-ctl <serve|submit|status|drain|add-node|shutdown> [flags]");
    let flags = Flags::parse(rest, &["oneshot"]);
    let code = match mode.as_str() {
        "serve" => {
            let out_dir = PathBuf::from(flags.get("out").unwrap_or("target/ctl"));
            let fleet = Fleet::homogeneous(
                flags.parsed("nodes", 1usize),
                flags.parsed("slots-per-node", 4usize),
            );
            let worker_bin = flags
                .get("worker-bin")
                .map(PathBuf::from)
                .unwrap_or_else(default_worker_bin);
            let daemon = Daemon::new(fleet, worker_bin, out_dir)
                .unwrap_or_else(|e| panic!("{e}"))
                .with_hang_timeout(Duration::from_secs(
                    flags.parsed("hang-timeout-secs", 60u64),
                ));
            let opts = ServeOptions {
                socket: socket_from(&flags),
                spool: flags.get("spool").map(PathBuf::from),
                oneshot: flags.has("oneshot"),
                expect_jobs: flags.parsed("expect-jobs", 0usize),
                tick: Duration::from_millis(flags.parsed("tick-ms", 50u64)),
                http: flags.get("http").map(str::to_string),
            };
            serve(daemon, &opts).unwrap_or_else(|e| panic!("{e}"))
        }
        "submit" => {
            let path = flags
                .positional
                .first()
                .expect("usage: mepipe-ctl submit --socket S SPECFILE");
            let spec = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read job spec {path}: {e}"));
            run_client(&Request::Submit { spec }, &flags)
        }
        "status" => run_client(&Request::Status, &flags),
        "drain" => {
            let node = flags
                .positional
                .first()
                .expect("usage: mepipe-ctl drain --socket S NODE")
                .clone();
            run_client(&Request::Drain { node }, &flags)
        }
        "add-node" => run_client(
            &Request::AddNode {
                slots: flags.parsed("slots", 4usize),
            },
            &flags,
        ),
        "shutdown" => run_client(&Request::Shutdown, &flags),
        m => panic!("unknown mode {m} (expected serve|submit|status|drain|add-node|shutdown)"),
    };
    std::process::exit(code);
}
