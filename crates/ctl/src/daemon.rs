//! The control plane proper: job lifecycle, gang scheduling, failure
//! recovery and live re-sharding.
//!
//! A [`Daemon`] owns a [`Fleet`] of accelerator slots and a queue of
//! [`Job`]s. Each tick it polls running gangs, recovers failed ones
//! from their last common checkpoint, re-shards jobs displaced by
//! capacity changes, and admits pending jobs (priority first, with
//! opportunistic backfill that shrinks a job's pipeline when only part
//! of its request fits). Everything observable lives in the metrics
//! registry rebuilt per tick — per-job state gauges, restart and
//! re-shard counters, a lost-iteration counter, and a
//! lost-beyond-interval counter whose invariant value is zero: a
//! failure never costs more than one checkpoint interval of work.
//!
//! Determinism is the load-bearing property. Workers regenerate their
//! schedule from flags, batches derive from `(seed, iteration)`, SGD on
//! a zero gradient is a bitwise no-op, and per-stage checkpoints are
//! authoritative for exactly the layers a stage owns. Consequently a
//! job's final loss is bit-identical to a single-process replay of its
//! segment history — which [`verify_replay`] checks on request, even
//! across mid-run failures and stage-count changes.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mepipe_comm::control::{Request, Response};
use mepipe_core::svpp::Mepipe;
use mepipe_core::Synth;
use mepipe_hw::accelerator::AcceleratorSpec;
use mepipe_hw::link::LinkSpec;
use mepipe_hw::topology::ClusterSpec;
use mepipe_hw::{Fleet, GangAlloc};
use mepipe_model::config::TransformerConfig;
use mepipe_model::partition::{PartitionSpec, SequenceSplit};
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_schedule::ir::Schedule;
use mepipe_strategy::SearchEngine;
use mepipe_trace::chrome::{push_json_string, traces_to_chrome};
use mepipe_trace::{
    dump, EventLog, IterationTrace, Level, MetricsRegistry, PidKey, StragglerDetector,
    StragglerFlag, DEFAULT_STRAGGLER_FACTOR, DEFAULT_STRAGGLER_ROUNDS,
};
use mepipe_train::data::batch_for_iter;
use mepipe_train::params::ModelParams;
use mepipe_train::{checkpoint, PipelineRuntime, WgradMode};

use crate::gang::{Gang, GangConfig, GangPoll, GangShape};
use crate::spec::{derive_checkpoint_interval, JobSpec};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Queued, waiting for fleet capacity.
    Pending,
    /// Gang launched and making progress.
    Running,
    /// Gang died; next tick relaunches it from the last checkpoint.
    Recovering,
    /// Displaced by a capacity change; next tick re-runs the strategy
    /// search and relaunches under a new shape.
    Resharding,
    /// Reached its target iteration count.
    Completed,
    /// Gave up (restart budget exhausted or an unrecoverable error).
    Failed,
}

impl JobState {
    /// Stable numeric coding for the state gauge.
    pub fn code(self) -> f64 {
        match self {
            JobState::Pending => 0.0,
            JobState::Running => 1.0,
            JobState::Recovering => 2.0,
            JobState::Resharding => 3.0,
            JobState::Completed => 4.0,
            JobState::Failed => 5.0,
        }
    }

    /// Lower-case name for status output.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Recovering => "recovering",
            JobState::Resharding => "resharding",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will never run again.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed)
    }
}

/// One span of a job's iteration history run under a fixed shape —
/// the record [`verify_replay`] walks. A new segment starts at every
/// re-shard boundary; plain recovery (same shape, same trajectory)
/// does not create one.
#[derive(Debug, Clone)]
pub struct Segment {
    /// First iteration run under this shape.
    pub start_iter: usize,
    /// The shape itself.
    pub shape: GangShape,
}

/// A submitted job and everything the daemon knows about it.
pub struct Job {
    /// The parsed spec, as submitted.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Resolved checkpoint interval (from the spec, or derived).
    pub interval: usize,
    /// How the interval was chosen, when it was derived.
    pub interval_note: Option<String>,
    /// Current pipeline shape (admission may have shrunk the request).
    pub shape: GangShape,
    /// Iterations completed (the slowest stage's count).
    pub completed: usize,
    /// Gang relaunches after failures.
    pub restarts: u64,
    /// Shape changes after capacity events.
    pub reshards: u64,
    /// Iterations re-run because a failure lost them.
    pub lost_iters: u64,
    /// Iterations lost beyond the checkpoint interval — the recovery
    /// guarantee says this stays zero.
    pub lost_beyond: u64,
    /// Shape history for verification.
    pub segments: Vec<Segment>,
    /// Final-iteration loss once completed.
    pub final_loss: Option<f64>,
    /// Replay verdict, when the spec asked for verification.
    pub verified: Option<bool>,
    /// Last failure or rejection note.
    pub error: Option<String>,
    alloc: Option<GangAlloc>,
    gang: Option<Gang>,
    /// Checkpoint-directory epoch; bumped on every re-shard so stage
    /// counts never mix within one directory.
    epoch: usize,
    /// Where this epoch restarted from: `(iteration, merged full-model
    /// checkpoint)` — the floor for restore points while the epoch has
    /// no per-stage checkpoints of its own yet.
    epoch_base: (usize, Option<PathBuf>),
    attempt: usize,
    /// One-shot fault injection, consumed by the first launch.
    chaos: Option<(usize, usize)>,
    /// Progress-lag straggler detector fed each poll of a running gang.
    straggler: StragglerDetector,
    /// Currently-flagged straggling stages, surfaced in `/status`.
    pub straggler_flags: Vec<StragglerFlag>,
    /// Last per-stage progress sample (completed iterations), for
    /// `/status` and the per-stage metrics aggregation.
    pub stage_progress: Vec<usize>,
}

impl Job {
    fn new(spec: JobSpec, interval: usize, interval_note: Option<String>) -> Self {
        let shape = GangShape {
            stages: spec.stages,
            slices: spec.slices,
            warmup: None,
            synthesized: false,
        };
        let chaos = spec.kill_stage.zip(spec.kill_at_iter);
        Job {
            spec,
            state: JobState::Pending,
            interval,
            interval_note,
            shape,
            completed: 0,
            restarts: 0,
            reshards: 0,
            lost_iters: 0,
            lost_beyond: 0,
            segments: Vec::new(),
            final_loss: None,
            verified: None,
            error: None,
            alloc: None,
            gang: None,
            epoch: 0,
            epoch_base: (0, None),
            attempt: 0,
            chaos,
            straggler: StragglerDetector::new(DEFAULT_STRAGGLER_FACTOR, DEFAULT_STRAGGLER_ROUNDS),
            straggler_flags: Vec::new(),
            stage_progress: Vec::new(),
        }
    }
}

/// Regenerates the schedule a shape denotes, exactly as every worker
/// process does from its flags.
///
/// # Errors
///
/// Returns the generator's rejection message for infeasible dims.
pub fn make_schedule(shape: &GangShape, micro_batches: usize) -> Result<Schedule, String> {
    let dims = Dims::new(shape.stages, micro_batches).slices(shape.slices);
    let sch = if shape.synthesized {
        let mut gen = Synth::new();
        if let Some(c) = shape.warmup {
            gen = gen.cap(c);
        }
        gen.generate(&dims)
    } else {
        let mut gen = Mepipe::new();
        if let Some(f) = shape.warmup {
            gen = gen.warmup_cap(f);
        }
        gen.generate(&dims)
    };
    sch.map_err(|e| format!("schedule generation for {shape:?}: {e}"))
}

/// Runs the strategy search for the best shape a job can take on
/// `max_stages` slots: sweep feasible stage counts through the
/// re-shard engine (priced with the `layers - 2` convention of
/// `Calibrator::prior_for`, so modeled pipeline slots equal runtime
/// layers), then keep the fastest row the runtime can actually
/// execute — slices must divide the sequence, stages the layers.
///
/// # Errors
///
/// Returns an error when no stage count fits the capacity.
pub fn best_shape(
    engine: &SearchEngine,
    spec: &JobSpec,
    max_stages: usize,
) -> Result<GangShape, String> {
    if max_stages == 0 {
        return Err("no capacity".to_string());
    }
    let cfg = spec.config();
    let priced = TransformerConfig {
        layers: cfg.layers.saturating_sub(2),
        ..cfg
    };
    let template = PartitionSpec {
        pp: spec.stages.max(1),
        vp: 1,
        dp: 1,
        seq: SequenceSplit::SlicePipeline {
            slices: spec.slices,
        },
        recompute: false,
        micro_batch_size: 1,
        global_batch: spec.micro_batches,
    };
    let cluster = ClusterSpec {
        nodes: 1,
        gpus_per_node: max_stages,
        accelerator: AcceleratorSpec::rtx4090(),
        intra_node: LinkSpec::pcie4(),
        inter_node: LinkSpec::ib_100g(),
    };
    let rows = engine.reshard_mepipe(&priced, &template, &cluster, max_stages, None)?;
    rows.into_iter()
        .find(|r| spec.seq_len.is_multiple_of(r.row.slices) && spec.layers.is_multiple_of(r.stages))
        .map(|r| GangShape {
            stages: r.stages,
            slices: r.row.slices,
            warmup: Some(r.row.warmup),
            synthesized: r.row.synthesized,
        })
        .ok_or_else(|| "no re-shard candidate survives runtime divisibility".to_string())
}

/// The highest iteration `c` for which **every** stage directory under
/// `epoch_dir` holds an `iter-c.bin` checkpoint. Stages checkpoint
/// independently, so after a mid-write kill they may disagree by one
/// interval; only the common prefix is a consistent restore point.
/// Returns 0 when there is none.
pub fn restore_point(epoch_dir: &Path, stages: usize) -> usize {
    let mut candidates: Vec<usize> = std::fs::read_dir(epoch_dir.join("stage-0"))
        .map(|rd| {
            rd.filter_map(|e| {
                e.ok()?
                    .file_name()
                    .to_str()?
                    .strip_prefix("iter-")?
                    .strip_suffix(".bin")?
                    .parse()
                    .ok()
            })
            .collect()
        })
        .unwrap_or_default();
    candidates.sort_unstable();
    candidates
        .iter()
        .rev()
        .find(|&&c| {
            (1..stages).all(|s| {
                epoch_dir
                    .join(format!("stage-{s}"))
                    .join(format!("iter-{c}.bin"))
                    .exists()
            })
        })
        .copied()
        .unwrap_or(0)
}

/// Replays a job's full iteration history in-process and returns the
/// final-iteration loss. One runtime per segment, the model carried
/// across shape changes; because workers regenerate identical schedules
/// from the same shape parameters and batches derive from
/// `(seed, iteration)`, the result must be bit-identical to what the
/// gang reported — the end-to-end correctness check for the whole
/// recovery and re-sharding machinery.
///
/// # Errors
///
/// Returns an error if a segment's schedule cannot be regenerated or an
/// iteration fails.
pub fn verify_replay(spec: &JobSpec, segments: &[Segment]) -> Result<f64, String> {
    if segments.is_empty() {
        return Err("job has no segment history to replay".to_string());
    }
    let cfg = spec.config();
    let mut model = ModelParams::init(cfg, spec.seed);
    let mut last = f64::NAN;
    for (si, seg) in segments.iter().enumerate() {
        let end = segments.get(si + 1).map_or(spec.iters, |s| s.start_iter);
        let schedule = make_schedule(&seg.shape, spec.micro_batches)?;
        let mut rt = PipelineRuntime::new(model, seg.shape.stages, 1);
        for k in seg.start_iter..end {
            let batch = batch_for_iter(&cfg, spec.micro_batches, spec.seed, k);
            let stats = rt
                .train_step(&schedule, &batch, WgradMode::DrainOnWait, spec.lr as f32)
                .map_err(|e| format!("verify replay iteration {k}: {e}"))?;
            last = stats.loss;
        }
        model = rt.model;
    }
    Ok(last)
}

/// The control-plane daemon: fleet, job queue, and the tick loop.
pub struct Daemon {
    /// Accelerator capacity the daemon schedules against.
    pub fleet: Fleet,
    jobs: Vec<Job>,
    engine: SearchEngine,
    worker_bin: PathBuf,
    out_dir: PathBuf,
    hang_timeout: Duration,
    max_restarts: u64,
    /// Set by a shutdown request: stop admitting, finish what runs.
    pub shutting_down: bool,
    /// Structured event log doubling as the crash flight recorder;
    /// postmortems dump its ring alongside a metrics snapshot.
    pub events: EventLog,
    artifact_write_errors: u64,
}

impl Daemon {
    /// A daemon over `fleet`, spawning stage processes from
    /// `worker_bin` and writing artifacts (metrics, merged traces,
    /// checkpoints) under `out_dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if `out_dir` cannot be created.
    pub fn new(fleet: Fleet, worker_bin: PathBuf, out_dir: PathBuf) -> Result<Self, String> {
        std::fs::create_dir_all(&out_dir)
            .map_err(|e| format!("create out dir {}: {e}", out_dir.display()))?;
        Ok(Daemon {
            fleet,
            jobs: Vec::new(),
            engine: SearchEngine::new(),
            worker_bin,
            out_dir,
            hang_timeout: Duration::from_secs(60),
            max_restarts: 5,
            shutting_down: false,
            events: EventLog::stderr("ctl"),
            artifact_write_errors: 0,
        })
    }

    /// Overrides how long a stage may go without a progress line before
    /// its gang is declared hung.
    #[must_use]
    pub fn with_hang_timeout(mut self, t: Duration) -> Self {
        self.hang_timeout = t;
        self
    }

    /// All jobs in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Whether every submitted job reached a terminal state.
    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.state.terminal())
    }

    /// Whether nothing is running, recovering or resharding (pending
    /// jobs may remain — relevant during shutdown).
    pub fn idle(&self) -> bool {
        !self.jobs.iter().any(|j| {
            matches!(
                j.state,
                JobState::Running | JobState::Recovering | JobState::Resharding
            )
        })
    }

    fn job_dir(&self, name: &str) -> PathBuf {
        self.out_dir.join("jobs").join(name)
    }

    fn epoch_dir(&self, i: usize) -> PathBuf {
        self.job_dir(&self.jobs[i].spec.name)
            .join(format!("ckpt-epoch-{}", self.jobs[i].epoch))
    }

    /// Parses, validates and queues a job document. When the spec omits
    /// `checkpoint_interval`, derives it from measured checkpoint and
    /// iteration costs via Young's formula and logs the choice.
    ///
    /// # Errors
    ///
    /// Returns the spec parse/validation error, or a duplicate-name
    /// rejection.
    pub fn submit(&mut self, text: &str) -> Result<String, String> {
        let spec = JobSpec::parse(text)?;
        if self.jobs.iter().any(|j| j.spec.name == spec.name) {
            return Err(format!("job {:?} already exists", spec.name));
        }
        let (interval, note) = match spec.checkpoint_interval {
            Some(iv) => (iv, None),
            None => {
                let derived = derive_checkpoint_interval(&spec, measure_iteration_seconds);
                let note = derived.describe(&spec);
                self.events
                    .event(Level::Info, Some(&spec.name), None, &note, &[]);
                (derived.iters, Some(note))
            }
        };
        let name = spec.name.clone();
        let derived_suffix = if note.is_some() { " (derived)" } else { "" };
        self.jobs.push(Job::new(spec, interval, note));
        Ok(format!(
            "{name} queued, checkpoint every {interval} iterations{derived_suffix}"
        ))
    }

    /// Handles one control request, mutating daemon state.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Submit { spec } => match self.submit(spec) {
                Ok(detail) => Response::Ok(detail),
                Err(reason) => Response::Err(reason),
            },
            Request::Status => Response::Ok(self.status_text()),
            Request::Drain { node } => {
                if !self.fleet.drain(node) {
                    return Response::Err(format!("no such node {node:?}"));
                }
                let displaced = self.displace_jobs_on(node);
                Response::Ok(format!(
                    "{node} drained; {displaced} running job(s) re-sharding off it"
                ))
            }
            Request::AddNode { slots } => {
                if *slots == 0 {
                    return Response::Err("a node needs at least one slot".to_string());
                }
                let name = self.fleet.add_node(*slots);
                let expanded = self.expand_jobs();
                Response::Ok(format!(
                    "{name} added with {slots} slot(s); {expanded} running job(s) re-sharding to use the new capacity"
                ))
            }
            Request::Shutdown => {
                self.shutting_down = true;
                Response::Ok("draining: running jobs finish, nothing new starts".to_string())
            }
        }
    }

    /// Kills and marks for re-sharding every active job whose gang
    /// holds slots on `node`. Returns how many were displaced.
    fn displace_jobs_on(&mut self, node: &str) -> usize {
        let mut displaced = 0;
        for i in 0..self.jobs.len() {
            let holds = matches!(self.jobs[i].state, JobState::Running | JobState::Recovering)
                && self.jobs[i].alloc.as_ref().is_some_and(|a| a.uses(node));
            if holds {
                self.displace(i, format!("node {node} drained"));
                displaced += 1;
            }
        }
        displaced
    }

    /// Re-runs the strategy search for every running job against the
    /// grown fleet; jobs whose best shape now uses more stages are
    /// displaced to re-shard wider. Returns how many.
    fn expand_jobs(&mut self) -> usize {
        let mut expanded = 0;
        for i in 0..self.jobs.len() {
            if self.jobs[i].state != JobState::Running {
                continue;
            }
            let held = self.jobs[i].alloc.as_ref().map_or(0, GangAlloc::total);
            let ceiling = (held + self.fleet.free_slots()).min(self.jobs[i].spec.micro_batches);
            let Ok(shape) = best_shape(&self.engine, &self.jobs[i].spec, ceiling) else {
                continue;
            };
            if shape.stages > self.jobs[i].shape.stages {
                self.displace(i, "fleet grew".to_string());
                expanded += 1;
            }
        }
        expanded
    }

    /// Kills job `i`'s gang, releases its slots and marks it
    /// re-sharding. Loss accounting happens at relaunch, where the
    /// restore point is known.
    fn displace(&mut self, i: usize, why: String) {
        let job = &mut self.jobs[i];
        if let Some(mut gang) = job.gang.take() {
            gang.kill();
            job.completed = gang.completed_iters().max(job.epoch_base.0);
        }
        if let Some(alloc) = job.alloc.take() {
            self.fleet.release(&alloc);
        }
        self.events.event(
            Level::Warn,
            Some(&job.spec.name),
            None,
            format!("displaced ({why}), re-sharding from checkpoint"),
            &[],
        );
        job.state = JobState::Resharding;
    }

    /// One scheduler pass: poll gangs, recover, re-shard, admit.
    pub fn tick(&mut self) {
        for i in 0..self.jobs.len() {
            match self.jobs[i].state {
                JobState::Running => self.poll_running(i),
                JobState::Recovering => self.relaunch(i),
                JobState::Resharding => self.reshard(i),
                _ => {}
            }
        }
        if !self.shutting_down {
            self.admit_pending();
        }
        self.write_artifacts();
    }

    fn poll_running(&mut self, i: usize) {
        let hang = self.hang_timeout;
        let Some(gang) = self.jobs[i].gang.as_mut() else {
            self.fail(i, "running job has no gang (internal bug)".to_string());
            return;
        };
        match gang.poll(hang) {
            GangPoll::Running => {
                let progress = gang.progress_iters();
                let done = progress.iter().copied().min().unwrap_or(0);
                let job = &mut self.jobs[i];
                job.completed = job.completed.max(done);
                job.stage_progress = progress;
                self.detect_stragglers(i);
            }
            GangPoll::Completed { loss } => self.on_completed(i, loss),
            GangPoll::Failed { why } => self.on_failed(i, why),
        }
    }

    /// Feeds job `i`'s per-stage progress into its straggler detector.
    ///
    /// The daemon sees iteration *counts*, not latencies, so the
    /// observation is each stage's progress lag behind the front-runner
    /// (`max - mine + 1`, so a fully level gang observes all-ones). A
    /// stage persistently lagging the median by more than the factor for
    /// the persistence window gets flagged — the cross-process analog of
    /// the latency-histogram detector the in-process launcher runs.
    fn detect_stragglers(&mut self, i: usize) {
        let job = &mut self.jobs[i];
        if job.stage_progress.is_empty() {
            return;
        }
        let max = job.stage_progress.iter().copied().max().unwrap_or(0);
        let lag: Vec<f64> = job
            .stage_progress
            .iter()
            .map(|&p| (max - p + 1) as f64)
            .collect();
        let flags = job.straggler.observe(&lag);
        for f in &flags {
            if !job.straggler_flags.iter().any(|old| old.stage == f.stage) {
                self.events.event(
                    Level::Warn,
                    Some(&job.spec.name),
                    Some(f.stage),
                    format!(
                        "straggler: stage {} progress lag {:.1}x the gang median for {} poll(s)",
                        f.stage, f.ratio, f.rounds
                    ),
                    &[],
                );
            }
        }
        job.straggler_flags = flags;
    }

    fn on_completed(&mut self, i: usize, loss: f64) {
        self.write_merged_trace(i);
        let job = &mut self.jobs[i];
        job.gang = None;
        job.completed = job.spec.iters;
        job.final_loss = Some(loss);
        job.state = JobState::Completed;
        job.error = None;
        let alloc = job.alloc.take();
        if let Some(alloc) = alloc {
            self.fleet.release(&alloc);
        }
        let job = &self.jobs[i];
        self.events.event(
            Level::Info,
            Some(&job.spec.name),
            None,
            format!("completed {} iterations", job.spec.iters),
            &[("final_loss", format!("{loss:.6}"))],
        );
        if job.spec.verify {
            let verdict = verify_replay(&job.spec, &job.segments);
            let job = &mut self.jobs[i];
            match verdict {
                Ok(replay) => {
                    let ok = replay.to_bits() == loss.to_bits();
                    job.verified = Some(ok);
                    if ok {
                        self.events.event(
                            Level::Info,
                            Some(&job.spec.name),
                            None,
                            format!(
                                "verified: replay loss bit-identical across {} segment(s)",
                                job.segments.len()
                            ),
                            &[],
                        );
                    } else {
                        let why = format!(
                            "verification failed: gang loss {loss} != replay loss {replay}"
                        );
                        job.error = Some(why.clone());
                        let name = job.spec.name.clone();
                        self.events
                            .event(Level::Error, Some(&name), None, &why, &[]);
                        self.dump_postmortem(&name, &why);
                    }
                }
                Err(e) => {
                    job.verified = Some(false);
                    let why = format!("verification replay errored: {e}");
                    job.error = Some(why.clone());
                    let name = job.spec.name.clone();
                    self.events
                        .event(Level::Error, Some(&name), None, &why, &[]);
                    self.dump_postmortem(&name, &why);
                }
            }
        }
    }

    /// Dumps the flight recorder — last events, open spans, and a
    /// metrics snapshot — to `out_dir/postmortem-<job>.json`. Called on
    /// gang death, verification failure, and restart-budget exhaustion
    /// so the last recorded events name what died.
    fn dump_postmortem(&mut self, name: &str, reason: &str) {
        let reg = self.metrics();
        let path = self.out_dir.join(format!("postmortem-{name}.json"));
        if let Err(e) = self.events.dump_postmortem(&path, reason, Some(&reg)) {
            self.events.event(
                Level::Error,
                Some(name),
                None,
                format!("write postmortem {}: {e}", path.display()),
                &[],
            );
        }
    }

    /// Merges the gang's per-stage span dumps (each stage's last
    /// iteration) into one Chrome trace at `out_dir/job-NAME.trace.json`.
    fn write_merged_trace(&mut self, i: usize) {
        let job = &self.jobs[i];
        let Some(gang) = job.gang.as_ref() else {
            return;
        };
        let cfg = gang.config();
        let stages: Result<Vec<_>, String> = (0..cfg.shape.stages)
            .map(|s| dump::read_stage_trace(&cfg.trace_path(s)))
            .collect();
        match stages {
            Ok(stages) => {
                let json = traces_to_chrome(&IterationTrace { stages }, PidKey::Stage);
                let path = self
                    .out_dir
                    .join(format!("job-{}.trace.json", job.spec.name));
                if let Err(e) = std::fs::write(&path, json) {
                    self.events.event(
                        Level::Error,
                        Some(&job.spec.name),
                        None,
                        format!("write merged trace: {e}"),
                        &[],
                    );
                }
            }
            Err(e) => self.events.event(
                Level::Error,
                Some(&job.spec.name),
                None,
                format!("merge stage traces: {e}"),
                &[],
            ),
        }
    }

    fn on_failed(&mut self, i: usize, why: String) {
        let max_restarts = self.max_restarts;
        let epoch_dir = self.epoch_dir(i);
        let job = &mut self.jobs[i];
        if let Some(gang) = job.gang.take() {
            job.completed = gang.completed_iters().max(job.epoch_base.0);
        }
        job.restarts += 1;
        job.error = Some(why.clone());
        let name = job.spec.name.clone();
        let stage = parse_stage_tag(&why);
        if job.restarts > max_restarts {
            self.fail(
                i,
                format!("{why} (giving up after {max_restarts} restarts)"),
            );
            self.dump_postmortem(&name, &why);
            return;
        }
        // Account the lost work now so metrics show it while recovering.
        let c = restore_point(&epoch_dir, job.shape.stages).max(job.epoch_base.0);
        let lost = job.completed.saturating_sub(c);
        job.lost_iters += lost as u64;
        job.lost_beyond += lost.saturating_sub(job.interval) as u64;
        job.state = JobState::Recovering;
        self.events.event(
            Level::Error,
            Some(&name),
            stage,
            format!("{why}; recovering from iteration {c} ({lost} iteration(s) to re-run)"),
            &[],
        );
        self.dump_postmortem(&name, &why);
    }

    fn fail(&mut self, i: usize, why: String) {
        let job = &mut self.jobs[i];
        job.gang = None;
        job.state = JobState::Failed;
        self.events.event(
            Level::Error,
            Some(&job.spec.name),
            parse_stage_tag(&why),
            format!("failed: {why}"),
            &[],
        );
        job.error = Some(why);
        let alloc = job.alloc.take();
        if let Some(alloc) = alloc {
            self.fleet.release(&alloc);
        }
    }

    /// Relaunches a recovering job's gang, same shape and slots, from
    /// the newest restore point: per-stage checkpoints when this epoch
    /// has them (each stage restores its *own* file — authoritative for
    /// exactly the layers it executes), else the epoch's merged base
    /// checkpoint, else fresh from the seed.
    fn relaunch(&mut self, i: usize) {
        let epoch_dir = self.epoch_dir(i);
        let job = &self.jobs[i];
        let stages = job.shape.stages;
        let (base_iter, base_file) = job.epoch_base.clone();
        let c = restore_point(&epoch_dir, stages).max(base_iter);
        let restore_from: Vec<Option<PathBuf>> = if c == 0 {
            vec![None; stages]
        } else if c > base_iter || base_file.is_none() {
            (0..stages)
                .map(|s| {
                    Some(
                        epoch_dir
                            .join(format!("stage-{s}"))
                            .join(format!("iter-{c}.bin")),
                    )
                })
                .collect()
        } else {
            vec![base_file; stages]
        };
        self.launch_attempt(i, c, restore_from);
    }

    /// Re-shards a displaced job: pick the best shape for the capacity
    /// that exists now, merge the per-stage checkpoints into one
    /// canonical full model, and relaunch every new stage from it. A
    /// full-model restore is correct for any stage count because each
    /// stage's forward touches only the layers it owns. No capacity?
    /// The job simply stays in `Resharding` until some appears.
    fn reshard(&mut self, i: usize) {
        let old_epoch_dir = self.epoch_dir(i);
        let job_dir = self.job_dir(&self.jobs[i].spec.name);
        let job = &self.jobs[i];
        let old_stages = job.shape.stages;
        let (base_iter, base_file) = job.epoch_base.clone();
        let c_parts = restore_point(&old_epoch_dir, old_stages);
        let c = c_parts.max(base_iter);

        let max = self.fleet.free_slots().min(self.jobs[i].spec.micro_batches);
        let shape = match best_shape(&self.engine, &self.jobs[i].spec, max) {
            Ok(s) => s,
            Err(e) => {
                // Stays Resharding; record why for status output.
                self.jobs[i].error = Some(format!("waiting for capacity: {e}"));
                return;
            }
        };
        let Some(alloc) = self.fleet.allocate(shape.stages) else {
            return;
        };

        // Build the canonical restore file for the new gang.
        let restore: Option<PathBuf> = if c == 0 {
            None
        } else if c_parts > base_iter || base_file.is_none() {
            let parts: Result<Vec<ModelParams>, String> = (0..old_stages)
                .map(|s| {
                    let path = old_epoch_dir
                        .join(format!("stage-{s}"))
                        .join(format!("iter-{c_parts}.bin"));
                    let bytes = std::fs::read(&path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    checkpoint::restore(&bytes).map_err(|e| format!("{}: {e}", path.display()))
                })
                .collect();
            let merged = parts.and_then(|p| {
                checkpoint::merge_stage_parts(&p).map_err(|e| format!("merge stage parts: {e}"))
            });
            match merged {
                Ok(model) => {
                    let next_epoch = self.jobs[i].epoch + 1;
                    let path = job_dir.join(format!("merged-epoch-{next_epoch}-iter-{c}.bin"));
                    if let Err(e) = std::fs::write(&path, checkpoint::save(&model)) {
                        self.fleet.release(&alloc);
                        self.fail(i, format!("write merged checkpoint: {e}"));
                        return;
                    }
                    Some(path)
                }
                Err(e) => {
                    self.fleet.release(&alloc);
                    self.fail(i, e);
                    return;
                }
            }
        } else {
            base_file
        };

        let job = &mut self.jobs[i];
        let lost = job.completed.saturating_sub(c);
        job.lost_iters += lost as u64;
        job.lost_beyond += lost.saturating_sub(job.interval) as u64;
        job.reshards += 1;
        job.epoch += 1;
        job.epoch_base = (c, restore.clone());
        job.alloc = Some(alloc);
        let old_shape = job.shape;
        job.shape = shape;
        job.segments.retain(|s| s.start_iter < c);
        job.segments.push(Segment {
            start_iter: c,
            shape,
        });
        self.events.event(
            Level::Info,
            Some(&job.spec.name),
            None,
            format!(
                "re-sharded {} -> {} stage(s) (slices {} -> {}), resuming at iteration {c}",
                old_shape.stages, shape.stages, old_shape.slices, shape.slices
            ),
            &[],
        );
        let stages = shape.stages;
        self.launch_attempt(i, c, vec![restore; stages]);
    }

    /// Admits pending jobs: priority first (ties by submission order),
    /// backfilling past jobs that don't fit. A job whose full request
    /// exceeds current free capacity may be admitted shrunk — the
    /// strategy search picks the best shape that does fit.
    fn admit_pending(&mut self) {
        let mut order: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| self.jobs[i].state == JobState::Pending)
            .collect();
        order.sort_by_key(|&i| (-self.jobs[i].spec.priority, i));
        for i in order {
            let free = self.fleet.free_slots();
            if free == 0 {
                break;
            }
            let spec = &self.jobs[i].spec;
            let shape = if free >= spec.stages {
                GangShape {
                    stages: spec.stages,
                    slices: spec.slices,
                    warmup: None,
                    synthesized: false,
                }
            } else {
                match best_shape(&self.engine, spec, free) {
                    Ok(s) => s,
                    Err(_) => continue, // backfill: try the next job
                }
            };
            let Some(alloc) = self.fleet.allocate(shape.stages) else {
                continue;
            };
            let job = &mut self.jobs[i];
            if shape.stages < job.spec.stages {
                self.events.event(
                    Level::Warn,
                    Some(&job.spec.name),
                    None,
                    format!(
                        "admitted shrunk to {} of {} requested stage(s)",
                        shape.stages, job.spec.stages
                    ),
                    &[],
                );
            }
            job.alloc = Some(alloc);
            job.shape = shape;
            job.segments = vec![Segment {
                start_iter: 0,
                shape,
            }];
            let stages = shape.stages;
            self.launch_attempt(i, 0, vec![None; stages]);
        }
    }

    fn launch_attempt(&mut self, i: usize, start_iter: usize, restore_from: Vec<Option<PathBuf>>) {
        let worker_bin = self.worker_bin.clone();
        let epoch_dir = self.epoch_dir(i);
        let job_dir = self.job_dir(&self.jobs[i].spec.name);
        let job = &mut self.jobs[i];
        job.attempt += 1;
        let cfg = GangConfig {
            worker_bin,
            shape: job.shape,
            micro_batches: job.spec.micro_batches,
            seq_len: job.spec.seq_len,
            layers: job.spec.layers,
            seed: job.spec.seed,
            lr: job.spec.lr as f32,
            iters: job.spec.iters,
            start_iter,
            ckpt_interval: job.interval,
            ckpt_dir: epoch_dir,
            work_dir: job_dir.join(format!("attempt-{}", job.attempt)),
            restore_from,
            kill: job.chaos.take(),
            traced: true,
        };
        match Gang::launch(cfg) {
            Ok(gang) => {
                job.gang = Some(gang);
                job.completed = start_iter;
                job.state = JobState::Running;
            }
            Err(e) => self.fail(i, format!("gang launch: {e}")),
        }
    }

    /// Builds a fresh registry reflecting the whole control plane.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for job in &self.jobs {
            let l: [(&str, String); 1] = [("job", job.spec.name.clone())];
            reg.gauge(
                "mepipe_ctl_job_state",
                "Job lifecycle (0 pending, 1 running, 2 recovering, 3 resharding, 4 completed, 5 failed)",
                &l,
                job.state.code(),
            );
            reg.gauge(
                "mepipe_ctl_job_completed_iterations",
                "Iterations the slowest stage has completed",
                &l,
                job.completed as f64,
            );
            reg.gauge(
                "mepipe_ctl_job_target_iterations",
                "Iterations the job was submitted to run",
                &l,
                job.spec.iters as f64,
            );
            reg.gauge(
                "mepipe_ctl_job_stages",
                "Pipeline stages in the job's current shape",
                &l,
                job.shape.stages as f64,
            );
            reg.gauge(
                "mepipe_ctl_job_checkpoint_interval",
                "Iterations between checkpoints (spec'd or Young-derived)",
                &l,
                job.interval as f64,
            );
            reg.counter(
                "mepipe_ctl_job_restarts_total",
                "Gang relaunches after failures",
                &l,
                job.restarts as f64,
            );
            reg.counter(
                "mepipe_ctl_job_reshards_total",
                "Shape changes after fleet capacity events",
                &l,
                job.reshards as f64,
            );
            reg.counter(
                "mepipe_ctl_job_lost_iterations_total",
                "Iterations re-run because a failure lost them",
                &l,
                job.lost_iters as f64,
            );
            reg.counter(
                "mepipe_ctl_job_lost_beyond_interval_total",
                "Iterations lost beyond the checkpoint interval (invariant: 0)",
                &l,
                job.lost_beyond as f64,
            );
            if let Some(loss) = job.final_loss {
                reg.gauge(
                    "mepipe_ctl_job_final_loss",
                    "Final-iteration training loss",
                    &l,
                    loss,
                );
            }
            if let Some(ok) = job.verified {
                reg.gauge(
                    "mepipe_ctl_job_verified",
                    "1 when the in-process replay reproduced the gang's loss bit-for-bit",
                    &l,
                    f64::from(u8::from(ok)),
                );
            }
            // Per-gang aggregation: each stage process reports progress
            // through its progress file; the daemon re-exports the whole
            // gang as one labelled family.
            for (stage, &iters) in job.stage_progress.iter().enumerate() {
                let sl: [(&str, String); 2] =
                    [("job", job.spec.name.clone()), ("stage", stage.to_string())];
                reg.gauge(
                    "mepipe_ctl_stage_completed_iterations",
                    "Iterations each stage of the gang has completed",
                    &sl,
                    iters as f64,
                );
                let flagged = job.straggler_flags.iter().any(|f| f.stage == stage);
                reg.gauge(
                    "mepipe_ctl_stage_straggler",
                    "1 while the stage persistently lags the gang median",
                    &sl,
                    f64::from(u8::from(flagged)),
                );
            }
        }
        reg.counter(
            "mepipe_ctl_artifact_write_errors_total",
            "Failed metrics/status artifact writes under the out dir",
            &[],
            self.artifact_write_errors as f64,
        );
        reg.gauge(
            "mepipe_ctl_fleet_slots_free",
            "Slots new allocations may take",
            &[],
            self.fleet.free_slots() as f64,
        );
        reg.gauge(
            "mepipe_ctl_fleet_slots_used",
            "Slots held by running gangs",
            &[],
            self.fleet.used_slots() as f64,
        );
        reg.gauge(
            "mepipe_ctl_fleet_slots_schedulable",
            "Slots on undrained nodes, busy or not",
            &[],
            self.fleet.schedulable_slots() as f64,
        );
        for node in self.fleet.nodes() {
            let l: [(&str, String); 1] = [("node", node.name.clone())];
            reg.gauge(
                "mepipe_ctl_node_slots",
                "Accelerator slots on the node",
                &l,
                node.slots as f64,
            );
            reg.gauge(
                "mepipe_ctl_node_drained",
                "1 when the node accepts no new allocations",
                &l,
                f64::from(u8::from(node.drained)),
            );
        }
        reg
    }

    /// Writes `metrics.json`, `metrics.prom` and `status.json` under
    /// the out dir. Failures are not swallowed: each one is logged and
    /// counted in `mepipe_ctl_artifact_write_errors_total`, so a full
    /// disk or bad mount shows up in the very metrics that still render
    /// over HTTP.
    pub fn write_artifacts(&mut self) {
        let reg = self.metrics();
        let writes = [
            ("metrics.json", reg.to_json()),
            ("metrics.prom", reg.to_prometheus_text()),
            ("status.json", self.status_json()),
        ];
        for (file, body) in writes {
            if let Err(e) = std::fs::write(self.out_dir.join(file), body) {
                self.artifact_write_errors += 1;
                self.events.event(
                    Level::Error,
                    None,
                    None,
                    format!("write artifact {file}: {e}"),
                    &[("errors_total", self.artifact_write_errors.to_string())],
                );
            }
        }
    }

    /// Human-readable queue and fleet snapshot for `status`.
    pub fn status_text(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            out.push_str(&format!(
                "job {}: {} {}/{} iters, stages={}, slices={}, ckpt-interval={}, restarts={}, reshards={}, lost={} (beyond-interval {})",
                job.spec.name,
                job.state.name(),
                job.completed,
                job.spec.iters,
                job.shape.stages,
                job.shape.slices,
                job.interval,
                job.restarts,
                job.reshards,
                job.lost_iters,
                job.lost_beyond,
            ));
            if let Some(loss) = job.final_loss {
                out.push_str(&format!(", loss={loss:.6}"));
            }
            if let Some(ok) = job.verified {
                out.push_str(if ok { ", verified" } else { ", VERIFY-FAILED" });
            }
            if let Some(e) = &job.error {
                out.push_str(&format!(", note: {e}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "fleet: {} used / {} free / {} schedulable",
            self.fleet.used_slots(),
            self.fleet.free_slots(),
            self.fleet.schedulable_slots()
        ));
        for node in self.fleet.nodes() {
            out.push_str(&format!(
                "; {}: {}/{} used{}",
                node.name,
                node.used,
                node.slots,
                if node.drained { " [drained]" } else { "" }
            ));
        }
        out
    }

    /// Machine-readable control-plane snapshot for `/status`: every
    /// job's lifecycle, shape, segment history, per-stage progress and
    /// straggler flags, plus the fleet. Valid JSON by construction.
    pub fn status_json(&self) -> String {
        let mut out = String::from("{\"shutting_down\":");
        out.push_str(if self.shutting_down { "true" } else { "false" });
        out.push_str(",\"jobs\":[");
        for (ji, job) in self.jobs.iter().enumerate() {
            if ji > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &job.spec.name);
            out.push_str(",\"state\":");
            push_json_string(&mut out, job.state.name());
            out.push_str(&format!(
                ",\"completed\":{},\"target\":{},\"stages\":{},\"slices\":{},\
                 \"checkpoint_interval\":{},\"restarts\":{},\"reshards\":{},\
                 \"lost_iterations\":{},\"lost_beyond_interval\":{}",
                job.completed,
                job.spec.iters,
                job.shape.stages,
                job.shape.slices,
                job.interval,
                job.restarts,
                job.reshards,
                job.lost_iters,
                job.lost_beyond,
            ));
            out.push_str(",\"stage_progress\":[");
            for (si, p) in job.stage_progress.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&p.to_string());
            }
            out.push_str("],\"stragglers\":[");
            for (fi, f) in job.straggler_flags.iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"stage\":{},\"ratio\":{:.3},\"rounds\":{}}}",
                    f.stage, f.ratio, f.rounds
                ));
            }
            out.push_str("],\"segments\":[");
            for (si, seg) in job.segments.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"start_iter\":{},\"stages\":{},\"slices\":{}}}",
                    seg.start_iter, seg.shape.stages, seg.shape.slices
                ));
            }
            out.push(']');
            match job.final_loss {
                Some(loss) => out.push_str(&format!(",\"final_loss\":{loss}")),
                None => out.push_str(",\"final_loss\":null"),
            }
            match job.verified {
                Some(ok) => out.push_str(&format!(",\"verified\":{ok}")),
                None => out.push_str(",\"verified\":null"),
            }
            match &job.error {
                Some(e) => {
                    out.push_str(",\"error\":");
                    push_json_string(&mut out, e);
                }
                None => out.push_str(",\"error\":null"),
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"fleet\":{{\"used\":{},\"free\":{},\"schedulable\":{},\"nodes\":[",
            self.fleet.used_slots(),
            self.fleet.free_slots(),
            self.fleet.schedulable_slots()
        ));
        for (ni, node) in self.fleet.nodes().iter().enumerate() {
            if ni > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &node.name);
            out.push_str(&format!(
                ",\"slots\":{},\"used\":{},\"drained\":{}}}",
                node.slots, node.used, node.drained
            ));
        }
        out.push_str("]}}");
        out
    }
}

/// Extracts the stage index from a gang failure message of the form
/// `stage N ...`, so flight-recorder events can carry the stage tag of
/// whatever died.
fn parse_stage_tag(why: &str) -> Option<usize> {
    why.strip_prefix("stage ")?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Measures one real in-process iteration of the spec's model at its
/// requested shape — the `T_iter` input to Young's formula.
fn measure_iteration_seconds(spec: &JobSpec) -> f64 {
    let shape = GangShape {
        stages: spec.stages,
        slices: spec.slices,
        warmup: None,
        synthesized: false,
    };
    let Ok(schedule) = make_schedule(&shape, spec.micro_batches) else {
        return 0.05; // infeasible shapes are rejected later; any prior works
    };
    let rt = PipelineRuntime::new(ModelParams::init(spec.config(), spec.seed), spec.stages, 1);
    let batch = batch_for_iter(&spec.config(), spec.micro_batches, spec.seed, 0);
    let t0 = Instant::now();
    match rt.run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None) {
        Ok(_) => t0.elapsed().as_secs_f64(),
        Err(_) => 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> JobSpec {
        JobSpec::parse(text).unwrap()
    }

    #[test]
    fn best_shape_respects_capacity_and_divisibility() {
        let engine = SearchEngine::new();
        let s = spec(
            "name = \"j\"\niters = 4\nstages = 2\nlayers = 4\nmicro_batches = 4\nslices = 2\nseq_len = 16\n",
        );
        // 4 slots: the search may use up to 4 stages (4 layers divide).
        let wide = best_shape(&engine, &s, 4).unwrap();
        assert!(wide.stages <= 4 && s.layers.is_multiple_of(wide.stages));
        assert!(s.seq_len.is_multiple_of(wide.slices));
        // 1 slot: must collapse to a single stage.
        let narrow = best_shape(&engine, &s, 1).unwrap();
        assert_eq!(narrow.stages, 1);
        assert!(best_shape(&engine, &s, 0).is_err());
    }

    #[test]
    fn restore_point_needs_every_stage() {
        let dir = std::env::temp_dir().join(format!("mepipe-ctl-rp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (stage, iters) in [(0usize, vec![2usize, 4, 6]), (1, vec![2, 4])] {
            let sd = dir.join(format!("stage-{stage}"));
            std::fs::create_dir_all(&sd).unwrap();
            for c in iters {
                std::fs::write(sd.join(format!("iter-{c}.bin")), b"x").unwrap();
            }
        }
        // Stage 1 never published iter-6: the common prefix ends at 4.
        assert_eq!(restore_point(&dir, 2), 4);
        assert_eq!(restore_point(&dir, 1), 6, "single stage trusts its own");
        assert_eq!(restore_point(&dir.join("missing"), 2), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_replay_walks_segments_and_carries_the_model() {
        // Two segments of the same shape must equal one segment covering
        // the same range: the split is bookkeeping, not a model change.
        let s = spec(
            "name = \"j\"\niters = 3\nstages = 2\nlayers = 2\nmicro_batches = 2\nslices = 2\nseq_len = 16\n",
        );
        let shape = GangShape {
            stages: 2,
            slices: 2,
            warmup: None,
            synthesized: false,
        };
        let whole = verify_replay(
            &s,
            &[Segment {
                start_iter: 0,
                shape,
            }],
        )
        .unwrap();
        let split = verify_replay(
            &s,
            &[
                Segment {
                    start_iter: 0,
                    shape,
                },
                Segment {
                    start_iter: 2,
                    shape,
                },
            ],
        )
        .unwrap();
        assert_eq!(whole.to_bits(), split.to_bits());
        assert!(verify_replay(&s, &[]).is_err());
    }

    #[test]
    fn submit_derives_interval_and_rejects_duplicates() {
        let out = std::env::temp_dir().join(format!("mepipe-ctl-sub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut d = Daemon::new(
            Fleet::homogeneous(1, 2),
            PathBuf::from("mepipe-worker"),
            out.clone(),
        )
        .unwrap();
        let doc = "name = \"a\"\niters = 4\nlayers = 2\nstages = 2\nmicro_batches = 2\nslices = 2\nseq_len = 16\nmtbf_seconds = 1e12\n";
        let detail = d.submit(doc).unwrap();
        assert!(detail.contains("derived"), "{detail}");
        // A huge MTBF clamps the derived interval to the job length.
        assert_eq!(d.jobs()[0].interval, 4);
        assert!(d.jobs()[0].interval_note.is_some());
        assert!(d.submit(doc).unwrap_err().contains("already exists"));
        // Explicit intervals pass through untouched.
        let detail = d
            .submit("name = \"b\"\niters = 4\ncheckpoint_interval = 2\n")
            .unwrap();
        assert!(!detail.contains("derived"), "{detail}");
        assert_eq!(d.jobs()[1].interval, 2);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn metrics_cover_jobs_and_fleet() {
        let out = std::env::temp_dir().join(format!("mepipe-ctl-met-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut d = Daemon::new(
            Fleet::homogeneous(2, 2),
            PathBuf::from("mepipe-worker"),
            out.clone(),
        )
        .unwrap();
        d.submit("name = \"a\"\niters = 4\ncheckpoint_interval = 2\n")
            .unwrap();
        let reg = d.metrics();
        let l: [(&str, String); 1] = [("job", "a".to_string())];
        assert_eq!(reg.get("mepipe_ctl_job_state", &l), Some(0.0));
        assert_eq!(
            reg.get("mepipe_ctl_job_lost_beyond_interval_total", &l),
            Some(0.0)
        );
        assert_eq!(reg.get("mepipe_ctl_fleet_slots_free", &[]), Some(4.0));
        let n: [(&str, String); 1] = [("node", "node-1".to_string())];
        assert_eq!(reg.get("mepipe_ctl_node_drained", &n), Some(0.0));
        assert!(d.fleet.drain("node-1"));
        assert_eq!(d.metrics().get("mepipe_ctl_node_drained", &n), Some(1.0));
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn metric_names_pass_the_prometheus_lint() {
        let out = std::env::temp_dir().join(format!("mepipe-ctl-lint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut d = Daemon::new(
            Fleet::homogeneous(1, 2),
            PathBuf::from("mepipe-worker"),
            out.clone(),
        )
        .unwrap();
        d.submit("name = \"a\"\niters = 4\ncheckpoint_interval = 2\n")
            .unwrap();
        d.jobs[0].stage_progress = vec![3, 1];
        let violations = d.metrics().lint_names();
        assert!(violations.is_empty(), "{violations:?}");
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn status_json_is_valid_and_covers_jobs_and_fleet() {
        let out = std::env::temp_dir().join(format!("mepipe-ctl-sj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut d = Daemon::new(
            Fleet::homogeneous(1, 2),
            PathBuf::from("mepipe-worker"),
            out.clone(),
        )
        .unwrap();
        d.submit("name = \"a\"\niters = 4\ncheckpoint_interval = 2\n")
            .unwrap();
        d.jobs[0].error = Some("note with \"quotes\"\nand a newline".to_string());
        d.jobs[0].stage_progress = vec![3, 1];
        d.jobs[0].straggler_flags = vec![StragglerFlag {
            stage: 1,
            ratio: 3.0,
            rounds: 4,
        }];
        let v: serde_json::Value = serde_json::from_str(&d.status_json()).expect("valid JSON");
        let jobs = v["jobs"].as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0]["name"].as_str(), Some("a"));
        assert_eq!(jobs[0]["state"].as_str(), Some("pending"));
        assert_eq!(
            jobs[0]["error"].as_str(),
            Some("note with \"quotes\"\nand a newline")
        );
        assert_eq!(jobs[0]["stage_progress"][1].as_u64(), Some(1));
        assert_eq!(jobs[0]["stragglers"][0]["stage"].as_u64(), Some(1));
        assert_eq!(v["fleet"]["free"].as_u64(), Some(2));
        assert_eq!(v["fleet"]["nodes"][0]["drained"].as_bool(), Some(false));
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn failed_artifact_writes_are_counted_not_swallowed() {
        let out = std::env::temp_dir().join(format!("mepipe-ctl-aw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out);
        let mut d = Daemon::new(
            Fleet::homogeneous(1, 2),
            PathBuf::from("mepipe-worker"),
            out.clone(),
        )
        .unwrap();
        d.events = EventLog::silent("ctl");
        d.write_artifacts();
        assert_eq!(
            d.metrics()
                .get("mepipe_ctl_artifact_write_errors_total", &[]),
            Some(0.0)
        );
        assert!(out.join("metrics.prom").exists());
        assert!(out.join("status.json").exists());
        // Make the out dir unwritable by replacing it with a file.
        std::fs::remove_dir_all(&out).unwrap();
        std::fs::create_dir_all(&out).unwrap();
        for f in ["metrics.json", "metrics.prom", "status.json"] {
            std::fs::create_dir_all(out.join(f)).unwrap();
        }
        d.write_artifacts();
        assert_eq!(
            d.metrics()
                .get("mepipe_ctl_artifact_write_errors_total", &[]),
            Some(3.0)
        );
        assert!(d
            .events
            .events()
            .any(|e| e.message.contains("write artifact")));
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn gang_failure_messages_yield_stage_tags() {
        assert_eq!(parse_stage_tag("stage 2 exited with signal 9"), Some(2));
        assert_eq!(parse_stage_tag("stage 0 made no progress for 5s"), Some(0));
        assert_eq!(parse_stage_tag("gang launch: spawn failed"), None);
    }
}
