//! Job specifications: what a user submits to the control plane.
//!
//! A spec is a flat document in JSON or a small TOML subset (`key =
//! value` lines — exactly what a human writes for a training job).
//! Everything except `name` and `iters` has a default, and the
//! checkpoint interval may be omitted entirely: the daemon then derives
//! it from the job's MTBF hint and the *measured* checkpoint cost via
//! Young's formula ([`derive_checkpoint_interval`]), closing the loop
//! on the previously dormant `checkpoint::optimal_interval`.

use std::collections::BTreeMap;
use std::time::Instant;

use mepipe_model::config::TransformerConfig;
use mepipe_train::checkpoint;
use mepipe_train::params::ModelParams;

/// A parsed, validated training-job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name, unique within the daemon.
    pub name: String,
    /// Target iteration count.
    pub iters: usize,
    /// Admission priority — higher admits first within the queue.
    pub priority: i64,
    /// Requested pipeline stages (= fleet slots for the gang).
    pub stages: usize,
    /// Micro-batches per iteration.
    pub micro_batches: usize,
    /// Sequence slices per micro-batch.
    pub slices: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Decoder layers (must divide evenly over the stages).
    pub layers: usize,
    /// Model-init and batch-derivation seed.
    pub seed: u64,
    /// SGD learning rate.
    pub lr: f64,
    /// Checkpoint every this many iterations; `None` = derive via
    /// Young's formula from `mtbf_seconds` and measured costs.
    pub checkpoint_interval: Option<usize>,
    /// Mean time between failures the operator expects, seconds.
    pub mtbf_seconds: f64,
    /// Replay the whole job in-process at completion and require the
    /// final loss to match the gang's bit for bit.
    pub verify: bool,
    /// Chaos: kill this stage's process (with `kill_at_iter`).
    pub kill_stage: Option<usize>,
    /// Chaos: at the start of this iteration.
    pub kill_at_iter: Option<usize>,
}

/// One scalar value from either input syntax.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
}

/// Parses the TOML subset: `key = value` lines, `#` comments, blank
/// lines; values are quoted strings, booleans, or numbers.
fn parse_toml_subset(text: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut map = BTreeMap::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`: {raw}", ln + 1))?;
        let key = key.trim().to_string();
        let mut value = value.trim();
        // A trailing comment — only valid outside a quoted string.
        if !value.starts_with('"') {
            if let Some(hash) = value.find('#') {
                value = value[..hash].trim_end();
            }
        }
        let scalar = if let Some(q) = value.strip_prefix('"') {
            let inner = q
                .strip_suffix('"')
                .ok_or_else(|| format!("line {}: unterminated string: {raw}", ln + 1))?;
            Scalar::Str(inner.to_string())
        } else if value == "true" {
            Scalar::Bool(true)
        } else if value == "false" {
            Scalar::Bool(false)
        } else {
            Scalar::Num(
                value
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad value: {raw}", ln + 1))?,
            )
        };
        map.insert(key, scalar);
    }
    Ok(map)
}

/// Parses a flat JSON object into the same scalar map.
fn parse_json(text: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("job spec is not valid JSON: {e}"))?;
    let obj = v.as_object().ok_or("job spec JSON must be a flat object")?;
    let mut map = BTreeMap::new();
    for (k, val) in obj {
        let scalar = if let Some(s) = val.as_str() {
            Scalar::Str(s.to_string())
        } else if let Some(b) = val.as_bool() {
            Scalar::Bool(b)
        } else if let Some(n) = val.as_f64() {
            Scalar::Num(n)
        } else {
            return Err(format!("field {k:?} must be a string, number or bool"));
        };
        map.insert(k.clone(), scalar);
    }
    Ok(map)
}

impl JobSpec {
    /// Parses a job document. Leading `{` selects JSON, anything else
    /// the TOML subset.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or out-of-range field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let map = if text.trim_start().starts_with('{') {
            parse_json(text)?
        } else {
            parse_toml_subset(text)?
        };
        let known = [
            "name",
            "iters",
            "priority",
            "stages",
            "micro_batches",
            "slices",
            "seq_len",
            "layers",
            "seed",
            "lr",
            "checkpoint_interval",
            "mtbf_seconds",
            "verify",
            "kill_stage",
            "kill_at_iter",
        ];
        for key in map.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown job spec field {key:?}"));
            }
        }
        let str_field = |k: &str| match map.get(k) {
            Some(Scalar::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(format!("field {k:?} must be a string")),
            None => Ok(None),
        };
        let num_field = |k: &str| match map.get(k) {
            Some(Scalar::Num(n)) => Ok(Some(*n)),
            Some(_) => Err(format!("field {k:?} must be a number")),
            None => Ok(None),
        };
        let usize_field = |k: &str| -> Result<Option<usize>, String> {
            match num_field(k)? {
                Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(Some(n as usize)),
                Some(_) => Err(format!("field {k:?} must be a non-negative integer")),
                None => Ok(None),
            }
        };
        let bool_field = |k: &str| match map.get(k) {
            Some(Scalar::Bool(b)) => Ok(Some(*b)),
            Some(_) => Err(format!("field {k:?} must be a boolean")),
            None => Ok(None),
        };

        let stages = usize_field("stages")?.unwrap_or(2);
        let spec = JobSpec {
            name: str_field("name")?.ok_or("job spec needs a `name`")?,
            iters: usize_field("iters")?.ok_or("job spec needs `iters`")?,
            priority: num_field("priority")?.unwrap_or(0.0) as i64,
            stages,
            micro_batches: usize_field("micro_batches")?.unwrap_or(stages.max(2)),
            slices: usize_field("slices")?.unwrap_or(2),
            seq_len: usize_field("seq_len")?.unwrap_or(16),
            layers: usize_field("layers")?.unwrap_or(stages.max(2)),
            seed: usize_field("seed")?.unwrap_or(7) as u64,
            lr: num_field("lr")?.unwrap_or(0.1),
            checkpoint_interval: usize_field("checkpoint_interval")?,
            mtbf_seconds: num_field("mtbf_seconds")?.unwrap_or(600.0),
            verify: bool_field("verify")?.unwrap_or(false),
            kill_stage: usize_field("kill_stage")?,
            kill_at_iter: usize_field("kill_at_iter")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_alphanumeric() || c == '-') {
            return Err(format!(
                "job name {:?} must be non-empty alphanumeric-or-dash",
                self.name
            ));
        }
        if self.iters == 0 {
            return Err("`iters` must be positive".into());
        }
        if self.stages == 0 {
            return Err("`stages` must be positive".into());
        }
        if self.layers < 2 || !self.layers.is_multiple_of(self.stages) {
            return Err(format!(
                "`layers` ({}) must be >= 2 and divisible by `stages` ({})",
                self.layers, self.stages
            ));
        }
        if self.micro_batches < self.stages {
            return Err(format!(
                "`micro_batches` ({}) must be >= `stages` ({})",
                self.micro_batches, self.stages
            ));
        }
        if self.slices == 0 || !self.seq_len.is_multiple_of(self.slices) {
            return Err(format!(
                "`slices` ({}) must divide `seq_len` ({})",
                self.slices, self.seq_len
            ));
        }
        if self.checkpoint_interval == Some(0) {
            return Err("`checkpoint_interval` must be positive when given".into());
        }
        // NaN must fail too, hence the negated comparison shape.
        if self.mtbf_seconds <= 0.0 || self.mtbf_seconds.is_nan() {
            return Err("`mtbf_seconds` must be positive".into());
        }
        if self.kill_stage.is_some() != self.kill_at_iter.is_some() {
            return Err("`kill_stage` and `kill_at_iter` must be given together".into());
        }
        if let Some(s) = self.kill_stage {
            if s >= self.stages {
                return Err(format!("`kill_stage` ({s}) out of range"));
            }
        }
        Ok(())
    }

    /// The model config the gang and the verifier instantiate.
    pub fn config(&self) -> TransformerConfig {
        TransformerConfig {
            seq_len: self.seq_len,
            ..TransformerConfig::tiny(self.layers)
        }
    }
}

/// How a derived checkpoint interval came about, for the daemon's log.
#[derive(Debug, Clone)]
pub struct DerivedInterval {
    /// The chosen interval, iterations.
    pub iters: usize,
    /// Measured cost of one checkpoint save, seconds.
    pub checkpoint_cost_s: f64,
    /// Measured cost of one training iteration, seconds.
    pub iteration_s: f64,
    /// Young's optimal interval in seconds before discretisation.
    pub optimal_s: f64,
}

impl DerivedInterval {
    /// One log line explaining the choice.
    pub fn describe(&self, spec: &JobSpec) -> String {
        format!(
            "job {}: derived checkpoint_interval={} (Young: sqrt(2*{:.3e}s*{:.0}s MTBF)={:.2}s, ~{:.3e}s/iter)",
            spec.name, self.iters, self.checkpoint_cost_s, spec.mtbf_seconds, self.optimal_s,
            self.iteration_s
        )
    }
}

/// Derives the checkpoint interval for a spec that omitted it: measure
/// the cost of serialising the job's model, estimate an iteration's
/// duration with `measure_iteration`, and discretise Young's optimal
/// interval `sqrt(2 · cost · MTBF)` into iterations, clamped to
/// `[1, iters]`.
///
/// `measure_iteration` is injected so the daemon can measure a real
/// in-process iteration while tests supply a constant.
pub fn derive_checkpoint_interval(
    spec: &JobSpec,
    measure_iteration: impl FnOnce(&JobSpec) -> f64,
) -> DerivedInterval {
    let model = ModelParams::init(spec.config(), spec.seed);
    let t0 = Instant::now();
    let bytes = checkpoint::save(&model);
    // Include one in-memory serialisation plus the bytes hitting disk
    // on a tmpfs-ish medium; floor at 1µs so Young's formula stays
    // finite on a fast machine with a tiny model.
    let checkpoint_cost_s = (t0.elapsed().as_secs_f64() + bytes.len() as f64 * 1e-10).max(1e-6);
    let iteration_s = measure_iteration(spec).max(1e-6);
    let optimal_s = checkpoint::optimal_interval(spec.mtbf_seconds, checkpoint_cost_s);
    let iters = ((optimal_s / iteration_s).round() as usize).clamp(1, spec.iters.max(1));
    DerivedInterval {
        iters,
        checkpoint_cost_s,
        iteration_s,
        optimal_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_and_json_specs_parse_identically() {
        let toml = r#"
# a training job
name = "job-a"
iters = 8
stages = 2
micro_batches = 2
slices = 2
seq_len = 16
layers = 2
seed = 5
lr = 0.1
checkpoint_interval = 2  # trailing comment
verify = true
"#;
        let json = r#"{"name":"job-a","iters":8,"stages":2,"micro_batches":2,
            "slices":2,"seq_len":16,"layers":2,"seed":5,"lr":0.1,
            "checkpoint_interval":2,"verify":true}"#;
        let a = JobSpec::parse(toml).unwrap();
        let b = JobSpec::parse(json).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.name, "job-a");
        assert_eq!(a.checkpoint_interval, Some(2));
        assert!(a.verify);
        assert_eq!(a.priority, 0);
        assert_eq!(a.mtbf_seconds, 600.0);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let spec = JobSpec::parse("name = \"j\"\niters = 4\n").unwrap();
        assert_eq!(spec.stages, 2);
        assert_eq!(spec.micro_batches, 2);
        assert_eq!(spec.layers, 2);
        assert_eq!(spec.checkpoint_interval, None);
        assert_eq!(spec.kill_stage, None);
    }

    #[test]
    fn invalid_specs_are_rejected_with_context() {
        for (doc, needle) in [
            ("iters = 4", "name"),
            ("name = \"j\"", "iters"),
            ("name = \"j\"\niters = 0", "iters"),
            ("name = \"j!\"\niters = 4", "name"),
            (
                "name = \"j\"\niters = 4\nstages = 3\nlayers = 4",
                "divisible",
            ),
            (
                "name = \"j\"\niters = 4\nslices = 3\nseq_len = 16",
                "slices",
            ),
            ("name = \"j\"\niters = 4\nkill_stage = 0", "together"),
            ("name = \"j\"\niters = 4\nwarp = 9", "unknown"),
            (
                "name = \"j\"\niters = 4\nmicro_batches = 1\nstages = 2",
                "micro_batches",
            ),
        ] {
            let err = JobSpec::parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc:?} -> {err}");
        }
    }

    #[test]
    fn tiny_mtbf_derives_an_aggressive_interval() {
        let spec = JobSpec::parse("name = \"j\"\niters = 8\nmtbf_seconds = 0.000001\n").unwrap();
        // With a vanishing MTBF, Young's interval collapses below one
        // iteration and the clamp floors it at checkpoint-every-iter.
        let derived = derive_checkpoint_interval(&spec, |_| 0.5);
        assert_eq!(derived.iters, 1, "{derived:?}");

        // A huge MTBF caps at the job length.
        let spec = JobSpec::parse("name = \"j\"\niters = 8\nmtbf_seconds = 1e12\n").unwrap();
        let derived = derive_checkpoint_interval(&spec, |_| 1e-6);
        assert_eq!(derived.iters, 8, "{derived:?}");
        assert!(derived.describe(&spec).contains("checkpoint_interval=8"));
    }
}
