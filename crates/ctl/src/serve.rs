//! The daemon's serve loop and its line-protocol client.
//!
//! Serving is a single-threaded poll loop: accept any pending control
//! connections on a non-blocking Unix socket (one request line, one
//! response line each), sweep the spool directory for dropped-off job
//! files, run one scheduler tick, sleep. Single-threadedness is a
//! feature — every mutation of daemon state happens between ticks, so
//! there is no locking and the whole control plane is deterministic
//! enough to drive from tests.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mepipe_comm::control::{Request, Response};
use mepipe_trace::{route_obs, HttpServer, Level, ObsSnapshot};

use crate::daemon::{Daemon, JobState};

/// Knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Control socket path (recreated on startup).
    pub socket: PathBuf,
    /// Optional spool directory: `*.json` / `*.toml` files dropped here
    /// are submitted and renamed `.accepted` or `.rejected`.
    pub spool: Option<PathBuf>,
    /// Exit once `expect_jobs` jobs have reached a terminal state —
    /// the CI mode, where no human sends a shutdown.
    pub oneshot: bool,
    /// How many terminal jobs `oneshot` waits for.
    pub expect_jobs: usize,
    /// Scheduler tick period.
    pub tick: Duration,
    /// Optional TCP address (`host:port`) for the HTTP observability
    /// endpoint serving `/metrics`, `/status` and `/healthz`. Polled
    /// from the tick loop, so scrapes never race daemon state.
    pub http: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("ctl.sock"),
            spool: None,
            oneshot: false,
            expect_jobs: 0,
            tick: Duration::from_millis(50),
            http: None,
        }
    }
}

/// Runs the daemon until shutdown (or the oneshot condition) and
/// returns the process exit code: 0 when every job completed with zero
/// iterations lost beyond its checkpoint interval and no verification
/// failed, 1 otherwise.
///
/// # Errors
///
/// Returns an error if the control socket cannot be bound.
pub fn serve(mut daemon: Daemon, opts: &ServeOptions) -> Result<i32, String> {
    if let Some(parent) = opts.socket.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket)
        .map_err(|e| format!("bind control socket {}: {e}", opts.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("control socket nonblocking: {e}"))?;
    let http = match &opts.http {
        Some(addr) => {
            let srv = HttpServer::bind(addr)
                .map_err(|e| format!("bind http observability endpoint {addr}: {e}"))?;
            let bound = srv
                .local_addr()
                .map_err(|e| format!("http endpoint local addr: {e}"))?;
            daemon.events.event(
                Level::Info,
                None,
                None,
                format!("observability endpoint on http://{bound}"),
                &[],
            );
            Some(srv)
        }
        None => None,
    };
    daemon
        .events
        .info(format!("serving on {}", opts.socket.display()));

    loop {
        loop {
            match listener.accept() {
                Ok((stream, _)) => serve_connection(&mut daemon, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(format!("accept on control socket: {e}")),
            }
        }
        if let Some(srv) = &http {
            // The snapshot is rendered inside the closure, so idle polls
            // (no scraper connected) cost nothing.
            srv.poll(|path| {
                let snapshot = ObsSnapshot {
                    metrics_text: daemon.metrics().to_prometheus_text(),
                    status_json: daemon.status_json(),
                    healthy: !daemon.shutting_down,
                };
                route_obs(&snapshot, path)
            });
        }
        if let Some(spool) = &opts.spool {
            sweep_spool(&mut daemon, spool);
        }
        daemon.tick();
        if daemon.shutting_down && daemon.idle() {
            break;
        }
        if opts.oneshot
            && daemon.jobs().len() >= opts.expect_jobs
            && daemon.jobs().iter().filter(|j| j.state.terminal()).count() >= opts.expect_jobs
            && daemon.all_done()
        {
            break;
        }
        std::thread::sleep(opts.tick);
    }
    daemon.write_artifacts();
    let _ = std::fs::remove_file(&opts.socket);

    let mut code = 0;
    for job in daemon.jobs() {
        let ok =
            job.state == JobState::Completed && job.lost_beyond == 0 && job.verified != Some(false);
        if !ok {
            code = 1;
        }
    }
    daemon.events.info("exiting");
    eprintln!("{}", daemon.status_text());
    Ok(code)
}

/// One request line in, one response line out. Malformed input gets an
/// error response rather than killing the serve loop.
fn serve_connection(daemon: &mut Daemon, stream: UnixStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let resp = match reader.read_line(&mut line) {
        Ok(0) => return,
        Ok(_) => match Request::parse(&line) {
            Ok(req) => daemon.handle(&req),
            Err(e) => Response::Err(e),
        },
        Err(e) => Response::Err(format!("read control request: {e}")),
    };
    let mut stream = reader.into_inner();
    let _ = writeln!(stream, "{}", resp.encode());
}

/// Submits every job file sitting in the spool, renaming each to record
/// the outcome so a sweep never re-submits.
fn sweep_spool(daemon: &mut Daemon, spool: &Path) {
    let Ok(entries) = std::fs::read_dir(spool) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let ext = path.extension()?.to_str()?;
            (ext == "json" || ext == "toml").then_some(path)
        })
        .collect();
    paths.sort();
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                daemon
                    .events
                    .error(format!("spool read {}: {e}", path.display()));
                continue;
            }
        };
        let (suffix, note) = match daemon.submit(&text) {
            Ok(detail) => {
                daemon
                    .events
                    .info(format!("spool {}: {detail}", path.display()));
                ("accepted", None)
            }
            Err(reason) => {
                daemon
                    .events
                    .warn(format!("spool {}: rejected: {reason}", path.display()));
                ("rejected", Some(reason))
            }
        };
        let mut renamed = path.clone().into_os_string();
        renamed.push(format!(".{suffix}"));
        if let Err(e) = std::fs::rename(&path, &renamed) {
            daemon
                .events
                .error(format!("spool rename {}: {e}", path.display()));
        } else if let Some(reason) = note {
            let _ = std::fs::write(PathBuf::from(renamed).with_extension("reason"), reason);
        }
    }
}

/// Sends one request to a serving daemon and returns its response.
/// Retries the connect until `timeout` so clients can race daemon
/// startup.
///
/// # Errors
///
/// Returns an error when the daemon stays unreachable past `timeout`
/// or replies with something unparseable.
pub fn request(socket: &Path, req: &Request, timeout: Duration) -> Result<Response, String> {
    let deadline = Instant::now() + timeout;
    let stream = loop {
        match UnixStream::connect(socket) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!(
                        "connect to {} failed within {timeout:?}: {e}",
                        socket.display()
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone control stream: {e}"))?;
    writeln!(writer, "{}", req.encode()).map_err(|e| format!("send control request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("read control response: {e}"))?;
    Response::parse(&line)
}
