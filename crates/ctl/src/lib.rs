//! `mepipe-ctl`: an elastic multi-job control plane over the MEPipe
//! runtime.
//!
//! The paper's cost-effectiveness argument (Section 9) assumes a
//! commodity-GPU fleet can be *operated*: jobs queued and
//! gang-scheduled onto whatever slots exist, hardware failures absorbed
//! by checkpoint-restart with bounded loss, and capacity changes —
//! a node drained for maintenance, a node added — answered by
//! re-running the strategy search and re-sharding the pipeline live.
//! This crate is that operator. It composes pieces the rest of the
//! workspace already proves correct: `mepipe-worker job` stage
//! processes (bit-deterministic from flags), per-stage checkpoints with
//! `merge_stage_parts` for shape changes, Young's formula for the
//! checkpoint interval, the re-shard strategy search, and the metrics
//! and Chrome-trace plumbing in `mepipe-trace`.
//!
//! Modules: [`spec`] (job documents and interval derivation), [`gang`]
//! (stage-process supervision: spawn, heartbeat, reap-as-a-unit),
//! [`daemon`] (the lifecycle state machine: admission with priority and
//! backfill, recovery, re-sharding, metrics, replay verification),
//! [`serve`] (the UDS control socket, spool directory, and client).
#![warn(missing_docs)]

pub mod daemon;
pub mod gang;
pub mod serve;
pub mod spec;

pub use daemon::{best_shape, restore_point, verify_replay, Daemon, Job, JobState, Segment};
pub use gang::{Gang, GangConfig, GangPoll, GangShape};
pub use serve::{request, serve, ServeOptions};
pub use spec::{derive_checkpoint_interval, DerivedInterval, JobSpec};
