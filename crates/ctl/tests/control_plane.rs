//! End-to-end control-plane tests against real `mepipe-worker job`
//! gangs: completion with bit-identical replay verification, chaos-kill
//! recovery bounded by the checkpoint interval, drain-triggered live
//! re-sharding, and the UDS control protocol.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mepipe_comm::control::{Request, Response};
use mepipe_ctl::{Daemon, JobState, ServeOptions};
use mepipe_hw::Fleet;

/// Locates the `mepipe-worker` binary for the current profile,
/// rebuilding it unconditionally: `cargo test -p mepipe-ctl` does not
/// rebuild other packages' binaries, so an existing worker can be
/// stale. The build is a no-op when it is already fresh.
fn worker_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test exe");
    dir.pop(); // deps/
    dir.pop(); // debug/ or release/
    let candidate = dir.join("mepipe-worker");
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args(["build", "-p", "mepipe-train", "--bin", "mepipe-worker"]);
    if dir.file_name().is_some_and(|n| n == "release") {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("cargo build mepipe-worker");
    assert!(status.success(), "building mepipe-worker failed");
    assert!(candidate.exists(), "no worker at {}", candidate.display());
    candidate
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mepipe-ctl-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon(fleet: Fleet, out: PathBuf) -> Daemon {
    Daemon::new(fleet, worker_bin(), out)
        .unwrap()
        .with_hang_timeout(Duration::from_secs(30))
}

/// Ticks until every job is terminal, failing loudly on timeout.
fn drive(d: &mut Daemon, budget: Duration) {
    let deadline = Instant::now() + budget;
    while !d.all_done() {
        assert!(
            Instant::now() < deadline,
            "control plane did not settle within {budget:?}:\n{}",
            d.status_text()
        );
        d.tick();
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn two_jobs_gang_schedule_complete_and_verify() {
    let out = scratch("complete");
    let mut d = daemon(Fleet::homogeneous(1, 4), out.clone());
    // Two 2-stage jobs fill the 4-slot fleet side by side.
    for (name, seed) in [("alpha", 7u64), ("beta", 11u64)] {
        d.submit(&format!(
            "name = \"{name}\"\niters = 4\nstages = 2\nlayers = 4\nmicro_batches = 2\n\
             slices = 2\nseq_len = 16\nseed = {seed}\ncheckpoint_interval = 2\nverify = true\n"
        ))
        .unwrap();
    }
    d.tick();
    assert!(
        d.jobs().iter().all(|j| j.state == JobState::Running),
        "both jobs admitted at once:\n{}",
        d.status_text()
    );
    assert_eq!(d.fleet.free_slots(), 0);
    drive(&mut d, Duration::from_secs(120));
    for job in d.jobs() {
        assert_eq!(job.state, JobState::Completed, "{}", d.status_text());
        assert_eq!(job.restarts, 0);
        assert_eq!(job.lost_iters, 0);
        assert_eq!(job.lost_beyond, 0);
        assert_eq!(
            job.verified,
            Some(true),
            "replay must be bit-identical: {}",
            d.status_text()
        );
        let trace = out.join(format!("job-{}.trace.json", job.spec.name));
        let json = std::fs::read_to_string(&trace).expect("merged Chrome trace written");
        assert!(json.contains("\"ph\""), "trace has events");
    }
    assert_eq!(d.fleet.free_slots(), 4, "slots returned");
    // Different seeds, different trajectories.
    assert_ne!(
        d.jobs()[0].final_loss.unwrap().to_bits(),
        d.jobs()[1].final_loss.unwrap().to_bits()
    );
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn chaos_kill_recovers_within_the_interval_and_stays_bit_identical() {
    let out = scratch("chaos");
    let mut d = daemon(Fleet::homogeneous(1, 4), out.clone());
    // Identical trajectories: one clean, one killed at iteration 3.
    let base = "iters = 6\nstages = 2\nlayers = 4\nmicro_batches = 2\nslices = 2\n\
                seq_len = 16\nseed = 7\ncheckpoint_interval = 2\nverify = true\n";
    d.submit(&format!("name = \"clean\"\n{base}")).unwrap();
    d.submit(&format!(
        "name = \"chaotic\"\n{base}kill_stage = 1\nkill_at_iter = 3\n"
    ))
    .unwrap();
    drive(&mut d, Duration::from_secs(180));

    let clean = &d.jobs()[0];
    let chaotic = &d.jobs()[1];
    assert_eq!(clean.state, JobState::Completed, "{}", d.status_text());
    assert_eq!(chaotic.state, JobState::Completed, "{}", d.status_text());
    assert_eq!(clean.restarts, 0);
    assert_eq!(chaotic.restarts, 1, "exactly one chaos kill");
    // Killed at iteration 3 with checkpoints at 2 and 4: restart from 2
    // re-runs at most one interval of work, never more.
    assert!(
        chaotic.lost_iters >= 1 && chaotic.lost_iters <= 2,
        "{}",
        chaotic.lost_iters
    );
    assert_eq!(chaotic.lost_beyond, 0, "recovery bounded by the interval");
    // Checkpoint-restart rejoins the exact trajectory: same final bits.
    assert_eq!(
        clean.final_loss.unwrap().to_bits(),
        chaotic.final_loss.unwrap().to_bits(),
        "recovered run diverged from the clean run"
    );
    assert_eq!(chaotic.verified, Some(true));
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn drain_reshards_live_and_the_replay_spans_the_shape_change() {
    let out = scratch("drain");
    let mut d = daemon(Fleet::homogeneous(2, 2), out.clone());
    d.submit(
        "name = \"elastic\"\niters = 10\nstages = 2\nlayers = 4\nmicro_batches = 4\n\
         slices = 2\nseq_len = 16\nseed = 7\ncheckpoint_interval = 2\nverify = true\n",
    )
    .unwrap();
    // Run until the job has a published checkpoint behind it. A stage
    // writes iter-2.bin before logging `iter 2`, so completed >= 3
    // (every stage past iteration 2) guarantees the iter-2 checkpoint
    // exists for all stages.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        d.tick();
        let job = &d.jobs()[0];
        if job.state == JobState::Running && job.completed >= 3 {
            break;
        }
        assert!(
            !job.state.terminal(),
            "job finished before the drain: {}",
            d.status_text()
        );
        assert!(
            Instant::now() < deadline,
            "no progress: {}",
            d.status_text()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The 2-stage gang packed onto node-0; drain it mid-run.
    let resp = d.handle(&Request::Drain {
        node: "node-0".to_string(),
    });
    assert!(
        matches!(&resp, Response::Ok(s) if s.contains("1 running job")),
        "{resp:?}"
    );
    assert_eq!(d.jobs()[0].state, JobState::Resharding);
    drive(&mut d, Duration::from_secs(180));

    let job = &d.jobs()[0];
    assert_eq!(job.state, JobState::Completed, "{}", d.status_text());
    assert_eq!(job.reshards, 1);
    assert_eq!(job.lost_beyond, 0);
    assert!(job.segments.len() >= 2, "shape history records the switch");
    // The replacement gang fits on undrained capacity only.
    assert!(job.segments.last().unwrap().shape.stages <= 2);
    assert_eq!(
        job.verified,
        Some(true),
        "replay across the re-shard boundary must stay bit-identical: {}",
        d.status_text()
    );
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn control_socket_drives_a_serving_daemon() {
    let out = scratch("serve");
    let socket = out.join("ctl.sock");
    let spool = out.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    // One job arrives via the spool...
    std::fs::write(
        spool.join("spooled.toml"),
        "name = \"spooled\"\niters = 2\nstages = 2\nlayers = 2\nmicro_batches = 2\n\
         slices = 2\nseq_len = 16\ncheckpoint_interval = 1\n",
    )
    .unwrap();
    let d = daemon(Fleet::homogeneous(1, 2), out.join("ctl"));
    let opts = ServeOptions {
        socket: socket.clone(),
        spool: Some(spool.clone()),
        tick: Duration::from_millis(20),
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || mepipe_ctl::serve(d, &opts).unwrap());

    let ask = |req: &Request| mepipe_ctl::request(&socket, req, Duration::from_secs(30)).unwrap();
    // ...and one over the socket.
    let resp = ask(&Request::Submit {
        spec: "{\"name\":\"socketed\",\"iters\":2,\"stages\":2,\"layers\":2,\
               \"micro_batches\":2,\"slices\":2,\"seq_len\":16,\"checkpoint_interval\":1}"
            .to_string(),
    });
    assert!(
        matches!(&resp, Response::Ok(s) if s.contains("socketed")),
        "{resp:?}"
    );
    let resp = ask(&Request::Submit {
        spec: "iters = 1".to_string(),
    });
    assert!(
        matches!(&resp, Response::Err(r) if r.contains("name")),
        "{resp:?}"
    );
    let resp = ask(&Request::AddNode { slots: 2 });
    assert!(
        matches!(&resp, Response::Ok(s) if s.contains("node-1")),
        "{resp:?}"
    );

    // Wait for both jobs to finish, then shut down and check status.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let Response::Ok(status) = ask(&Request::Status) else {
            panic!("status failed")
        };
        if status.matches("completed").count() >= 2 {
            assert!(status.contains("spooled"), "{status}");
            assert!(status.contains("socketed"), "{status}");
            break;
        }
        assert!(Instant::now() < deadline, "jobs did not finish:\n{status}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let resp = ask(&Request::Shutdown);
    assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    assert_eq!(server.join().unwrap(), 0, "clean exit code");
    // The spool file was renamed so a rescan cannot double-submit.
    assert!(!spool.join("spooled.toml").exists());
    assert!(spool.join("spooled.toml.accepted").exists());
    // Metrics artifacts landed.
    let prom = std::fs::read_to_string(out.join("ctl").join("metrics.prom")).unwrap();
    assert!(prom.contains("mepipe_ctl_job_state"), "{prom}");
    assert!(prom.contains("mepipe_ctl_job_lost_beyond_interval_total"));
    let _ = std::fs::remove_dir_all(&out);
}
