//! Vectorizable slice primitives shared by the fused kernels.
//!
//! Written so the autovectorizer emits SIMD: fixed-width lane
//! accumulators for reductions, branch-free fused loops for updates.
//! The lane-parallel reduction order is part of each kernel's numerical
//! contract — it never changes with the worker count.

/// Lane width of the blocked dot-product reduction.
const LANES: usize = 8;

/// `Σ a[i]·b[i]` with eight parallel partial sums (SIMD-friendly).
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for (acc, (&xv, &yv)) in lanes.iter_mut().zip(x.iter().zip(y)) {
            *acc += xv * yv;
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (&xv, &yv) in ca.remainder().iter().zip(cb.remainder()) {
        s += xv * yv;
    }
    s
}

/// Polynomial `e^x` with ≈2·10⁻⁷ relative error — a branch-free Cephes
/// `expf`: range-reduce to `r ∈ [-ln2/2, ln2/2]`, a degree-5 minimax
/// polynomial, and an exponent rebuild via the f32 bit layout (no
/// `unsafe`; `from_bits` is a plain transmute intrinsic).
///
/// `f32::exp` goes through libm at ~10 ns a call and cannot inline;
/// softmax, SiLU and cross-entropy together evaluate the exponential
/// millions of times per training iteration, which made libm `exp` the
/// single largest consumer of an iteration. This version inlines into
/// the row kernels and autovectorizes with them. The result is
/// deterministic (pure arithmetic, no table lookups), monotone over the
/// clamped range, and exact at `x = 0`.
#[inline]
pub(crate) fn fast_exp(x: f32) -> f32 {
    // Past these bounds e^x over/underflows f32 anyway; clamping also
    // keeps the rebuilt exponent within [-126, 127].
    let x = x.clamp(-87.0, 88.0);
    // `round_ties_even`, not `round`: ties-away-from-zero has no single
    // x86/NEON instruction, so `round` becomes a libm call that also
    // blocks vectorization of the surrounding loop. Ties-to-even lowers
    // to one `vroundps`, and either tie rule keeps |r| ≤ ln2/2.
    let n = (std::f32::consts::LOG2_E * x).round_ties_even();
    // Two-constant Cody–Waite reduction keeps r accurate although n·ln2
    // itself is not representable.
    let r = (x - n * 0.693_359_4) - n * -2.121_944_4e-4;
    let mut p = 1.987_569_1e-4_f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 0.5;
    let z = (r * r) * p + r + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    z * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_remainders() {
        for n in [0usize, 1, 7, 8, 9, 17, 64] {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b = vec![2.0f32; n];
            let expect: f32 = (0..n).map(|i| 2.0 * i as f32).sum();
            assert!((dot(&a, &b) - expect).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn fast_exp_matches_libm_to_relative_3e7() {
        // Sweep the range the kernels actually use (softmax arguments are
        // ≤ 0 after max subtraction; SiLU sees both signs) plus the tails.
        let mut worst = 0.0f64;
        let mut x = -30.0f32;
        while x <= 30.0 {
            let want = f64::from(x).exp();
            let got = f64::from(fast_exp(x));
            worst = worst.max(((got - want) / want).abs());
            x += 0.001;
        }
        assert!(worst < 3e-7, "worst relative error {worst:.3e}");
        assert_eq!(fast_exp(0.0), 1.0);
        // Deep negative tail: must underflow cleanly, never produce junk.
        assert!(fast_exp(-100.0) >= 0.0 && fast_exp(-100.0) < 1e-37);
        assert!(fast_exp(-f32::INFINITY) >= 0.0);
    }
}
