//! Vectorizable slice primitives shared by the fused kernels.
//!
//! Written so the autovectorizer emits SIMD: fixed-width lane
//! accumulators for reductions, branch-free fused loops for updates.
//! The lane-parallel reduction order is part of each kernel's numerical
//! contract — it never changes with the worker count.

/// Lane width of the blocked dot-product reduction.
const LANES: usize = 8;

/// `Σ a[i]·b[i]` with eight parallel partial sums (SIMD-friendly).
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for (acc, (&xv, &yv)) in lanes.iter_mut().zip(x.iter().zip(y)) {
            *acc += xv * yv;
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (&xv, &yv) in ca.remainder().iter().zip(cb.remainder()) {
        s += xv * yv;
    }
    s
}

/// `acc[i] += s · x[i]` (branch-free, contiguous — vectorizes).
#[inline]
pub(crate) fn axpy(acc: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += s * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_remainders() {
        for n in [0usize, 1, 7, 8, 9, 17, 64] {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b = vec![2.0f32; n];
            let expect: f32 = (0..n).map(|i| 2.0 * i as f32).sum();
            assert!((dot(&a, &b) - expect).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = vec![1.0f32; 5];
        axpy(&mut acc, 0.5, &[2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(acc, vec![2.0, 3.0, 4.0, 5.0, 6.0]);
    }
}
