//! Naive scalar reference kernels.
//!
//! These are the original triple-loop implementations the blocked kernel
//! engine replaced. They are kept **only** as ground truth: the parity
//! proptests assert the packed kernels match them within bit-level
//! tolerance across random shapes and worker counts, and the `kernels`
//! bench measures speedup against them. Production code must not call
//! them.
#![doc(hidden)]

use crate::tensor::Tensor;

/// Reference `C = A · B` (scalar i-k-j triple loop).
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a.at(i, p);
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = out.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    out
}

/// Reference input gradient: `dA = dC · Bᵀ`.
///
/// # Panics
///
/// Panics if column counts disagree.
pub fn matmul_dgrad(dc: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(dc.cols(), b.cols(), "dgrad dimension mismatch");
    let (m, n, k) = (dc.rows(), dc.cols(), b.rows());
    let mut da = Tensor::zeros(m, k);
    for i in 0..m {
        for p in 0..k {
            let brow = b.row(p);
            let dcrow = dc.row(i);
            let mut acc = 0.0;
            for j in 0..n {
                acc += dcrow[j] * brow[j];
            }
            da.set(i, p, acc);
        }
    }
    da
}

/// Reference weight gradient: `dB = Aᵀ · dC`.
///
/// # Panics
///
/// Panics if row counts disagree.
pub fn matmul_wgrad(a: &Tensor, dc: &Tensor) -> Tensor {
    assert_eq!(a.rows(), dc.rows(), "wgrad dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), dc.cols());
    let mut db = Tensor::zeros(k, n);
    for i in 0..m {
        let arow = a.row(i);
        let dcrow = dc.row(i);
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let dbrow = db.row_mut(p);
            for j in 0..n {
                dbrow[j] += aip * dcrow[j];
            }
        }
    }
    db
}

/// Reference causal attention forward (materialises the probability
/// matrix and multiplies via [`matmul`]).
///
/// # Panics
///
/// Panics unless `k`/`v` cover exactly `offset + q.rows()` positions.
pub fn causal_attention(q: &Tensor, k: &Tensor, v: &Tensor, offset: usize) -> (Tensor, Tensor) {
    let t = q.rows();
    let d = q.cols();
    let c = offset + t;
    assert_eq!(k.rows(), c, "key prefix must cover offset + slice");
    assert_eq!(v.rows(), c, "value prefix must cover offset + slice");
    let scale = 1.0 / (d as f32).sqrt();
    let mut probs = Tensor::zeros(t, c);
    for i in 0..t {
        let limit = offset + i + 1;
        let qi = q.row(i);
        let mut max = f32::NEG_INFINITY;
        let mut scores = vec![0.0f32; limit];
        for (j, s) in scores.iter_mut().enumerate() {
            let kj = k.row(j);
            let dot: f32 = qi.iter().zip(kj).map(|(a, b)| a * b).sum();
            *s = dot * scale;
            max = max.max(*s);
        }
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - max).exp();
            denom += *s;
        }
        let prow = probs.row_mut(i);
        for (j, s) in scores.iter().enumerate() {
            prow[j] = s / denom;
        }
    }
    let out = matmul(&probs, v);
    (out, probs)
}

/// Reference causal attention backward over materialised transposes:
/// `dP = dOut · Vᵀ` via an explicit `v.transpose()` (the temporary the
/// fused kernel eliminates). Returns `(dq, dk, dv)`.
pub fn causal_attention_backward(
    dout: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    probs: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let t = q.rows();
    let d = q.cols();
    let c = k.rows();
    let scale = 1.0 / (d as f32).sqrt();
    let dv = matmul_wgrad(probs, dout);
    let dp = matmul(dout, &v.transpose());
    let mut ds = Tensor::zeros(t, c);
    for i in 0..t {
        let prow = probs.row(i);
        let dprow = dp.row(i);
        let dot: f32 = prow.iter().zip(dprow).map(|(p, g)| p * g).sum();
        let dsrow = ds.row_mut(i);
        for j in 0..c {
            dsrow[j] = prow[j] * (dprow[j] - dot);
        }
    }
    let mut dq = matmul(&ds, k);
    dq.scale(scale);
    let mut dk = matmul_wgrad(&ds, q);
    dk.scale(scale);
    (dq, dk, dv)
}
