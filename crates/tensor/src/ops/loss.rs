//! Token-level cross-entropy over logits, with gradient.

use crate::tensor::Tensor;

/// Output of the loss computation.
#[derive(Debug, Clone)]
pub struct CrossEntropyOut {
    /// Sum of per-token negative log-likelihoods (callers divide by the
    /// *global* token count so that slice losses add up exactly).
    pub loss_sum: f64,
    /// Gradient of `loss_sum` w.r.t. the logits.
    pub dlogits: Tensor,
}

/// Cross-entropy of `logits: [t, vocab]` against `targets` (one id per
/// row), computed with a stable log-softmax.
///
/// # Panics
///
/// Panics if row counts disagree or a target is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> CrossEntropyOut {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    let v = logits.cols();
    let mut dlogits = Tensor::zeros(logits.rows(), v);
    let mut loss_sum = 0.0f64;
    for (i, &tgt) in targets.iter().enumerate() {
        assert!(tgt < v, "target {tgt} out of vocab");
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &x in row {
            denom += ((x - max) as f64).exp();
        }
        let log_denom = denom.ln();
        loss_sum += log_denom - (row[tgt] - max) as f64;
        let drow = dlogits.row_mut(i);
        for (c, &x) in row.iter().enumerate() {
            let p = (((x - max) as f64).exp() / denom) as f32;
            drow[c] = p - if c == tgt { 1.0 } else { 0.0 };
        }
    }
    CrossEntropyOut { loss_sum, dlogits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Tensor::zeros(2, 8);
        let out = cross_entropy(&logits, &[3, 5]);
        assert!((out.loss_sum - 2.0 * (8.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut r = rng(51);
        let logits = uniform(2, 5, 1.0, &mut r);
        let targets = [1usize, 4];
        let out = cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for rr in 0..2 {
            for c in 0..5 {
                let mut lp = logits.clone();
                lp.set(rr, c, logits.at(rr, c) + eps);
                let mut lm = logits.clone();
                lm.set(rr, c, logits.at(rr, c) - eps);
                let num = ((cross_entropy(&lp, &targets).loss_sum
                    - cross_entropy(&lm, &targets).loss_sum)
                    / (2.0 * eps as f64)) as f32;
                assert!(
                    (num - out.dlogits.at(rr, c)).abs() < 1e-2,
                    "({rr},{c}): {num} vs {}",
                    out.dlogits.at(rr, c)
                );
            }
        }
    }

    #[test]
    fn slice_losses_sum_to_full_loss() {
        let mut r = rng(52);
        let logits = uniform(6, 7, 1.0, &mut r);
        let targets = [0usize, 1, 2, 3, 4, 5];
        let full = cross_entropy(&logits, &targets);
        let a = cross_entropy(&logits.slice_rows(0, 3), &targets[..3]);
        let b = cross_entropy(&logits.slice_rows(3, 3), &targets[3..]);
        assert!((full.loss_sum - (a.loss_sum + b.loss_sum)).abs() < 1e-9);
    }
}
