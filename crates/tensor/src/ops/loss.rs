//! Token-level cross-entropy over logits, with gradient, as a
//! row-parallel fused kernel on the worker pool.

use crate::{
    ops::vecops::fast_exp,
    pool::{row_blocks, KernelPool},
    tensor::Tensor,
};

/// Rows per parallel work item — fixed so the chunk-ordered f64 loss
/// reduction is bit-identical across worker counts.
const ROW_GRAIN: usize = 4;

/// Output of the loss computation.
#[derive(Debug, Clone)]
pub struct CrossEntropyOut {
    /// Sum of per-token negative log-likelihoods (callers divide by the
    /// *global* token count so that slice losses add up exactly).
    pub loss_sum: f64,
    /// Gradient of `loss_sum` w.r.t. the logits.
    pub dlogits: Tensor,
}

/// Cross-entropy of `logits: [t, vocab]` against `targets` (one id per
/// row), computed with a stable log-softmax (single-threaded).
///
/// # Panics
///
/// Panics if row counts disagree or a target is out of range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> CrossEntropyOut {
    cross_entropy_in(KernelPool::shared_serial(), logits, targets)
}

/// Cross-entropy with the loss and gradient rows fanned out over a
/// worker pool. Per-chunk f64 loss partials are summed in chunk order,
/// so the result is bit-identical across worker counts.
///
/// # Panics
///
/// Panics if row counts disagree or a target is out of range.
pub fn cross_entropy_in(pool: &KernelPool, logits: &Tensor, targets: &[usize]) -> CrossEntropyOut {
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    let v = logits.cols();
    let mut dlogits = Tensor::zeros(logits.rows(), v);
    let mut items = row_blocks(dlogits.data_mut(), v, ROW_GRAIN);
    let partials: Vec<f64> = pool.for_each(&mut items, |_, (r0, chunk)| {
        let rows = chunk.len() / v;
        let mut loss_part = 0.0f64;
        for i in 0..rows {
            let r = *r0 + i;
            let tgt = targets[r];
            assert!(tgt < v, "target {tgt} out of vocab");
            let row = logits.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            // Stage the f32 exponentials in the gradient row (one exp per
            // logit instead of two), accumulating the denominator in f64
            // so the log-sum-exp keeps its precision.
            let drow = &mut chunk[i * v..(i + 1) * v];
            let mut denom = 0.0f64;
            for (&x, d) in row.iter().zip(drow.iter_mut()) {
                let e = fast_exp(x - max);
                denom += f64::from(e);
                *d = e;
            }
            loss_part += denom.ln() - f64::from(row[tgt] - max);
            let inv = 1.0 / denom;
            for (c, d) in drow.iter_mut().enumerate() {
                let p = (f64::from(*d) * inv) as f32;
                *d = p - if c == tgt { 1.0 } else { 0.0 };
            }
        }
        loss_part
    });
    let loss_sum = partials.into_iter().sum();
    CrossEntropyOut { loss_sum, dlogits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Tensor::zeros(2, 8);
        let out = cross_entropy(&logits, &[3, 5]);
        assert!((out.loss_sum - 2.0 * (8.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut r = rng(51);
        let logits = uniform(2, 5, 1.0, &mut r);
        let targets = [1usize, 4];
        let out = cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for rr in 0..2 {
            for c in 0..5 {
                let mut lp = logits.clone();
                lp.set(rr, c, logits.at(rr, c) + eps);
                let mut lm = logits.clone();
                lm.set(rr, c, logits.at(rr, c) - eps);
                let num = ((cross_entropy(&lp, &targets).loss_sum
                    - cross_entropy(&lm, &targets).loss_sum)
                    / (2.0 * eps as f64)) as f32;
                assert!(
                    (num - out.dlogits.at(rr, c)).abs() < 1e-2,
                    "({rr},{c}): {num} vs {}",
                    out.dlogits.at(rr, c)
                );
            }
        }
    }

    #[test]
    fn slice_losses_sum_to_full_loss() {
        let mut r = rng(52);
        let logits = uniform(6, 7, 1.0, &mut r);
        let targets = [0usize, 1, 2, 3, 4, 5];
        let full = cross_entropy(&logits, &targets);
        let a = cross_entropy(&logits.slice_rows(0, 3), &targets[..3]);
        let b = cross_entropy(&logits.slice_rows(3, 3), &targets[3..]);
        assert!((full.loss_sum - (a.loss_sum + b.loss_sum)).abs() < 1e-9);
    }

    #[test]
    fn multi_worker_is_bit_identical_to_serial() {
        let mut r = rng(53);
        // More rows than one grain so the pool actually splits.
        let rows = 3 * ROW_GRAIN + 2;
        let logits = uniform(rows, 13, 1.0, &mut r);
        let targets: Vec<usize> = (0..rows).map(|i| i % 13).collect();
        let serial = cross_entropy(&logits, &targets);
        for workers in [2, 4] {
            let pool = KernelPool::new(workers);
            let out = cross_entropy_in(&pool, &logits, &targets);
            assert_eq!(serial.loss_sum.to_bits(), out.loss_sum.to_bits());
            assert_eq!(serial.dlogits.data(), out.dlogits.data());
        }
    }
}
