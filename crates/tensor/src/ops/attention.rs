//! Single-head causal attention over a query *slice* and its key/value
//! prefix — the dataflow primitive of sequence pipeline parallelism.
//!
//! Under TeraPipe/MEPipe slicing, the forward of slice `i` consumes the
//! keys and values of every preceding slice (Section 4.1, Figure 3); the
//! backward of slice `i` produces gradient *contributions* to those
//! prefix keys/values, which the caller accumulates in reverse slice
//! order. This module implements exactly that contract:
//!
//! * forward: `q: [t, d]` for the slice, `k, v: [c, d]` for the whole
//!   prefix `c = offset + t`; causal masking inside the slice;
//! * backward: returns `dq: [t, d]` plus `dk, dv: [c, d]` over the whole
//!   prefix.
//!
//! Both passes route every contraction — scores `Q·Kᵀ`, the value
//! contraction `P·V`, and the gradient products `dOut·Vᵀ`, `dS·K`,
//! `dSᵀ·Q`, `Pᵀ·dOut` — through the packed GEMM engine, with transposes
//! absorbed by packing (no `Kᵀ`/`Vᵀ` temporary is ever materialised).
//! The engine computes full-width score rows, including the non-causal
//! upper triangle; the softmax / Jacobian row sweeps then mask that
//! tail to zero. For the short, fat shapes attention produces
//! (`t ≤ 16`, `c ≤ seq_len`), the blocked GEMM runs several times
//! faster than per-row dot/axpy loops even counting the ~50 % masked
//! waste, which is why the mask-after-GEMM layout wins.

use crate::{
    ops::{
        matmul::{matmul_dgrad_uncached_in, matmul_uncached_in, matmul_wgrad_in},
        vecops::{dot, fast_exp},
    },
    pool::{row_blocks, KernelPool},
    tensor::Tensor,
};

/// Query rows per parallel work item. Fixed (never derived from the
/// worker count) so results are bit-identical across pools.
const ROW_GRAIN: usize = 4;

/// Forward-pass state kept for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionSaved {
    /// Post-softmax attention probabilities, `[t, c]`.
    pub probs: Tensor,
    /// Token offset of the query slice within the sample.
    pub offset: usize,
}

/// Causal attention forward for one head (single-threaded).
///
/// # Panics
///
/// Panics unless `k`/`v` cover exactly `offset + q.rows()` positions and
/// all head dimensions agree.
pub fn causal_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    offset: usize,
) -> (Tensor, AttentionSaved) {
    causal_attention_in(KernelPool::shared_serial(), q, k, v, offset)
}

/// Causal attention forward for one head on a worker pool: fused
/// scores → stable softmax → `P·V` per query row.
///
/// # Panics
///
/// Panics unless `k`/`v` cover exactly `offset + q.rows()` positions and
/// all head dimensions agree.
pub fn causal_attention_in(
    pool: &KernelPool,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    offset: usize,
) -> (Tensor, AttentionSaved) {
    let t = q.rows();
    let d = q.cols();
    let c = offset + t;
    assert_eq!(k.rows(), c, "key prefix must cover offset + slice");
    assert_eq!(v.rows(), c, "value prefix must cover offset + slice");
    assert_eq!(k.cols(), d, "key head dim mismatch");
    assert_eq!(v.cols(), d, "value head dim mismatch");
    let scale = 1.0 / (d as f32).sqrt();

    // Scores through the GEMM engine: pre-scale a copy of q so the
    // 1/√d factor is absorbed into the product (the backward still
    // differentiates w.r.t. the original q, so its chain-rule scale is
    // unchanged). The engine fills the full `[t, c]` matrix, including
    // the non-causal upper triangle; the softmax sweep masks it below.
    let mut qs = q.clone();
    qs.scale(scale);
    let mut probs = matmul_dgrad_uncached_in(pool, &qs, k);
    let mut items = row_blocks(probs.data_mut(), c, ROW_GRAIN);
    pool.for_each(&mut items, |_, (r0, chunk)| {
        let rows = chunk.len() / c;
        for i in 0..rows {
            let gi = *r0 + i;
            let limit = offset + gi + 1; // Causal: keys [0, limit).
            let (prow, tail) = chunk[i * c..(i + 1) * c].split_at_mut(limit);
            let mut max = f32::NEG_INFINITY;
            for &s in prow.iter() {
                max = max.max(s);
            }
            let mut denom = 0.0;
            for s in prow.iter_mut() {
                *s = fast_exp(*s - max);
                denom += *s;
            }
            let inv = 1.0 / denom;
            for s in prow.iter_mut() {
                *s *= inv;
            }
            // Causal mask: zero the future scores the GEMM filled in,
            // so the P·V contraction and the backward's Pᵀ·dOut see
            // exact zeros there.
            for s in tail.iter_mut() {
                *s = 0.0;
            }
        }
    });
    let out = matmul_uncached_in(pool, &probs, v);
    (out, AttentionSaved { probs, offset })
}

/// Backward of [`causal_attention`] (single-threaded): `(dq, dk, dv)`
/// with `dk`/`dv` spanning the whole prefix.
pub fn causal_attention_backward(
    dout: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    saved: &AttentionSaved,
) -> (Tensor, Tensor, Tensor) {
    causal_attention_backward_in(KernelPool::shared_serial(), dout, q, k, v, saved)
}

/// Backward of [`causal_attention_in`] on a worker pool: `(dq, dk, dv)`
/// with `dk`/`dv` spanning the whole prefix. `dP` and the softmax
/// Jacobian product are fused row kernels; `dV`, `dQ` and `dK` go through
/// the packed GEMM forms, so no transposed temporary is allocated.
pub fn causal_attention_backward_in(
    pool: &KernelPool,
    dout: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    saved: &AttentionSaved,
) -> (Tensor, Tensor, Tensor) {
    let t = q.rows();
    let d = q.cols();
    let c = k.rows();
    assert_eq!(saved.probs.rows(), t);
    assert_eq!(saved.probs.cols(), c);
    assert_eq!(dout.rows(), t);
    assert_eq!(dout.cols(), d);
    let scale = 1.0 / (d as f32).sqrt();
    let offset = saved.offset;

    // dV = Pᵀ · dOut (wgrad form — the transpose is absorbed by packing).
    let dv = matmul_wgrad_in(pool, &saved.probs, dout);
    // dP = dOut · Vᵀ through the engine (full width — the non-causal
    // tail comes out as arbitrary finite values), then the softmax
    // backward dS = P ⊙ (dP − rowsum(P ⊙ dP)) in place per row. The
    // rowsum only runs over the causal prefix, and the tail is zeroed
    // explicitly so the dQ/dK contractions see exact zeros there.
    let mut ds = matmul_dgrad_uncached_in(pool, dout, v);
    let mut items = row_blocks(ds.data_mut(), c, ROW_GRAIN);
    pool.for_each(&mut items, |_, (r0, chunk)| {
        let rows = chunk.len() / c;
        for i in 0..rows {
            let gi = *r0 + i;
            let limit = offset + gi + 1;
            let prow = &saved.probs.row(gi)[..limit];
            let (dsrow, tail) = chunk[i * c..(i + 1) * c].split_at_mut(limit);
            let ip = dot(prow, dsrow);
            for (s, &p) in dsrow.iter_mut().zip(prow) {
                *s = p * (*s - ip);
            }
            for s in tail.iter_mut() {
                *s = 0.0;
            }
        }
    });
    // dQ = dS · K · scale; dK = dSᵀ · Q · scale (wgrad form).
    let mut dq = matmul_uncached_in(pool, &ds, k);
    dq.scale(scale);
    let mut dk = matmul_wgrad_in(pool, &ds, q);
    dk.scale(scale);
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};
    use crate::ops::naive;

    /// Full-sequence attention must equal the concatenation of per-slice
    /// attention with KV prefixes — the core SPP correctness property.
    #[test]
    fn slice_forward_equals_full_forward() {
        let mut r = rng(31);
        let (t, d, s) = (8usize, 4usize, 4usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let (full, _) = causal_attention(&q, &k, &v, 0);
        let step = t / s;
        let mut parts = Vec::new();
        for i in 0..s {
            let qs = q.slice_rows(i * step, step);
            let kp = k.slice_rows(0, (i + 1) * step);
            let vp = v.slice_rows(0, (i + 1) * step);
            let (o, _) = causal_attention(&qs, &kp, &vp, i * step);
            parts.push(o);
        }
        let sliced = Tensor::vstack(&parts);
        assert!(full.max_abs_diff(&sliced) < 1e-5);
    }

    /// Gradients accumulated over slices must equal full-sequence
    /// gradients.
    #[test]
    fn slice_backward_equals_full_backward() {
        let mut r = rng(32);
        let (t, d, s) = (6usize, 4usize, 3usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let (_, saved) = causal_attention(&q, &k, &v, 0);
        let (dq_full, dk_full, dv_full) = causal_attention_backward(&dout, &q, &k, &v, &saved);

        let step = t / s;
        let mut dq_parts = Vec::new();
        let mut dk_acc = Tensor::zeros(t, d);
        let mut dv_acc = Tensor::zeros(t, d);
        for i in 0..s {
            let off = i * step;
            let qs = q.slice_rows(off, step);
            let kp = k.slice_rows(0, off + step);
            let vp = v.slice_rows(0, off + step);
            let (_, sv) = causal_attention(&qs, &kp, &vp, off);
            let (dq, dk, dv) =
                causal_attention_backward(&dout.slice_rows(off, step), &qs, &kp, &vp, &sv);
            dq_parts.push(dq);
            // Accumulate prefix contributions into the full-length buffers.
            for rr in 0..dk.rows() {
                for cc in 0..d {
                    dk_acc.set(rr, cc, dk_acc.at(rr, cc) + dk.at(rr, cc));
                    dv_acc.set(rr, cc, dv_acc.at(rr, cc) + dv.at(rr, cc));
                }
            }
        }
        assert!(dq_full.max_abs_diff(&Tensor::vstack(&dq_parts)) < 1e-5);
        assert!(dk_full.max_abs_diff(&dk_acc) < 1e-5);
        assert!(dv_full.max_abs_diff(&dv_acc) < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng(33);
        let (t, d) = (3usize, 2usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        check_against_finite_differences(&q, &k, &v, 0);
    }

    #[test]
    fn gradients_match_finite_differences_at_odd_shapes_with_prefix() {
        // Non-square slice (t=5, d=3) at a nonzero offset: the KV prefix
        // spans 7 positions, exercising the partial-prefix gradient path
        // at shapes that straddle the kernel lane width.
        let mut r = rng(35);
        let (t, d, offset) = (5usize, 3usize, 2usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(offset + t, d, 1.0, &mut r);
        let v = uniform(offset + t, d, 1.0, &mut r);
        check_against_finite_differences(&q, &k, &v, offset);
    }

    fn check_against_finite_differences(q: &Tensor, k: &Tensor, v: &Tensor, offset: usize) {
        let (t, d) = (q.rows(), q.cols());
        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| {
            let (o, _) = causal_attention(q, k, v, offset);
            o.data().iter().sum::<f32>()
        };
        let dout = Tensor::from_vec(t, d, vec![1.0; t * d]);
        let (_, saved) = causal_attention(q, k, v, offset);
        let (dq, dk, dv) = causal_attention_backward(&dout, q, k, v, &saved);
        let eps = 1e-3;
        let check = |name: &str, x: &Tensor, g: &Tensor, which: usize| {
            for rr in 0..x.rows() {
                for cc in 0..x.cols() {
                    let mut xp = x.clone();
                    xp.set(rr, cc, x.at(rr, cc) + eps);
                    let mut xm = x.clone();
                    xm.set(rr, cc, x.at(rr, cc) - eps);
                    let (lp, lm) = match which {
                        0 => (loss(&xp, k, v), loss(&xm, k, v)),
                        1 => (loss(q, &xp, v), loss(q, &xm, v)),
                        _ => (loss(q, k, &xp), loss(q, k, &xm)),
                    };
                    let num = (lp - lm) / (2.0 * eps);
                    assert!(
                        (num - g.at(rr, cc)).abs() < 2e-2,
                        "{name}({rr},{cc}): {num} vs {}",
                        g.at(rr, cc)
                    );
                }
            }
        };
        check("dq", q, &dq, 0);
        check("dk", k, &dk, 1);
        check("dv", v, &dv, 2);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut r = rng(34);
        let q = uniform(2, 2, 1.0, &mut r);
        let k = uniform(2, 2, 1.0, &mut r);
        let v1 = uniform(2, 2, 1.0, &mut r);
        // Changing the second value row must not affect the first output
        // row.
        let mut v2 = v1.clone();
        v2.set(1, 0, 99.0);
        let (o1, _) = causal_attention(&q, &k, &v1, 0);
        let (o2, _) = causal_attention(&q, &k, &v2, 0);
        assert_eq!(o1.row(0), o2.row(0));
        assert_ne!(o1.row(1), o2.row(1));
    }

    #[test]
    fn fused_kernels_match_naive_reference() {
        let mut r = rng(36);
        let (t, d, offset) = (9usize, 5usize, 3usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(offset + t, d, 1.0, &mut r);
        let v = uniform(offset + t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let (o_ref, probs_ref) = naive::causal_attention(&q, &k, &v, offset);
        let (o, saved) = causal_attention(&q, &k, &v, offset);
        assert!(o.max_abs_diff(&o_ref) < 1e-5);
        assert!(saved.probs.max_abs_diff(&probs_ref) < 1e-5);
        let (dq_r, dk_r, dv_r) = naive::causal_attention_backward(&dout, &q, &k, &v, &probs_ref);
        let (dq, dk, dv) = causal_attention_backward(&dout, &q, &k, &v, &saved);
        assert!(dq.max_abs_diff(&dq_r) < 1e-5);
        assert!(dk.max_abs_diff(&dk_r) < 1e-5);
        assert!(dv.max_abs_diff(&dv_r) < 1e-5);
    }

    #[test]
    fn multi_worker_attention_is_bit_identical() {
        let mut r = rng(37);
        let (t, d, offset) = (13usize, 6usize, 4usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(offset + t, d, 1.0, &mut r);
        let v = uniform(offset + t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let (o1, s1) = causal_attention(&q, &k, &v, offset);
        let (dq1, dk1, dv1) = causal_attention_backward(&dout, &q, &k, &v, &s1);
        for workers in [2, 4] {
            let pool = KernelPool::new(workers);
            let (o, s) = causal_attention_in(&pool, &q, &k, &v, offset);
            let (dq, dk, dv) = causal_attention_backward_in(&pool, &dout, &q, &k, &v, &s);
            assert_eq!(o1.data(), o.data());
            assert_eq!(s1.probs.data(), s.probs.data());
            assert_eq!(dq1.data(), dq.data());
            assert_eq!(dk1.data(), dk.data());
            assert_eq!(dv1.data(), dv.data());
        }
    }
}
