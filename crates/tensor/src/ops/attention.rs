//! Single-head causal attention over a query *slice* and its key/value
//! prefix — the dataflow primitive of sequence pipeline parallelism.
//!
//! Under TeraPipe/MEPipe slicing, the forward of slice `i` consumes the
//! keys and values of every preceding slice (Section 4.1, Figure 3); the
//! backward of slice `i` produces gradient *contributions* to those
//! prefix keys/values, which the caller accumulates in reverse slice
//! order. This module implements exactly that contract:
//!
//! * forward: `q: [t, d]` for the slice, `k, v: [c, d]` for the whole
//!   prefix `c = offset + t`; causal masking inside the slice;
//! * backward: returns `dq: [t, d]` plus `dk, dv: [c, d]` over the whole
//!   prefix.

use crate::{
    ops::matmul::{matmul, matmul_wgrad},
    tensor::Tensor,
};

/// Forward-pass state kept for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionSaved {
    /// Post-softmax attention probabilities, `[t, c]`.
    pub probs: Tensor,
    /// Token offset of the query slice within the sample.
    pub offset: usize,
}

/// Causal attention forward for one head.
///
/// # Panics
///
/// Panics unless `k`/`v` cover exactly `offset + q.rows()` positions and
/// all head dimensions agree.
pub fn causal_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    offset: usize,
) -> (Tensor, AttentionSaved) {
    let t = q.rows();
    let d = q.cols();
    let c = offset + t;
    assert_eq!(k.rows(), c, "key prefix must cover offset + slice");
    assert_eq!(v.rows(), c, "value prefix must cover offset + slice");
    assert_eq!(k.cols(), d, "key head dim mismatch");
    assert_eq!(v.cols(), d, "value head dim mismatch");
    let scale = 1.0 / (d as f32).sqrt();

    let mut probs = Tensor::zeros(t, c);
    for i in 0..t {
        let limit = offset + i + 1; // Causal: keys [0, limit).
        let qi = q.row(i);
        // Scores with running max for a stable softmax.
        let mut max = f32::NEG_INFINITY;
        let mut scores = vec![0.0f32; limit];
        for (j, s) in scores.iter_mut().enumerate() {
            let kj = k.row(j);
            let dot: f32 = qi.iter().zip(kj).map(|(a, b)| a * b).sum();
            *s = dot * scale;
            max = max.max(*s);
        }
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - max).exp();
            denom += *s;
        }
        let prow = probs.row_mut(i);
        for (j, s) in scores.iter().enumerate() {
            prow[j] = s / denom;
        }
    }
    let out = matmul(&probs, v);
    (out, AttentionSaved { probs, offset })
}

/// Backward of [`causal_attention`]: `(dq, dk, dv)` with `dk`/`dv`
/// spanning the whole prefix.
pub fn causal_attention_backward(
    dout: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    saved: &AttentionSaved,
) -> (Tensor, Tensor, Tensor) {
    let t = q.rows();
    let d = q.cols();
    let c = k.rows();
    assert_eq!(saved.probs.rows(), t);
    assert_eq!(saved.probs.cols(), c);
    assert_eq!(dout.rows(), t);
    assert_eq!(dout.cols(), d);
    let scale = 1.0 / (d as f32).sqrt();

    // dV = Pᵀ · dOut.
    let dv = matmul_wgrad(&saved.probs, dout);
    // dP = dOut · Vᵀ.
    let dp = matmul(dout, &v.transpose());
    // Softmax backward per row: dS = P ⊙ (dP − rowsum(P ⊙ dP)).
    let mut ds = Tensor::zeros(t, c);
    for i in 0..t {
        let prow = saved.probs.row(i);
        let dprow = dp.row(i);
        let dot: f32 = prow.iter().zip(dprow).map(|(p, g)| p * g).sum();
        let dsrow = ds.row_mut(i);
        for j in 0..c {
            dsrow[j] = prow[j] * (dprow[j] - dot);
        }
    }
    // dQ = dS · K · scale; dK = dSᵀ · Q · scale.
    let mut dq = matmul(&ds, k);
    dq.scale(scale);
    let mut dk = matmul_wgrad(&ds, q);
    dk.scale(scale);
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    /// Full-sequence attention must equal the concatenation of per-slice
    /// attention with KV prefixes — the core SPP correctness property.
    #[test]
    fn slice_forward_equals_full_forward() {
        let mut r = rng(31);
        let (t, d, s) = (8usize, 4usize, 4usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let (full, _) = causal_attention(&q, &k, &v, 0);
        let step = t / s;
        let mut parts = Vec::new();
        for i in 0..s {
            let qs = q.slice_rows(i * step, step);
            let kp = k.slice_rows(0, (i + 1) * step);
            let vp = v.slice_rows(0, (i + 1) * step);
            let (o, _) = causal_attention(&qs, &kp, &vp, i * step);
            parts.push(o);
        }
        let sliced = Tensor::vstack(&parts);
        assert!(full.max_abs_diff(&sliced) < 1e-5);
    }

    /// Gradients accumulated over slices must equal full-sequence
    /// gradients.
    #[test]
    fn slice_backward_equals_full_backward() {
        let mut r = rng(32);
        let (t, d, s) = (6usize, 4usize, 3usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let (_, saved) = causal_attention(&q, &k, &v, 0);
        let (dq_full, dk_full, dv_full) = causal_attention_backward(&dout, &q, &k, &v, &saved);

        let step = t / s;
        let mut dq_parts = Vec::new();
        let mut dk_acc = Tensor::zeros(t, d);
        let mut dv_acc = Tensor::zeros(t, d);
        for i in 0..s {
            let off = i * step;
            let qs = q.slice_rows(off, step);
            let kp = k.slice_rows(0, off + step);
            let vp = v.slice_rows(0, off + step);
            let (_, sv) = causal_attention(&qs, &kp, &vp, off);
            let (dq, dk, dv) =
                causal_attention_backward(&dout.slice_rows(off, step), &qs, &kp, &vp, &sv);
            dq_parts.push(dq);
            // Accumulate prefix contributions into the full-length buffers.
            for rr in 0..dk.rows() {
                for cc in 0..d {
                    dk_acc.set(rr, cc, dk_acc.at(rr, cc) + dk.at(rr, cc));
                    dv_acc.set(rr, cc, dv_acc.at(rr, cc) + dv.at(rr, cc));
                }
            }
        }
        assert!(dq_full.max_abs_diff(&Tensor::vstack(&dq_parts)) < 1e-5);
        assert!(dk_full.max_abs_diff(&dk_acc) < 1e-5);
        assert!(dv_full.max_abs_diff(&dv_acc) < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng(33);
        let (t, d) = (3usize, 2usize);
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(t, d, 1.0, &mut r);
        let v = uniform(t, d, 1.0, &mut r);
        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| {
            let (o, _) = causal_attention(q, k, v, 0);
            o.data().iter().sum::<f32>()
        };
        let dout = Tensor::from_vec(t, d, vec![1.0; t * d]);
        let (_, saved) = causal_attention(&q, &k, &v, 0);
        let (dq, dk, dv) = causal_attention_backward(&dout, &q, &k, &v, &saved);
        let eps = 1e-3;
        let check = |name: &str, x: &Tensor, g: &Tensor, which: usize| {
            for rr in 0..x.rows() {
                for cc in 0..x.cols() {
                    let mut xp = x.clone();
                    xp.set(rr, cc, x.at(rr, cc) + eps);
                    let mut xm = x.clone();
                    xm.set(rr, cc, x.at(rr, cc) - eps);
                    let (lp, lm) = match which {
                        0 => (loss(&xp, &k, &v), loss(&xm, &k, &v)),
                        1 => (loss(&q, &xp, &v), loss(&q, &xm, &v)),
                        _ => (loss(&q, &k, &xp), loss(&q, &k, &xm)),
                    };
                    let num = (lp - lm) / (2.0 * eps);
                    assert!(
                        (num - g.at(rr, cc)).abs() < 2e-2,
                        "{name}({rr},{cc}): {num} vs {}",
                        g.at(rr, cc)
                    );
                }
            }
        };
        check("dq", &q, &dq, 0);
        check("dk", &k, &dk, 1);
        check("dv", &v, &dv, 2);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut r = rng(34);
        let q = uniform(2, 2, 1.0, &mut r);
        let k = uniform(2, 2, 1.0, &mut r);
        let v1 = uniform(2, 2, 1.0, &mut r);
        // Changing the second value row must not affect the first output
        // row.
        let mut v2 = v1.clone();
        v2.set(1, 0, 99.0);
        let (o1, _) = causal_attention(&q, &k, &v1, 0);
        let (o2, _) = causal_attention(&q, &k, &v2, 0);
        assert_eq!(o1.row(0), o2.row(0));
        assert_ne!(o1.row(1), o2.row(1));
    }
}
