//! RMSNorm (the normalisation Llama uses) with explicit backward, as
//! row-parallel fused kernels on the worker pool.

use crate::{
    ops::vecops::dot,
    pool::{row_blocks, KernelPool},
    tensor::Tensor,
};

/// Numerical floor inside the root-mean-square.
const EPS: f32 = 1e-5;

/// Rows per parallel work item — fixed so results are bit-identical
/// across worker counts.
const ROW_GRAIN: usize = 32;

/// Values saved by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub struct RmsNormSaved {
    /// Input of the forward pass.
    pub x: Tensor,
    /// Per-row inverse RMS.
    pub inv_rms: Vec<f32>,
}

/// `y[r] = x[r] / rms(x[r]) * w`, row-wise (single-threaded).
///
/// # Panics
///
/// Panics if `w` is not a `[1, cols]` vector matching `x`.
pub fn rmsnorm(x: &Tensor, w: &Tensor) -> (Tensor, RmsNormSaved) {
    rmsnorm_in(KernelPool::shared_serial(), x, w)
}

/// `y[r] = x[r] / rms(x[r]) * w`, rows fanned out over a worker pool.
///
/// # Panics
///
/// Panics if `w` is not a `[1, cols]` vector matching `x`.
pub fn rmsnorm_in(pool: &KernelPool, x: &Tensor, w: &Tensor) -> (Tensor, RmsNormSaved) {
    assert_eq!(w.rows(), 1, "weight must be a row vector");
    assert_eq!(w.cols(), x.cols(), "weight length mismatch");
    let cols = x.cols();
    let n = cols as f32;
    let mut y = Tensor::zeros(x.rows(), cols);
    let mut items = row_blocks(y.data_mut(), cols, ROW_GRAIN);
    let partials: Vec<Vec<f32>> = pool.for_each(&mut items, |_, (r0, chunk)| {
        let rows = chunk.len() / cols;
        let mut invs = Vec::with_capacity(rows);
        let wr = w.row(0);
        for i in 0..rows {
            let row = x.row(*r0 + i);
            let ms = dot(row, row) / n;
            let inv = 1.0 / (ms + EPS).sqrt();
            invs.push(inv);
            let out = &mut chunk[i * cols..(i + 1) * cols];
            for ((o, &xv), &wv) in out.iter_mut().zip(row).zip(wr) {
                *o = xv * inv * wv;
            }
        }
        invs
    });
    let inv_rms = partials.into_iter().flatten().collect();
    (
        y,
        RmsNormSaved {
            x: x.clone(),
            inv_rms,
        },
    )
}

/// Backward of [`rmsnorm`] (single-threaded): returns `(dx, dw)`.
pub fn rmsnorm_backward(dy: &Tensor, w: &Tensor, saved: &RmsNormSaved) -> (Tensor, Tensor) {
    rmsnorm_backward_in(KernelPool::shared_serial(), dy, w, saved)
}

/// Backward of [`rmsnorm_in`] on a worker pool: returns `(dx, dw)`.
/// Per-chunk `dw` partials are reduced in chunk order, so the result is
/// bit-identical across worker counts.
pub fn rmsnorm_backward_in(
    pool: &KernelPool,
    dy: &Tensor,
    w: &Tensor,
    saved: &RmsNormSaved,
) -> (Tensor, Tensor) {
    let x = &saved.x;
    let cols = x.cols();
    let n = cols as f32;
    let mut dx = Tensor::zeros(x.rows(), cols);
    let mut items = row_blocks(dx.data_mut(), cols, ROW_GRAIN);
    let partials: Vec<Vec<f32>> = pool.for_each(&mut items, |_, (r0, chunk)| {
        let rows = chunk.len() / cols;
        let mut dwp = vec![0.0f32; cols];
        let wr = w.row(0);
        for i in 0..rows {
            let r = *r0 + i;
            let inv = saved.inv_rms[r];
            let xr = x.row(r);
            let dyr = dy.row(r);
            // dL/dw_c += dy_c * x_c * inv, and the row's Σ(w*dy*x) in the
            // same fused sweep.
            let mut sum = 0.0f32;
            for ((d, &xv), (&dyv, &wv)) in dwp.iter_mut().zip(xr).zip(dyr.iter().zip(wr)) {
                *d += dyv * xv * inv;
                sum += wv * dyv * xv;
            }
            // dx = inv * (w*dy) − inv^3/n * x * Σ(w*dy*x).
            let k = inv * inv * inv / n * sum;
            let dxr = &mut chunk[i * cols..(i + 1) * cols];
            for ((o, &xv), (&dyv, &wv)) in dxr.iter_mut().zip(xr).zip(dyr.iter().zip(wr)) {
                *o = inv * wv * dyv - k * xv;
            }
        }
        dwp
    });
    let mut dw = Tensor::zeros(1, cols);
    for p in partials {
        for (a, b) in dw.row_mut(0).iter_mut().zip(p) {
            *a += b;
        }
    }
    (dx, dw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn forward_normalises_rows() {
        let x = Tensor::from_vec(1, 4, vec![2.0, 2.0, 2.0, 2.0]);
        let w = Tensor::from_vec(1, 4, vec![1.0; 4]);
        let (y, _) = rmsnorm(&x, &w);
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }

    fn fd_check(rows: usize, cols: usize, seed: u64) {
        let mut r = rng(seed);
        let x = uniform(rows, cols, 1.0, &mut r);
        let w = uniform(1, cols, 1.0, &mut r);
        let loss = |x: &Tensor, w: &Tensor| {
            let (y, _) = rmsnorm(x, w);
            y.data().iter().sum::<f32>()
        };
        let dy = Tensor::from_vec(rows, cols, vec![1.0; rows * cols]);
        let (_, saved) = rmsnorm(&x, &w);
        let (dx, dw) = rmsnorm_backward(&dy, &w, &saved);
        let eps = 1e-3;
        for rr in 0..rows {
            for c in 0..cols {
                let mut xp = x.clone();
                xp.set(rr, c, x.at(rr, c) + eps);
                let mut xm = x.clone();
                xm.set(rr, c, x.at(rr, c) - eps);
                let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
                assert!(
                    (num - dx.at(rr, c)).abs() < 2e-2,
                    "dx({rr},{c}): {num} vs {}",
                    dx.at(rr, c)
                );
            }
        }
        for c in 0..cols {
            let mut wp = w.clone();
            wp.set(0, c, w.at(0, c) + eps);
            let mut wm = w.clone();
            wm.set(0, c, w.at(0, c) - eps);
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.at(0, c)).abs() < 2e-2,
                "dw({c}): {num} vs {}",
                dw.at(0, c)
            );
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        fd_check(3, 5, 11);
    }

    #[test]
    fn backward_matches_finite_differences_at_odd_shapes() {
        // Non-square and odd widths straddling the dot-product lane
        // width (8): a 7-wide and a 9-wide row, plus a single tall row.
        fd_check(2, 7, 12);
        fd_check(5, 9, 13);
        fd_check(1, 11, 14);
    }

    #[test]
    fn multi_worker_is_bit_identical_to_serial() {
        let mut r = rng(15);
        // More rows than one grain so the pool actually splits.
        let x = uniform(3 * ROW_GRAIN + 5, 10, 1.0, &mut r);
        let w = uniform(1, 10, 1.0, &mut r);
        let dy = uniform(x.rows(), 10, 1.0, &mut r);
        let (y1, s1) = rmsnorm(&x, &w);
        let (dx1, dw1) = rmsnorm_backward(&dy, &w, &s1);
        for workers in [2, 4] {
            let pool = KernelPool::new(workers);
            let (y, s) = rmsnorm_in(&pool, &x, &w);
            let (dx, dw) = rmsnorm_backward_in(&pool, &dy, &w, &s);
            assert_eq!(y1.data(), y.data());
            assert_eq!(s1.inv_rms, s.inv_rms);
            assert_eq!(dx1.data(), dx.data());
            assert_eq!(dw1.data(), dw.data());
        }
    }
}
