//! RMSNorm (the normalisation Llama uses) with explicit backward.

use crate::tensor::Tensor;

/// Numerical floor inside the root-mean-square.
const EPS: f32 = 1e-5;

/// Values saved by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub struct RmsNormSaved {
    /// Input of the forward pass.
    pub x: Tensor,
    /// Per-row inverse RMS.
    pub inv_rms: Vec<f32>,
}

/// `y[r] = x[r] / rms(x[r]) * w`, row-wise.
///
/// # Panics
///
/// Panics if `w` is not a `[1, cols]` vector matching `x`.
pub fn rmsnorm(x: &Tensor, w: &Tensor) -> (Tensor, RmsNormSaved) {
    assert_eq!(w.rows(), 1, "weight must be a row vector");
    assert_eq!(w.cols(), x.cols(), "weight length mismatch");
    let n = x.cols() as f32;
    let mut y = Tensor::zeros(x.rows(), x.cols());
    let mut inv_rms = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / n;
        let inv = 1.0 / (ms + EPS).sqrt();
        inv_rms.push(inv);
        let out = y.row_mut(r);
        for (c, (&xv, &wv)) in row.iter().zip(w.row(0)).enumerate() {
            out[c] = xv * inv * wv;
        }
    }
    (
        y,
        RmsNormSaved {
            x: x.clone(),
            inv_rms,
        },
    )
}

/// Backward of [`rmsnorm`]: returns `(dx, dw)`.
pub fn rmsnorm_backward(dy: &Tensor, w: &Tensor, saved: &RmsNormSaved) -> (Tensor, Tensor) {
    let x = &saved.x;
    let n = x.cols() as f32;
    let mut dx = Tensor::zeros(x.rows(), x.cols());
    let mut dw = Tensor::zeros(1, x.cols());
    for r in 0..x.rows() {
        let inv = saved.inv_rms[r];
        let xr = x.row(r);
        let dyr = dy.row(r);
        // dL/dw_c += dy_c * x_c * inv.
        for c in 0..x.cols() {
            dw.row_mut(0)[c] += dyr[c] * xr[c] * inv;
        }
        // dx = inv * (w*dy) − inv^3/n * x * Σ(w*dy*x).
        let dot: f32 = (0..x.cols()).map(|c| w.at(0, c) * dyr[c] * xr[c]).sum();
        let k = inv * inv * inv / n * dot;
        let dxr = dx.row_mut(r);
        for c in 0..x.cols() {
            dxr[c] = inv * w.at(0, c) * dyr[c] - k * xr[c];
        }
    }
    (dx, dw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn forward_normalises_rows() {
        let x = Tensor::from_vec(1, 4, vec![2.0, 2.0, 2.0, 2.0]);
        let w = Tensor::from_vec(1, 4, vec![1.0; 4]);
        let (y, _) = rmsnorm(&x, &w);
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut r = rng(11);
        let x = uniform(3, 5, 1.0, &mut r);
        let w = uniform(1, 5, 1.0, &mut r);
        let loss = |x: &Tensor, w: &Tensor| {
            let (y, _) = rmsnorm(x, w);
            y.data().iter().sum::<f32>()
        };
        let dy = Tensor::from_vec(3, 5, vec![1.0; 15]);
        let (_, saved) = rmsnorm(&x, &w);
        let (dx, dw) = rmsnorm_backward(&dy, &w, &saved);
        let eps = 1e-3;
        for rr in 0..3 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp.set(rr, c, x.at(rr, c) + eps);
                let mut xm = x.clone();
                xm.set(rr, c, x.at(rr, c) - eps);
                let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
                assert!(
                    (num - dx.at(rr, c)).abs() < 2e-2,
                    "dx({rr},{c}): {num} vs {}",
                    dx.at(rr, c)
                );
            }
        }
        for c in 0..5 {
            let mut wp = w.clone();
            wp.set(0, c, w.at(0, c) + eps);
            let mut wm = w.clone();
            wm.set(0, c, w.at(0, c) - eps);
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.at(0, c)).abs() < 2e-2,
                "dw({c}): {num} vs {}",
                dw.at(0, c)
            );
        }
    }
}
