//! Matrix multiplication and its two gradient halves, on the blocked,
//! panel-packed kernel engine.
//!
//! For `C = A · B` with `A: [m,k]` (activations) and `B: [k,n]` (weights):
//!
//! * the *input gradient* `dA = dC · Bᵀ` is on the pipeline's critical
//!   path (it feeds the previous layer / previous stage);
//! * the *weight gradient* `dB = Aᵀ · dC` has no consumers until the
//!   optimizer step and can float — this is the GEMM MEPipe queues and
//!   drains opportunistically (Section 5).
//!
//! All three share one engine ([`gemm`]): the right-hand operand is
//! packed once into `NR`-wide column strips, each `MC`-row block of the
//! output packs its left-hand panel into `MR`-tall micro-panels, and a
//! register-tiled `MR×NR` micro-kernel accumulates along the inner
//! dimension with no per-element branches — written so the
//! autovectorizer emits SIMD for the `NR`-wide inner loop and keeps the
//! accumulator tile in registers. The transposed operands of the two
//! gradient halves are absorbed by the packing routines ([`View`]), so
//! no transposed temporary is ever materialised. Row blocks are
//! distributed over a [`KernelPool`] — unless the GEMM is below its
//! parallel break-even size ([`PAR_FLOP_FLOOR`]), where the spawn/join
//! overhead loses and the blocks run inline instead. Because every
//! output element is written by exactly one block and the accumulation
//! order along the inner dimension is fixed, results are bit-identical
//! across worker counts (and across the inline fallback).
//!
//! The original scalar triple loops survive in [`crate::ops::naive`] as
//! the reference the parity proptests and the `kernels` bench run
//! against.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::arena;
use crate::hash::FastBuild;
use crate::pool::{row_blocks, KernelPool};
use crate::tensor::Tensor;

/// Rows of one register tile (micro-panel height of the packed A).
const MR: usize = 6;
/// Columns of one register tile (strip width of the packed B); a
/// multiple of the widest SSE/AVX f32 lane count the autovectorizer
/// targets, and wide enough that the `MR × (NR/lanes)` accumulator
/// vectors form more independent FMA chains than the FMA unit's
/// latency×throughput product — with too few chains the micro-kernel is
/// latency-bound, not throughput-bound.
const NR: usize = 32;
/// Rows per cache block of C — also the parallel grain handed to the
/// pool, fixed so chunking (and thus accumulation grouping) never
/// depends on the worker count.
const MC: usize = 48;
/// Inner-dimension block: one `MC×KC` A panel (~48 KiB) plus one `KC×NR`
/// B strip (~8 KiB) stay cache-resident under the accumulator tile.
const KC: usize = 256;
/// FLOP count (`2·m·n·k`) below which [`gemm`] ignores the pool and runs
/// the row blocks inline. Fanning out pays a scoped-thread spawn plus a
/// join on every call (tens of microseconds) and splits a working set
/// that fits one core's cache across several; below this much
/// arithmetic those costs outweigh the parallel win — on the bench grid
/// multi-worker *lost* to single-worker up through 512³
/// (`2·512³ ≈ 2.7e8` FLOPs). Chunking is untouched (the grain stays
/// [`MC`]) and a 1-worker `for_each` visits blocks in index order, so
/// the inline path is bit-identical to the fanned-out one.
#[cfg(not(test))]
const PAR_FLOP_FLOOR: usize = 1 << 30;
/// Unit tests shrink the floor so test-sized shapes still exercise the
/// parallel path.
#[cfg(test)]
const PAR_FLOP_FLOOR: usize = 1 << 16;

/// A logical `[rows, cols]` operand over row-major storage, optionally
/// transposed. Packing reads through this view, which is how the dgrad
/// (`· Bᵀ`) and wgrad (`Aᵀ ·`) forms reuse the one engine without
/// materialising a transpose.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    stride: usize,
    trans: bool,
}

impl<'a> View<'a> {
    fn normal(t: &'a Tensor) -> Self {
        View {
            data: t.data(),
            stride: t.cols(),
            trans: false,
        }
    }

    fn transposed(t: &'a Tensor) -> Self {
        View {
            data: t.data(),
            stride: t.cols(),
            trans: true,
        }
    }

    #[inline(always)]
    fn get(&self, r: usize, c: usize) -> f32 {
        if self.trans {
            self.data[c * self.stride + r]
        } else {
            self.data[r * self.stride + c]
        }
    }
}

/// Packs the whole right-hand operand into `NR`-wide strips: strip `s`
/// holds, for each inner index `p`, the `NR` values `b[p, s*NR..]`
/// contiguously (zero-padded past `n`), so the micro-kernel streams it
/// linearly. Returns the backing buffer and the element offset of the
/// first strip: the strips are placed on a 64-byte boundary so every
/// vector load in the micro-kernel stays within one cache line —
/// `Vec<f32>` alone only guarantees 4-byte alignment, and a misaligned
/// base makes every B load a line-splitting access. The buffer comes
/// from the installed tensor arena when there is one (zeroed, so the
/// padding past `n` is zero either way); [`gemm`] returns it there.
fn pack_b(b: View, k: usize, n: usize) -> (Vec<f32>, usize) {
    let strips = n.div_ceil(NR);
    let (mut buf, off) = arena::acquire_scratch(strips * k * NR);
    for s in 0..strips {
        let col0 = s * NR;
        let cols = NR.min(n - col0);
        let base = off + s * k * NR;
        if b.trans {
            for p in 0..k {
                let dst = &mut buf[base + p * NR..][..cols];
                for (jj, d) in dst.iter_mut().enumerate() {
                    *d = b.data[(col0 + jj) * b.stride + p];
                }
            }
        } else {
            for p in 0..k {
                let src = &b.data[p * b.stride + col0..][..cols];
                buf[base + p * NR..][..cols].copy_from_slice(src);
            }
        }
    }
    (buf, off)
}

/// Packs rows `i0..i0+mc`, inner indices `pk..pk+kc` of the left-hand
/// operand into `MR`-tall micro-panels: panel `q` holds, for each `p`,
/// the `MR` values `a[i0+q*MR.., pk+p]` contiguously (zero-padded past
/// `mc`).
fn pack_a(a: View, i0: usize, mc: usize, pk: usize, kc: usize, buf: &mut Vec<f32>) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    for q in 0..panels {
        let r0 = i0 + q * MR;
        let rows = MR.min(i0 + mc - r0);
        let base = q * kc * MR;
        for p in 0..kc {
            let dst = &mut buf[base + p * MR..][..rows];
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = a.get(r0 + ii, pk + p);
            }
        }
    }
}

/// Fused multiply-add when the target has an FMA unit (one rounding,
/// `vfmadd` under AVX2/AVX-512), plain multiply-add otherwise. rustc
/// never contracts `a * b + c` on its own, so the fusion — which roughly
/// doubles micro-kernel throughput — has to be asked for explicitly.
/// Either form is deterministic for a given build.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        c + a * b
    }
}

/// The register-tiled inner loop: returns `init + Σ_p a_panel ⊗ b_strip`
/// over `kc` inner indices. Constant trip counts let the `NR`-wide loop
/// vectorize, and there are no data-dependent branches. The accumulator
/// is taken and returned *by value*: mutating it through a `&mut`
/// reference makes LLVM keep the in-memory copy coherent — one stack
/// store per FMA — where a local array lives purely in registers.
#[inline]
fn micro_kernel(ap: &[f32], bp: &[f32], init: [[f32; NR]; MR]) -> [[f32; NR]; MR] {
    let mut acc = init;
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (accr, &av) in acc.iter_mut().zip(a) {
            for (c, &bv) in accr.iter_mut().zip(b) {
                *c = fmadd(av, bv, *c);
            }
        }
    }
    acc
}

/// [`micro_kernel`] reading the left operand straight from `MR` source
/// rows instead of a packed panel. A row-major (non-transposed) left
/// operand already has each tile row contiguous over the inner indices,
/// so packing it would only copy data the broadcast loads can read in
/// place — skipping the copy removes the whole pack-A pass from the
/// `matmul`/`dgrad` hot path. Accumulation order is identical to the
/// packed kernel, so both paths produce bit-identical results. Each
/// `a_rows[r]` must hold exactly `bp.len() / NR` values.
#[inline]
fn micro_kernel_rows(a_rows: &[&[f32]; MR], bp: &[f32], init: [[f32; NR]; MR]) -> [[f32; NR]; MR] {
    let mut acc = init;
    for (p, b) in bp.chunks_exact(NR).enumerate() {
        for (accr, ar) in acc.iter_mut().zip(a_rows) {
            let av = ar[p];
            for (c, &bv) in accr.iter_mut().zip(b) {
                *c = fmadd(av, bv, *c);
            }
        }
    }
    acc
}

/// One `MC`-row block of the output, sweeping the shared packed B and
/// accumulating through the micro-kernel. A transposed left operand is
/// packed into `MR`-tall micro-panels per `KC` block; a row-major one is
/// read in place by [`micro_kernel_rows`] (rows past the edge borrow a
/// zero row, matching the packed path's zero padding exactly).
fn gemm_row_block(i0: usize, c_rows: &mut [f32], n: usize, k: usize, a: View, b_pack: &[f32]) {
    let mc = c_rows.len() / n;
    let panels = mc.div_ceil(MR);
    // Upper bound over every KC block, so the one scratch buffer serves
    // the whole sweep (pack_a only ever resizes downward within it).
    let a_scratch = if a.trans { panels * KC.min(k) * MR } else { 0 };
    let mut a_buf = if a.trans {
        arena::acquire_scratch(a_scratch).0
    } else {
        Vec::new()
    };
    let zero_row = [0.0f32; KC];
    let mut pk = 0;
    while pk < k {
        let kc = KC.min(k - pk);
        if a.trans {
            pack_a(a, i0, mc, pk, kc, &mut a_buf);
        }
        for (s, j0) in (0..n).step_by(NR).enumerate() {
            let cols = NR.min(n - j0);
            let bs = &b_pack[s * k * NR + pk * NR..][..kc * NR];
            for q in 0..panels {
                let r0 = q * MR;
                let rows = MR.min(mc - r0);
                let full = rows == MR && cols == NR;
                let mut acc = [[0.0f32; NR]; MR];
                // On the first KC pass C is still all zeros — skip the read.
                if pk > 0 {
                    if full {
                        // Constant-length copies let the accumulator move
                        // between registers and C without a stack bounce.
                        for (i, accr) in acc.iter_mut().enumerate() {
                            accr.copy_from_slice(&c_rows[(r0 + i) * n + j0..][..NR]);
                        }
                    } else {
                        for (i, accr) in acc.iter_mut().enumerate().take(rows) {
                            accr[..cols].copy_from_slice(&c_rows[(r0 + i) * n + j0..][..cols]);
                        }
                    }
                }
                let acc = if a.trans {
                    let ap = &a_buf[q * kc * MR..][..kc * MR];
                    micro_kernel(ap, bs, acc)
                } else {
                    let mut a_rows: [&[f32]; MR] = [&zero_row[..kc]; MR];
                    for (ii, ar) in a_rows.iter_mut().enumerate().take(rows) {
                        *ar = &a.data[(i0 + r0 + ii) * a.stride + pk..][..kc];
                    }
                    micro_kernel_rows(&a_rows, bs, acc)
                };
                if full {
                    for (i, accr) in acc.iter().enumerate() {
                        c_rows[(r0 + i) * n + j0..][..NR].copy_from_slice(accr);
                    }
                } else {
                    for (i, accr) in acc.iter().enumerate().take(rows) {
                        c_rows[(r0 + i) * n + j0..][..cols].copy_from_slice(&accr[..cols]);
                    }
                }
            }
        }
        pk += kc;
    }
    if a.trans {
        arena::release_scratch(a_scratch, a_buf);
    }
}

/// Retained packed-B images, keyed by the B tensor's snapshot stamp
/// (see [`Tensor::stamp`]) plus the transpose flag. A weight matrix is
/// the B operand of one forward and one input-gradient GEMM *per slice
/// per micro-batch*, so under slice-level scheduling the same bytes
/// would otherwise be repacked dozens of times per iteration — and the
/// dgrad form packs through a column-strided transposed view, the
/// slowest access pattern in the engine. Stamps are never reused and
/// are re-issued on any mutable access, so a hit is guaranteed to
/// serve bytes identical to what `pack_b` would produce; results are
/// bitwise unchanged. The cache is thread-local (stage threads each
/// pack once) and size-capped: exceeding [`PACK_CACHE_CAP`] clears it,
/// bounding memory at ~8 MiB per thread even when one-shot operands
/// churn through.
struct PackCache {
    map: HashMap<(u64, bool), (Vec<f32>, usize), FastBuild>,
    elems: usize,
}

/// Total retained f32 elements per thread before the cache is cleared.
const PACK_CACHE_CAP: usize = 2 << 20;

thread_local! {
    static PACK_CACHE: RefCell<PackCache> = RefCell::new(PackCache {
        map: HashMap::default(),
        elems: 0,
    });
}

/// Shared engine: logical `C[m,n] = A[m,k] · B[k,n]` with either operand
/// possibly a transposed view. Row blocks of C fan out over the pool.
/// `b_stamp` opts the packed B image into the thread-local [`PackCache`]
/// — pass it when B is long-lived and reused (weights), `None` when it
/// is a one-shot operand (the wgrad form's dC).
fn gemm(
    pool: &KernelPool,
    m: usize,
    n: usize,
    k: usize,
    a: View,
    b: View,
    b_stamp: Option<u64>,
) -> Tensor {
    if m == 0 || n == 0 || k == 0 {
        return Tensor::zeros(m, n);
    }
    // Every output element is stored on the first KC pass (the kernel
    // skips the C read when `pk == 0`), so the zero-fill would be dead.
    let mut out = Tensor::uninit(m, n);
    let pool = if 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k) < PAR_FLOP_FLOOR {
        KernelPool::shared_serial()
    } else {
        pool
    };
    let run = |out: &mut Tensor, b_pack: &[f32]| {
        let mut blocks = row_blocks(out.data_mut(), n, MC);
        pool.for_each(&mut blocks, |_, (i0, c_rows)| {
            gemm_row_block(*i0, c_rows, n, k, a, b_pack);
        });
    };
    match b_stamp {
        Some(stamp) => PACK_CACHE.with(|cell| {
            let mut cache = cell.borrow_mut();
            let key = (stamp, b.trans);
            if !cache.map.contains_key(&key) {
                let (buf, off) = pack_b(b, k, n);
                if cache.elems + buf.len() > PACK_CACHE_CAP {
                    cache.map.clear();
                    cache.elems = 0;
                }
                cache.elems += buf.len();
                cache.map.insert(key, (buf, off));
            }
            let (buf, off) = &cache.map[&key];
            run(&mut out, &buf[*off..]);
        }),
        None => {
            let (b_buf, b_off) = pack_b(b, k, n);
            run(&mut out, &b_buf[b_off..]);
            arena::release_scratch(n.div_ceil(NR) * k * NR, b_buf);
        }
    }
    out
}

/// `C = A · B`.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_in(KernelPool::shared_serial(), a, b)
}

/// `C = A · B` on a worker pool.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul_in(pool: &KernelPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    gemm(
        pool,
        a.rows(),
        b.cols(),
        a.cols(),
        View::normal(a),
        View::normal(b),
        Some(b.stamp()),
    )
}

/// Input gradient of a matmul: `dA = dC · Bᵀ`.
///
/// # Panics
///
/// Panics if column counts disagree.
pub fn matmul_dgrad(dc: &Tensor, b: &Tensor) -> Tensor {
    matmul_dgrad_in(KernelPool::shared_serial(), dc, b)
}

/// Input gradient of a matmul on a worker pool: `dA = dC · Bᵀ`, with the
/// transpose absorbed by packing (no `Bᵀ` temporary).
///
/// # Panics
///
/// Panics if column counts disagree.
pub fn matmul_dgrad_in(pool: &KernelPool, dc: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(dc.cols(), b.cols(), "dgrad dimension mismatch");
    gemm(
        pool,
        dc.rows(),
        b.rows(),
        dc.cols(),
        View::normal(dc),
        View::transposed(b),
        Some(b.stamp()),
    )
}

/// Weight gradient of a matmul: `dB = Aᵀ · dC`.
///
/// # Panics
///
/// Panics if row counts disagree.
pub fn matmul_wgrad(a: &Tensor, dc: &Tensor) -> Tensor {
    matmul_wgrad_in(KernelPool::shared_serial(), a, dc)
}

/// Weight gradient of a matmul on a worker pool: `dB = Aᵀ · dC`, with the
/// transpose absorbed by packing (no `Aᵀ` temporary).
///
/// # Panics
///
/// Panics if row counts disagree.
pub fn matmul_wgrad_in(pool: &KernelPool, a: &Tensor, dc: &Tensor) -> Tensor {
    assert_eq!(a.rows(), dc.rows(), "wgrad dimension mismatch");
    gemm(
        pool,
        a.cols(),
        dc.cols(),
        a.rows(),
        View::transposed(a),
        View::normal(dc),
        None,
    )
}

/// [`matmul_in`] with the pack cache bypassed: for `B` operands that are
/// activations (fresh stamp every call), where caching the pack would
/// only grow the cache until its overflow clear evicts the weight packs
/// that *are* reused.
pub(crate) fn matmul_uncached_in(pool: &KernelPool, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    gemm(
        pool,
        a.rows(),
        b.cols(),
        a.cols(),
        View::normal(a),
        View::normal(b),
        None,
    )
}

/// [`matmul_dgrad_in`] (`dC · Bᵀ`) with the pack cache bypassed — same
/// rationale as [`matmul_uncached_in`].
pub(crate) fn matmul_dgrad_uncached_in(pool: &KernelPool, dc: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(dc.cols(), b.cols(), "dgrad dimension mismatch");
    gemm(
        pool,
        dc.rows(),
        b.rows(),
        dc.cols(),
        View::normal(dc),
        View::transposed(b),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};
    use crate::ops::naive;

    fn finite_diff_check(
        f: &dyn Fn(&Tensor) -> f32,
        x: &Tensor,
        analytic: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.at(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.at(r, c) - eps);
                let num = (f(&xp) - f(&xm)) / (2.0 * eps);
                let ana = analytic.at(r, c);
                assert!(
                    (num - ana).abs() < tol,
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn small_matmul_is_exact() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kernel_matches_naive_at_awkward_shapes() {
        // Shapes straddling every blocking boundary: below MR/NR, exact
        // multiples, one past MC and KC.
        let shapes = [
            (1, 1, 1),
            (5, 7, 3),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 1),
            (MC, 2 * NR, KC),
            (MC + 1, NR - 1, 2 * KC + 3),
            (2 * MC + 5, 3 * NR + 2, 17),
        ];
        for (m, k, n) in shapes {
            let mut r = rng((m * 31 + k * 7 + n) as u64);
            let a = uniform(m, k, 1.0, &mut r);
            let b = uniform(k, n, 1.0, &mut r);
            let dc = uniform(m, n, 1.0, &mut r);
            assert!(
                matmul(&a, &b).max_abs_diff(&naive::matmul(&a, &b)) < 1e-5,
                "fwd mismatch at {m}x{k}x{n}"
            );
            assert!(
                matmul_dgrad(&dc, &b).max_abs_diff(&naive::matmul_dgrad(&dc, &b)) < 1e-5,
                "dgrad mismatch at {m}x{k}x{n}"
            );
            assert!(
                matmul_wgrad(&a, &dc).max_abs_diff(&naive::matmul_wgrad(&a, &dc)) < 1e-5,
                "wgrad mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn multi_worker_is_bit_identical_to_serial() {
        let mut r = rng(99);
        // Big enough to clear the (test-shrunk) break-even floor, so the
        // parallel path really runs.
        let a = uniform(3 * MC + 7, 100, 1.0, &mut r);
        let b = uniform(100, 37, 1.0, &mut r);
        let serial = matmul(&a, &b);
        for workers in [2, 3, 4] {
            let pool = KernelPool::new(workers);
            let par = matmul_in(&pool, &a, &b);
            assert_eq!(pool.parallel_dispatches(), 1, "expected a fan-out");
            assert_eq!(
                serial.data(),
                par.data(),
                "worker count {workers} changed bits"
            );
        }
    }

    #[test]
    fn below_break_even_matmul_ignores_the_pool() {
        // 100 rows make three row blocks, but only ~3e3 FLOPs — far
        // below the floor, so the pool must not spawn workers and the
        // result must still be right.
        let mut r = rng(7);
        let a = uniform(100, 4, 1.0, &mut r);
        let b = uniform(4, 4, 1.0, &mut r);
        let pool = KernelPool::new(4);
        let c = matmul_in(&pool, &a, &b);
        assert_eq!(pool.parallel_dispatches(), 0, "tiny GEMM fanned out");
        assert!(c.max_abs_diff(&naive::matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn dgrad_matches_finite_differences() {
        let mut r = rng(3);
        let a = uniform(3, 4, 1.0, &mut r);
        let b = uniform(4, 2, 1.0, &mut r);
        // Scalar objective: sum of C.
        let loss = |a: &Tensor| matmul(a, &b).data().iter().sum::<f32>();
        let dc = Tensor::from_vec(3, 2, vec![1.0; 6]);
        let da = matmul_dgrad(&dc, &b);
        finite_diff_check(&loss, &a, &da, 1e-3, 1e-2);
    }

    #[test]
    fn wgrad_matches_finite_differences() {
        let mut r = rng(4);
        let a = uniform(3, 4, 1.0, &mut r);
        let b = uniform(4, 2, 1.0, &mut r);
        let loss = |b: &Tensor| matmul(&a, b).data().iter().sum::<f32>();
        let dc = Tensor::from_vec(3, 2, vec![1.0; 6]);
        let db = matmul_wgrad(&a, &dc);
        finite_diff_check(&loss, &b, &db, 1e-3, 1e-2);
    }

    #[test]
    fn wgrad_sums_over_row_slices() {
        // The slice-equivalence property MEPipe relies on: the weight
        // gradient over a whole batch equals the sum over token slices.
        let mut r = rng(5);
        let a = uniform(8, 4, 1.0, &mut r);
        let dc = uniform(8, 3, 1.0, &mut r);
        let whole = matmul_wgrad(&a, &dc);
        let mut parts = matmul_wgrad(&a.slice_rows(0, 3), &dc.slice_rows(0, 3));
        parts.add_assign(&matmul_wgrad(&a.slice_rows(3, 5), &dc.slice_rows(3, 5)));
        assert!(whole.max_abs_diff(&parts) < 1e-5);
    }

    #[test]
    fn empty_inner_dimension_gives_zeros() {
        let c = matmul(&Tensor::zeros(3, 0), &Tensor::zeros(0, 4));
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 4);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(2, 3), &Tensor::zeros(2, 3));
    }
}
