//! Matrix multiplication and its two gradient halves.
//!
//! For `C = A · B` with `A: [m,k]` (activations) and `B: [k,n]` (weights):
//!
//! * the *input gradient* `dA = dC · Bᵀ` is on the pipeline's critical
//!   path (it feeds the previous layer / previous stage);
//! * the *weight gradient* `dB = Aᵀ · dC` has no consumers until the
//!   optimizer step and can float — this is the GEMM MEPipe queues and
//!   drains opportunistically (Section 5).

use crate::tensor::Tensor;

/// `C = A · B`.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    // i-k-j loop order keeps the inner loop contiguous over both B and C.
    for i in 0..m {
        for p in 0..k {
            let aip = a.at(i, p);
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = out.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    out
}

/// Input gradient of a matmul: `dA = dC · Bᵀ`.
pub fn matmul_dgrad(dc: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(dc.cols(), b.cols(), "dgrad dimension mismatch");
    let (m, n, k) = (dc.rows(), dc.cols(), b.rows());
    let mut da = Tensor::zeros(m, k);
    for i in 0..m {
        for p in 0..k {
            let brow = b.row(p);
            let dcrow = dc.row(i);
            let mut acc = 0.0;
            for j in 0..n {
                acc += dcrow[j] * brow[j];
            }
            da.set(i, p, acc);
        }
    }
    da
}

/// Weight gradient of a matmul: `dB = Aᵀ · dC`.
pub fn matmul_wgrad(a: &Tensor, dc: &Tensor) -> Tensor {
    assert_eq!(a.rows(), dc.rows(), "wgrad dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), dc.cols());
    let mut db = Tensor::zeros(k, n);
    for i in 0..m {
        let arow = a.row(i);
        let dcrow = dc.row(i);
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let dbrow = db.row_mut(p);
            for j in 0..n {
                dbrow[j] += aip * dcrow[j];
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    fn finite_diff_check(
        f: &dyn Fn(&Tensor) -> f32,
        x: &Tensor,
        analytic: &Tensor,
        eps: f32,
        tol: f32,
    ) {
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.at(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.at(r, c) - eps);
                let num = (f(&xp) - f(&xm)) / (2.0 * eps);
                let ana = analytic.at(r, c);
                assert!(
                    (num - ana).abs() < tol,
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn small_matmul_is_exact() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn dgrad_matches_finite_differences() {
        let mut r = rng(3);
        let a = uniform(3, 4, 1.0, &mut r);
        let b = uniform(4, 2, 1.0, &mut r);
        // Scalar objective: sum of C.
        let loss = |a: &Tensor| matmul(a, &b).data().iter().sum::<f32>();
        let dc = Tensor::from_vec(3, 2, vec![1.0; 6]);
        let da = matmul_dgrad(&dc, &b);
        finite_diff_check(&loss, &a, &da, 1e-3, 1e-2);
    }

    #[test]
    fn wgrad_matches_finite_differences() {
        let mut r = rng(4);
        let a = uniform(3, 4, 1.0, &mut r);
        let b = uniform(4, 2, 1.0, &mut r);
        let loss = |b: &Tensor| matmul(&a, b).data().iter().sum::<f32>();
        let dc = Tensor::from_vec(3, 2, vec![1.0; 6]);
        let db = matmul_wgrad(&a, &dc);
        finite_diff_check(&loss, &b, &db, 1e-3, 1e-2);
    }

    #[test]
    fn wgrad_sums_over_row_slices() {
        // The slice-equivalence property MEPipe relies on: the weight
        // gradient over a whole batch equals the sum over token slices.
        let mut r = rng(5);
        let a = uniform(8, 4, 1.0, &mut r);
        let dc = uniform(8, 3, 1.0, &mut r);
        let whole = matmul_wgrad(&a, &dc);
        let mut parts = matmul_wgrad(&a.slice_rows(0, 3), &dc.slice_rows(0, 3));
        parts.add_assign(&matmul_wgrad(&a.slice_rows(3, 5), &dc.slice_rows(3, 5)));
        assert!(whole.max_abs_diff(&parts) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(2, 3), &Tensor::zeros(2, 3));
    }
}
