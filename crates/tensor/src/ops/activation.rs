//! SiLU (swish) activation — the gate nonlinearity of Llama's SwiGLU MLP.

use crate::{ops::vecops::fast_exp, tensor::Tensor};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// Element-wise `silu(x) = x * sigmoid(x)`.
pub fn silu(x: &Tensor) -> Tensor {
    let mut out = Tensor::uninit(x.rows(), x.cols());
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = v * sigmoid(v);
    }
    out
}

/// Backward of [`silu`] given upstream `dy` and the saved input `x`.
pub fn silu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(x.rows(), dy.rows());
    assert_eq!(x.cols(), dy.cols());
    let mut out = Tensor::uninit(x.rows(), x.cols());
    for ((o, &v), &g) in out.data_mut().iter_mut().zip(x.data()).zip(dy.data()) {
        let s = sigmoid(v);
        *o = g * (s + v * s * (1.0 - s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn silu_values() {
        let x = Tensor::from_vec(1, 3, vec![0.0, 10.0, -10.0]);
        let y = silu(&x);
        assert_eq!(y.at(0, 0), 0.0);
        assert!((y.at(0, 1) - 10.0).abs() < 1e-3);
        assert!(y.at(0, 2).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut r = rng(21);
        let x = uniform(2, 6, 2.0, &mut r);
        let dy = Tensor::from_vec(2, 6, vec![1.0; 12]);
        let dx = silu_backward(&dy, &x);
        let eps = 1e-3;
        for rr in 0..2 {
            for c in 0..6 {
                let mut xp = x.clone();
                xp.set(rr, c, x.at(rr, c) + eps);
                let mut xm = x.clone();
                xm.set(rr, c, x.at(rr, c) - eps);
                let num = (silu(&xp).data().iter().sum::<f32>()
                    - silu(&xm).data().iter().sum::<f32>())
                    / (2.0 * eps);
                assert!((num - dx.at(rr, c)).abs() < 1e-2);
            }
        }
    }
}
