//! Tensor operations with explicit forward and backward functions.
//!
//! Each module pairs a forward with the backward(s) it needs. Matmul
//! deliberately exposes its input-gradient and weight-gradient halves as
//! separate functions — the decomposition MEPipe schedules independently.

pub mod activation;
pub mod attention;
pub mod embedding;
pub mod loss;
pub mod matmul;
pub mod norm;

pub use activation::{silu, silu_backward};
pub use attention::{causal_attention, causal_attention_backward, AttentionSaved};
pub use embedding::{embedding, embedding_backward};
pub use loss::{cross_entropy, CrossEntropyOut};
pub use matmul::{matmul, matmul_dgrad, matmul_wgrad};
pub use norm::{rmsnorm, rmsnorm_backward, RmsNormSaved};
