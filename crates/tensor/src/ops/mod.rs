//! Tensor operations with explicit forward and backward functions.
//!
//! Each module pairs a forward with the backward(s) it needs. Matmul
//! deliberately exposes its input-gradient and weight-gradient halves as
//! separate functions — the decomposition MEPipe schedules independently.

pub mod activation;
pub mod attention;
pub mod embedding;
pub mod loss;
pub mod matmul;
pub mod naive;
pub mod norm;
mod vecops;

pub use activation::{silu, silu_backward};
pub use attention::{
    causal_attention, causal_attention_backward, causal_attention_backward_in, causal_attention_in,
    AttentionSaved,
};
pub use embedding::{embedding, embedding_backward};
pub use loss::{cross_entropy, cross_entropy_in, CrossEntropyOut};
pub use matmul::{matmul, matmul_dgrad, matmul_dgrad_in, matmul_in, matmul_wgrad, matmul_wgrad_in};
pub use norm::{rmsnorm, rmsnorm_backward, rmsnorm_backward_in, rmsnorm_in, RmsNormSaved};
