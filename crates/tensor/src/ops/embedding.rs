//! Token-embedding lookup with gradient accumulation into the table.

use crate::tensor::Tensor;

/// Gathers rows of `table` (`[vocab, h]`) for `tokens`, plus a fixed
/// sinusoidal positional term at absolute positions
/// `offset..offset + tokens.len()` (slices must agree with full-sequence
/// execution, hence the offset).
///
/// # Panics
///
/// Panics if any token id is out of range.
pub fn embedding(table: &Tensor, tokens: &[usize], offset: usize) -> Tensor {
    let h = table.cols();
    let mut out = Tensor::zeros(tokens.len(), h);
    for (i, &tok) in tokens.iter().enumerate() {
        assert!(tok < table.rows(), "token id {tok} out of vocab");
        let row = out.row_mut(i);
        row.copy_from_slice(table.row(tok));
        let pos = (offset + i) as f32;
        for (c, v) in row.iter_mut().enumerate() {
            // Alternating sin/cos positional signal (fixed, not learned).
            let freq = 1.0 / 10_000f32.powf((2 * (c / 2)) as f32 / h as f32);
            *v += if c % 2 == 0 {
                (pos * freq).sin()
            } else {
                (pos * freq).cos()
            } * 0.1;
        }
    }
    out
}

/// Backward of [`embedding`]: scatter-adds `dout` rows into a zeroed
/// gradient table (positional term is constant, so it contributes
/// nothing).
pub fn embedding_backward(dout: &Tensor, tokens: &[usize], vocab: usize) -> Tensor {
    let mut grad = Tensor::zeros(vocab, dout.cols());
    for (i, &tok) in tokens.iter().enumerate() {
        let g = dout.row(i);
        let row = grad.row_mut(tok);
        for (a, b) in row.iter_mut().zip(g) {
            *a += b;
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn lookup_respects_offset() {
        let table = uniform(10, 4, 1.0, &mut rng(41));
        let full = embedding(&table, &[1, 2, 3, 4], 0);
        let a = embedding(&table, &[1, 2], 0);
        let b = embedding(&table, &[3, 4], 2);
        assert!(full.slice_rows(0, 2).max_abs_diff(&a) < 1e-7);
        assert!(full.slice_rows(2, 2).max_abs_diff(&b) < 1e-7);
        // Same token at different positions differs (positional term).
        let c = embedding(&table, &[1], 0);
        let d = embedding(&table, &[1], 5);
        assert!(c.max_abs_diff(&d) > 1e-4);
    }

    #[test]
    fn backward_accumulates_repeats() {
        let dout = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let grad = embedding_backward(&dout, &[7, 7, 2], 10);
        assert_eq!(grad.row(7), &[4.0, 6.0]);
        assert_eq!(grad.row(2), &[5.0, 6.0]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_token_panics() {
        let table = Tensor::zeros(4, 2);
        embedding(&table, &[4], 0);
    }
}
