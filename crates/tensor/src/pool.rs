//! The kernel worker pool: row-block data parallelism for tensor kernels.
//!
//! A [`KernelPool`] is a cheap, cloneable handle describing how many
//! workers a kernel may fan out over. Kernels hand it a list of disjoint
//! mutable work items (typically row blocks of the output tensor) and a
//! closure; the pool runs the closure over every item, splitting the item
//! list into contiguous spans across `std::thread::scope` workers.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism across worker counts.** Work is chunked by a *fixed
//!    grain* chosen by each kernel, never by the worker count, and
//!    per-chunk partial results are reduced in chunk-index order. A kernel
//!    therefore produces bit-identical output on 1 worker and on 8 — the
//!    property the gradient-equivalence tests rely on.
//! 2. **Safe nesting under the pipeline runtime.** Workers are spawned
//!    with [`std::thread::scope`] per kernel invocation, so borrowed
//!    operands need no `'static` bound and a pool used *inside* a
//!    per-stage pipeline thread cannot outlive or deadlock against it.
//!    The handle itself is the persistent, shared object: create one per
//!    stage and pass it through every op. The spawn cost (tens of
//!    microseconds) is amortised over kernel bodies that run for
//!    milliseconds; single-item or single-worker calls run inline and
//!    spawn nothing.
//! 3. **Oversubscription control.** The runtime composes stage-level and
//!    kernel-level parallelism as `stages × workers_per_pool` threads;
//!    [`KernelPool::auto`] divides the machine's parallelism by the
//!    caller's stage count so the product never exceeds the core count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    workers: usize,
    /// How many `for_each` calls actually fanned out over threads —
    /// observability for tests and the profiler.
    parallel_dispatches: AtomicUsize,
}

/// Shared handle to a kernel worker pool. Clones share the same
/// configuration and dispatch counters.
#[derive(Debug, Clone)]
pub struct KernelPool(Arc<Inner>);

impl Default for KernelPool {
    fn default() -> Self {
        Self::serial()
    }
}

impl KernelPool {
    /// A pool fanning out over `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        KernelPool(Arc::new(Inner {
            workers: workers.max(1),
            parallel_dispatches: AtomicUsize::new(0),
        }))
    }

    /// The single-threaded pool: every kernel runs inline on the caller's
    /// thread. This is the default everywhere a pool is not plumbed in.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized for one of `stages` concurrent pipeline stage threads:
    /// `available_parallelism / stages`, at least 1, so stage-level and
    /// kernel-level parallelism compose without oversubscription.
    pub fn auto(stages: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(cores / stages.max(1))
    }

    /// The process-wide single-threaded pool — what the pool-less op
    /// entry points (`matmul(a, b)` etc.) run on without allocating a
    /// fresh handle per call.
    pub fn shared_serial() -> &'static KernelPool {
        static POOL: std::sync::OnceLock<KernelPool> = std::sync::OnceLock::new();
        POOL.get_or_init(KernelPool::serial)
    }

    /// Worker count this pool fans out over.
    pub fn workers(&self) -> usize {
        self.0.workers
    }

    /// Number of `for_each` calls that spawned scoped worker threads.
    pub fn parallel_dispatches(&self) -> usize {
        self.0.parallel_dispatches.load(Ordering::Relaxed)
    }

    /// Runs `f(chunk_index, item)` over every item, returning the results
    /// in item order.
    ///
    /// Items are distributed as contiguous spans across at most
    /// `workers()` scoped threads; within a span they run in index order.
    /// Because the closure sees the same `(index, item)` pairs regardless
    /// of the worker count, any per-item computation — and any reduction
    /// the caller performs over the ordered results — is bit-identical
    /// across worker counts.
    pub fn for_each<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let w = self.0.workers.min(n);
        if w <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        self.0.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
        // Split into `w` contiguous spans; span s covers
        // [s*base + min(s, rem), ...) so sizes differ by at most one.
        let base = n / w;
        let rem = n % w;
        let mut spans: Vec<(usize, &mut [T])> = Vec::with_capacity(w);
        let mut rest = items;
        let mut start = 0;
        for s in 0..w {
            let len = base + usize::from(s < rem);
            let (head, tail) = rest.split_at_mut(len);
            spans.push((start, head));
            start += len;
            rest = tail;
        }
        let f = &f;
        let mut per_span: Vec<Vec<R>> = Vec::with_capacity(w);
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|(first, span)| {
                    scope.spawn(move || {
                        span.iter_mut()
                            .enumerate()
                            .map(|(i, item)| f(first + i, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                per_span.push(h.join().expect("kernel worker panicked"));
            }
        });
        per_span.into_iter().flatten().collect()
    }
}

/// Splits a flat row-major buffer into `(first_row, rows)` blocks of at
/// most `grain` rows — the standard work-item list for row-parallel
/// kernels. The grain must not depend on the worker count, or determinism
/// across worker counts is lost.
pub fn row_blocks(data: &mut [f32], cols: usize, grain: usize) -> Vec<(usize, &mut [f32])> {
    assert!(grain > 0, "row grain must be positive");
    if cols == 0 {
        return Vec::new();
    }
    data.chunks_mut(grain * cols)
        .enumerate()
        .map(|(i, chunk)| (i * grain, chunk))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_preserves_item_order() {
        let pool = KernelPool::new(3);
        let mut items: Vec<usize> = (0..10).collect();
        let out = pool.for_each(&mut items, |i, item| {
            *item += 100;
            i * 2
        });
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(items, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_runs_inline_without_dispatch() {
        let pool = KernelPool::serial();
        let mut items = vec![0u32; 8];
        pool.for_each(&mut items, |_, item| *item = 1);
        assert_eq!(pool.parallel_dispatches(), 0);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn parallel_pool_dispatches_threads() {
        let pool = KernelPool::new(4);
        let mut items = vec![0u32; 8];
        pool.for_each(&mut items, |i, item| *item = i as u32);
        assert_eq!(pool.parallel_dispatches(), 1);
        assert_eq!(items, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // The determinism contract: same items, same results, any workers.
        let run = |workers: usize| {
            let pool = KernelPool::new(workers);
            let mut items: Vec<(usize, Vec<f32>)> =
                (0..7).map(|i| (i, vec![i as f32; 5])).collect();
            pool.for_each(&mut items, |idx, (first, block)| {
                for x in block.iter_mut() {
                    *x += idx as f32;
                }
                *first * 3
            })
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn row_blocks_cover_everything_once() {
        let mut data = vec![0.0f32; 7 * 3];
        let blocks = row_blocks(&mut data, 3, 2);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].0, 0);
        assert_eq!(blocks[3].0, 6);
        assert_eq!(blocks[3].1.len(), 3);
        let total: usize = blocks.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn auto_pool_divides_by_stage_count() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(KernelPool::auto(1).workers(), cores.max(1));
        assert!(KernelPool::auto(cores * 2).workers() >= 1);
    }
}
