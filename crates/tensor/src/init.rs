//! Deterministic parameter and data initialisation.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::tensor::Tensor;

/// Uniform initialisation in `[-scale, scale]` from a seeded generator.
pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-scale..=scale))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot-style initialisation for a `[fan_in, fan_out]` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, scale, rng)
}

/// A fresh deterministic generator.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A deterministic synthetic token stream in `[0, vocab)` — the stand-in
/// for the paper's tokenised OpenWebText shard (throughput experiments are
/// insensitive to token content).
pub fn synthetic_tokens(count: usize, vocab: usize, seed: u64) -> Vec<usize> {
    let mut r = rng(seed);
    // Zipf-flavoured skew: squaring a uniform sample biases toward low ids,
    // mimicking natural-language token frequency without a lookup table.
    (0..count)
        .map(|_| {
            let u: f64 = r.gen::<f64>();
            ((u * u) * vocab as f64) as usize % vocab
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = uniform(4, 4, 1.0, &mut rng(7));
        let b = uniform(4, 4, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(4, 4, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut r = rng(1);
        let big = xavier(4096, 4096, &mut r);
        assert!(big.data().iter().all(|x| x.abs() < 0.05));
    }

    #[test]
    fn tokens_in_range_and_skewed() {
        let toks = synthetic_tokens(10_000, 100, 42);
        assert!(toks.iter().all(|&t| t < 100));
        let low = toks.iter().filter(|&&t| t < 50).count();
        assert!(low > 6_000, "expected low-id skew, got {low}");
        assert_eq!(toks, synthetic_tokens(10_000, 100, 42));
    }
}
