//! A minimal multiplicative hasher for the crate's internal maps.
//!
//! The arena free lists and the packed-operand cache key on tiny fixed
//! keys — shape pairs and snapshot stamps — and are probed on every
//! tensor acquire/release, tens of thousands of times per training
//! iteration. `std`'s default SipHash is DoS-resistant but ~10× slower
//! than needed for keys that never come from untrusted input; this
//! hasher is one multiply and one xor-shift per word, in the spirit of
//! the multiplicative hashers common in compiler workloads.

use std::hash::{BuildHasherDefault, Hasher};

/// One-multiply-per-word hasher for small trusted keys.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

/// `BuildHasher` plugging [`FastHasher`] into `HashMap`.
pub(crate) type FastBuild = BuildHasherDefault<FastHasher>;

const MUL: u64 = 0xd6e8_feb8_6659_fd93;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy keys spread over the table bits.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(MUL);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(MUL);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_round_trip() {
        let mut m: HashMap<(usize, usize), u32, FastBuild> = HashMap::default();
        for r in 0..50 {
            for c in 0..50 {
                m.insert((r, c), (r * 100 + c) as u32);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m[&(13, 37)], 1337);
    }

    #[test]
    fn shape_keys_spread() {
        // Typical keys are small round shapes; the avalanche must keep
        // them from colliding into a handful of buckets.
        let hashes: std::collections::HashSet<u64> = (1..64usize)
            .flat_map(|r| (1..64usize).map(move |c| (r, c)))
            .map(|(r, c)| {
                let mut h = FastHasher::default();
                h.write_usize(r);
                h.write_usize(c);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 63 * 63);
    }
}
