//! The shape-keyed tensor arena: a free-list buffer pool that makes the
//! steady-state training iteration (near-)allocation-free.
//!
//! Every tensor the pipeline runtime creates per iteration — activations,
//! saved state, dKV accumulators, weight-gradient operands, GEMM packing
//! scratch — has a shape that recurs exactly on the next iteration. The
//! arena exploits that: buffers are kept on per-shape free lists
//! ("shelves") and handed back out on the next request for the same
//! shape, 64-byte-aligned and re-zeroed, so after one warmup iteration
//! the allocator is out of the hot path entirely.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero synchronization on the hot path.** An arena is installed
//!    into thread-local storage for the duration of a stage's run
//!    ([`TensorArena::install`]); acquire and release are plain
//!    `RefCell` + `HashMap` operations, no atomics, no locks. Each
//!    pipeline stage owns its own instance — pooling never crosses a
//!    thread.
//! 2. **Value transparency.** A recycled buffer is re-zeroed before it
//!    leaves the arena, so [`Tensor::zeros`] returns bit-identical
//!    contents whether or not an arena is installed — pooled and
//!    fresh-allocation runs produce exactly the same results.
//! 3. **Observability.** Hit/miss/recycle counters are exposed via
//!    [`ArenaStats`] so tests can assert the steady-state hit rate and
//!    the bench can record it.
//!
//! Ownership rules (see DESIGN.md "Tensor arena"): a pooled buffer
//! belongs to whichever thread drops the tensor. Tensors sent across
//! stage channels are plain owned values — the *receiving* stage's arena
//! recycles them, which is safe because shapes crossing a given channel
//! also recur per iteration.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::hash::FastBuild;

use crate::tensor::Tensor;

/// Alignment every arena buffer is placed on, in bytes.
const ALIGN: usize = 64;
/// Spare `f32` slots allocated past the payload so the aligned offset
/// always fits: `64 / size_of::<f32>()`.
const PAD: usize = ALIGN / std::mem::size_of::<f32>();
/// Free-list depth per shape; buffers beyond this are simply freed so a
/// pathological shape mix cannot hold unbounded memory.
const SHELF_CAP: usize = 64;

/// Hit/miss/recycle counters of one arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Acquisitions served from a free list.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh memory.
    pub misses: u64,
    /// Buffers returned to a free list.
    pub recycled: u64,
}

impl ArenaStats {
    /// Fraction of acquisitions served from the pool (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same arena.
    #[must_use]
    pub fn since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            recycled: self.recycled - earlier.recycled,
        }
    }

    /// Element-wise sum — used to merge per-stage or per-replica stats.
    #[must_use]
    pub fn merged(&self, other: &ArenaStats) -> ArenaStats {
        ArenaStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            recycled: self.recycled + other.recycled,
        }
    }
}

/// The free lists plus counters; lives either inside a [`TensorArena`]
/// handle or, while installed, in the thread-local slot.
#[derive(Debug, Default)]
struct Shelves {
    /// Tensor buffers keyed by `(rows, cols)`.
    by_shape: HashMap<(usize, usize), Vec<Vec<f32>>, FastBuild>,
    /// Kernel packing scratch keyed by element count.
    scratch: HashMap<usize, Vec<Vec<f32>>, FastBuild>,
    hits: u64,
    misses: u64,
    recycled: u64,
}

/// Element offset that puts `buf[off]` on a 64-byte boundary (capped so
/// `off + payload` always stays inside an allocation with `PAD` spare).
fn align_off(buf: &[f32]) -> usize {
    buf.as_ptr().align_offset(ALIGN).min(PAD)
}

impl Shelves {
    /// A zero-filled (or, with `zero == false`, arbitrary-content)
    /// aligned buffer of `rows * cols` payload elements plus its offset.
    fn acquire(&mut self, rows: usize, cols: usize, zero: bool) -> (Vec<f32>, usize) {
        let n = rows * cols;
        if let Some(mut buf) = self
            .by_shape
            .get_mut(&(rows, cols))
            .and_then(|shelf| shelf.pop())
        {
            let off = align_off(&buf);
            debug_assert!(off + n <= buf.len(), "shelved buffer too small");
            self.hits += 1;
            if zero {
                buf[off..off + n].fill(0.0);
            }
            return (buf, off);
        }
        self.misses += 1;
        let buf = vec![0.0f32; n + PAD];
        let off = align_off(&buf);
        (buf, off)
    }

    /// Returns a buffer to its shape's free list, normalising its length
    /// so any future aligned offset fits.
    fn release(&mut self, rows: usize, cols: usize, mut buf: Vec<f32>) {
        let n = rows * cols;
        if n == 0 {
            return;
        }
        let shelf = self.by_shape.entry((rows, cols)).or_default();
        if shelf.len() >= SHELF_CAP {
            return;
        }
        if buf.len() < n + PAD {
            buf.resize(n + PAD, 0.0);
        }
        self.recycled += 1;
        shelf.push(buf);
    }

    fn acquire_scratch(&mut self, len: usize) -> (Vec<f32>, usize) {
        if let Some(mut buf) = self.scratch.get_mut(&len).and_then(|s| s.pop()) {
            let off = align_off(&buf);
            debug_assert!(off + len <= buf.len(), "shelved scratch too small");
            self.hits += 1;
            buf[off..off + len].fill(0.0);
            return (buf, off);
        }
        self.misses += 1;
        let buf = vec![0.0f32; len + PAD];
        let off = align_off(&buf);
        (buf, off)
    }

    fn release_scratch(&mut self, len: usize, mut buf: Vec<f32>) {
        if len == 0 {
            return;
        }
        let shelf = self.scratch.entry(len).or_default();
        if shelf.len() >= SHELF_CAP {
            return;
        }
        if buf.len() < len + PAD {
            buf.resize(len + PAD, 0.0);
        }
        self.recycled += 1;
        shelf.push(buf);
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits,
            misses: self.misses,
            recycled: self.recycled,
        }
    }
}

thread_local! {
    /// The arena currently installed on this thread, if any.
    static INSTALLED: RefCell<Option<Shelves>> = const { RefCell::new(None) };
}

/// A shape-keyed free-list pool of tensor buffers.
///
/// Create one per pipeline stage and [`install`](Self::install) it for
/// the duration of a run; while installed, every [`Tensor::zeros`],
/// `Tensor::clone`, slice copy and kernel packing buffer on that thread
/// is served from (and returned to) the pool. The handle keeps the
/// warmed free lists between runs, which is what makes the *next*
/// iteration allocation-free.
#[derive(Debug, Default)]
pub struct TensorArena {
    /// `None` while the shelves are checked out into thread-local
    /// storage by an [`ArenaScope`].
    inner: Option<Shelves>,
}

impl TensorArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            inner: Some(Shelves::default()),
        }
    }

    /// Installs this arena on the current thread until the returned
    /// scope drops. While installed, tensor allocations on this thread
    /// are pooled; a previously installed arena (if any) is restored
    /// afterwards.
    ///
    /// # Panics
    ///
    /// Panics if this arena is already installed.
    pub fn install(&mut self) -> ArenaScope<'_> {
        let mine = self.inner.take().expect("arena already installed");
        let prev = INSTALLED.with(|slot| slot.replace(Some(mine)));
        ArenaScope { owner: self, prev }
    }

    /// Acquires a zeroed `[rows, cols]` tensor directly from this
    /// (uninstalled) arena — the explicit form of what `Tensor::zeros`
    /// does while the arena is installed. The backing buffer starts on a
    /// 64-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics while the arena is installed.
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Tensor {
        let shelves = self.inner.as_mut().expect("arena is installed");
        let (buf, off) = shelves.acquire(rows, cols, true);
        Tensor::from_pooled(rows, cols, off, buf)
    }

    /// Returns a tensor's buffer to this (uninstalled) arena's free
    /// list — the explicit form of what dropping the tensor does while
    /// the arena is installed.
    ///
    /// # Panics
    ///
    /// Panics while the arena is installed.
    pub fn release(&mut self, t: Tensor) {
        let shelves = self.inner.as_mut().expect("arena is installed");
        let (rows, cols, buf) = t.into_storage();
        shelves.release(rows, cols, buf);
    }

    /// Cumulative counters.
    ///
    /// # Panics
    ///
    /// Panics while the arena is installed (read before installing or
    /// after the scope drops).
    pub fn stats(&self) -> ArenaStats {
        self.inner.as_ref().expect("arena is installed").stats()
    }
}

/// RAII guard of an installed arena; restores the previous thread state
/// (and hands the shelves back to the owning [`TensorArena`]) on drop.
#[must_use = "the arena is only installed while the scope is alive"]
pub struct ArenaScope<'a> {
    owner: &'a mut TensorArena,
    prev: Option<Shelves>,
}

impl Drop for ArenaScope<'_> {
    fn drop(&mut self) {
        let mine = INSTALLED.with(|slot| slot.replace(self.prev.take()));
        self.owner.inner = mine;
    }
}

/// Pool allocation for `Tensor`: `Some((buffer, offset))` when an arena
/// is installed on this thread, `None` otherwise (caller allocates
/// plainly). With `zero`, the payload region is zero-filled.
pub(crate) fn acquire_raw(rows: usize, cols: usize, zero: bool) -> Option<(Vec<f32>, usize)> {
    INSTALLED.with(|slot| {
        slot.borrow_mut()
            .as_mut()
            .map(|shelves| shelves.acquire(rows, cols, zero))
    })
}

/// Returns a tensor buffer to the installed arena; `false` (buffer
/// dropped by the caller's `Vec` drop) when no arena is installed.
pub(crate) fn give_back(rows: usize, cols: usize, buf: Vec<f32>) -> bool {
    INSTALLED.with(|slot| match slot.borrow_mut().as_mut() {
        Some(shelves) => {
            shelves.release(rows, cols, buf);
            true
        }
        None => false,
    })
}

/// A zeroed, aligned scratch buffer of `len` elements (pooled when an
/// arena is installed, fresh otherwise) plus its aligned offset — used
/// by kernel packing routines.
pub(crate) fn acquire_scratch(len: usize) -> (Vec<f32>, usize) {
    INSTALLED.with(|slot| match slot.borrow_mut().as_mut() {
        Some(shelves) => shelves.acquire_scratch(len),
        None => {
            let buf = vec![0.0f32; len + PAD];
            let off = align_off(&buf);
            (buf, off)
        }
    })
}

/// Returns packing scratch to the installed arena (no-op when none is).
pub(crate) fn release_scratch(len: usize, buf: Vec<f32>) {
    INSTALLED.with(|slot| {
        if let Some(shelves) = slot.borrow_mut().as_mut() {
            shelves.release_scratch(len, buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_aligned_and_zeroed() {
        let mut arena = TensorArena::new();
        let t = arena.acquire(7, 9);
        assert_eq!((t.rows(), t.cols()), (7, 9));
        assert_eq!(t.data().as_ptr() as usize % ALIGN, 0);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert_eq!(arena.stats().misses, 1);
    }

    #[test]
    fn release_then_acquire_hits_and_rezeros() {
        let mut arena = TensorArena::new();
        let mut t = arena.acquire(3, 4);
        t.data_mut().fill(5.0);
        arena.release(t);
        let stats = arena.stats();
        assert_eq!((stats.hits, stats.misses, stats.recycled), (0, 1, 1));
        let t2 = arena.acquire(3, 4);
        assert!(t2.data().iter().all(|&x| x == 0.0), "buffer not re-zeroed");
        assert_eq!(arena.stats().hits, 1);
        assert_eq!(t2.data().as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn shapes_are_keyed_separately() {
        let mut arena = TensorArena::new();
        let a = arena.acquire(2, 6);
        arena.release(a);
        // Same element count, different shape: must miss.
        let _b = arena.acquire(3, 4);
        assert_eq!(arena.stats().hits, 0);
        assert_eq!(arena.stats().misses, 2);
        let _c = arena.acquire(2, 6);
        assert_eq!(arena.stats().hits, 1);
    }

    #[test]
    fn install_scope_pools_tensor_zeros_and_drop() {
        let mut arena = TensorArena::new();
        {
            let _scope = arena.install();
            let t = Tensor::zeros(4, 5);
            drop(t);
            let t2 = Tensor::zeros(4, 5);
            assert!(t2.data().iter().all(|&x| x == 0.0));
        }
        let stats = arena.stats();
        assert_eq!(stats.misses, 1, "first zeros allocates");
        assert_eq!(stats.hits, 1, "second zeros reuses the dropped buffer");
        assert!(stats.recycled >= 1);
    }

    #[test]
    fn scope_restores_previous_arena() {
        let mut outer = TensorArena::new();
        let mut inner = TensorArena::new();
        let outer_scope = outer.install();
        {
            let _inner_scope = inner.install();
            drop(Tensor::zeros(2, 2));
        }
        // Back on the outer arena: this drop lands on `outer`.
        drop(Tensor::zeros(9, 9));
        drop(outer_scope);
        assert_eq!(inner.stats().recycled, 1);
        assert_eq!(outer.stats().recycled, 1);
    }

    #[test]
    fn hit_rate_reaches_one_in_steady_state() {
        let mut arena = TensorArena::new();
        let warm = |arena: &mut TensorArena| {
            let _scope = arena.install();
            let a = Tensor::zeros(8, 8);
            let b = a.clone();
            drop(a);
            drop(b);
        };
        warm(&mut arena);
        let before = arena.stats();
        warm(&mut arena);
        let steady = arena.stats().since(&before);
        assert_eq!(steady.misses, 0, "steady state must not allocate");
        assert_eq!(steady.hit_rate(), 1.0);
    }

    #[test]
    fn shelf_cap_bounds_retention() {
        let mut arena = TensorArena::new();
        let tensors: Vec<Tensor> = (0..SHELF_CAP + 10).map(|_| arena.acquire(1, 3)).collect();
        for t in tensors {
            arena.release(t);
        }
        assert_eq!(arena.stats().recycled as usize, SHELF_CAP);
    }
}
