//! A small, deterministic CPU tensor library with explicit backward passes.
//!
//! This is the numerical substrate under the threaded pipeline runtime
//! (`mepipe-train`). Design constraints, in order:
//!
//! 1. **Deterministic** — identical inputs produce bit-identical outputs
//!    regardless of scheduling, so sliced pipeline execution can be checked
//!    for *exact* equality against single-device execution.
//! 2. **Explicit gradients** — every op ships its backward as a plain
//!    function; matmul exposes *separate* input-gradient and
//!    weight-gradient halves, the property MEPipe's fine-grained
//!    weight-gradient scheduling exploits (Section 5).
//! 3. **Slice-aware attention** — causal attention takes a query slice
//!    plus the key/value prefix of all preceding slices and produces
//!    gradients for the whole prefix, mirroring TeraPipe/MEPipe dataflow.
//! 4. **Explicit parallelism** — hot kernels run on a [`pool::KernelPool`]
//!    handle the caller plumbs in; the pool-less entry points stay
//!    single-threaded. Work is chunked by fixed grains and reduced in
//!    chunk order, so outputs are bit-identical across worker counts and
//!    determinism survives kernel-level parallelism.
//!
//! The hot ops (matmul and its gradient halves, attention, RMSNorm,
//! cross-entropy) are cache-blocked, panel-packed and written for the
//! autovectorizer; the original scalar loops live on in
//! [`ops::naive`] purely as the parity/bench reference.
//!
//! No unsafe code, f32 throughout.
#![warn(missing_docs)]

pub mod arena;
mod hash;
pub mod init;
pub mod ops;
pub mod pool;
pub mod tensor;
pub mod wire;

pub use arena::{ArenaStats, TensorArena};
pub use pool::KernelPool;
pub use tensor::Tensor;
pub use wire::{bf16_to_f32, f32_to_bf16, WireError, BF16_MAX_REL_ERR, LOSSY_MAX_REL_ERR};
