//! The dense row-major 2-D tensor type.
//!
//! Everything in the mini-Llama is a matrix of shape `[rows, cols]`
//! (tokens × features, or features × features for weights), so the tensor
//! type is deliberately 2-D; vectors are `[1, n]` or `[n, 1]` as
//! convenient.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

impl Tensor {
    /// An all-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One element.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.at(r, c));
            }
        }
        out
    }

    /// Copy of columns `[start, start + len)` — used to split heads out of
    /// a `[tokens, hidden]` activation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "column slice out of range");
        let mut out = Tensor::zeros(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Adds `src` into columns `[start, start + len)` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_cols(&mut self, start: usize, src: &Tensor) {
        assert!(start + src.cols <= self.cols, "column slice out of range");
        assert_eq!(self.rows, src.rows, "row mismatch");
        for r in 0..self.rows {
            let dst = &mut self.row_mut(r)[start..start + src.cols];
            for (d, s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// Copy of rows `[start, start + len)` — used to cut token slices.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "row slice out of range");
        Tensor::from_vec(
            len,
            self.cols,
            self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        )
    }

    /// Stacks tensors vertically (concatenating rows).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or the input is empty.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch in vstack");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Maximum absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Memory footprint in bytes (f32 payload only).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_vec(2, 3, (0..6).map(|x| x as f32).collect());
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().at(2, 1), t.at(1, 2));
    }

    #[test]
    fn col_slicing_and_accumulation() {
        let t = Tensor::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
        let s = t.slice_cols(1, 2);
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
        let mut acc = Tensor::zeros(2, 4);
        acc.add_cols(1, &s);
        assert_eq!(acc.at(0, 1), 1.0);
        assert_eq!(acc.at(1, 2), 6.0);
        assert_eq!(acc.at(0, 0), 0.0);
    }

    #[test]
    fn row_slicing_and_stacking() {
        let t = Tensor::from_vec(4, 2, (0..8).map(|x| x as f32).collect());
        let a = t.slice_rows(0, 2);
        let b = t.slice_rows(2, 2);
        assert_eq!(Tensor::vstack(&[a, b]), t);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn arithmetic() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        assert_eq!(a.max_abs_diff(&b), 6.5);
    }
}
