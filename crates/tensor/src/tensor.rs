//! The dense row-major 2-D tensor type.
//!
//! Everything in the mini-Llama is a matrix of shape `[rows, cols]`
//! (tokens × features, or features × features for weights), so the tensor
//! type is deliberately 2-D; vectors are `[1, n]` or `[n, 1]` as
//! convenient.
//!
//! Storage is a `Vec<f32>` plus a start offset: when a tensor is served
//! by an installed [`crate::arena::TensorArena`], the buffer is slightly
//! over-allocated and `off` places the payload on a 64-byte boundary.
//! Dropping a tensor hands the buffer back to the arena (if one is
//! installed on the dropping thread); otherwise it frees normally. All
//! public accessors see only the `[off, off + rows * cols)` payload, so
//! pooling is invisible to callers and to results.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::arena;

/// Source of snapshot stamps. Never reused, so a stamp identifies one
/// immutable state of one tensor's payload for the life of the process.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn fresh_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// A dense row-major matrix of `f32`.
pub struct Tensor {
    rows: usize,
    cols: usize,
    /// Start of the payload inside `data` (0 for plain allocations,
    /// an alignment offset for arena-served buffers).
    off: usize,
    /// Snapshot id: re-issued on every mutable access, so equal stamps
    /// imply identical payloads. Keys derived caches (packed GEMM
    /// operands) that must go stale the moment a weight is updated.
    stamp: u64,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let n = self.rows * self.cols;
        if n > 0 {
            if let Some((mut data, off)) = arena::acquire_raw(self.rows, self.cols, false) {
                data[off..off + n].copy_from_slice(self.data());
                return Self {
                    rows: self.rows,
                    cols: self.cols,
                    off,
                    stamp: fresh_stamp(),
                    data,
                };
            }
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            off: 0,
            stamp: fresh_stamp(),
            data: self.data().to_vec(),
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data() == other.data()
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.data);
        // Recycles into the installed arena, or frees `buf` normally.
        arena::give_back(self.rows, self.cols, buf);
    }
}

impl Tensor {
    /// An all-zeros tensor (served from the installed arena, if any).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        if n > 0 {
            if let Some((data, off)) = arena::acquire_raw(rows, cols, true) {
                return Self {
                    rows,
                    cols,
                    off,
                    stamp: fresh_stamp(),
                    data,
                };
            }
        }
        Self {
            rows,
            cols,
            off: 0,
            stamp: fresh_stamp(),
            data: vec![0.0; n],
        }
    }

    /// Like [`zeros`](Self::zeros) but without the zero-fill — for
    /// internal use where every payload element is written before the
    /// tensor escapes.
    pub(crate) fn uninit(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        if n > 0 {
            if let Some((data, off)) = arena::acquire_raw(rows, cols, false) {
                return Self {
                    rows,
                    cols,
                    off,
                    stamp: fresh_stamp(),
                    data,
                };
            }
        }
        Self {
            rows,
            cols,
            off: 0,
            stamp: fresh_stamp(),
            data: vec![0.0; n],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self {
            rows,
            cols,
            off: 0,
            stamp: fresh_stamp(),
            data,
        }
    }

    /// Arena-internal constructor for a pooled buffer with an alignment
    /// offset.
    pub(crate) fn from_pooled(rows: usize, cols: usize, off: usize, data: Vec<f32>) -> Self {
        debug_assert!(off + rows * cols <= data.len());
        Self {
            rows,
            cols,
            off,
            stamp: fresh_stamp(),
            data,
        }
    }

    /// Arena-internal teardown: takes the raw buffer out without running
    /// the pooling `Drop`.
    pub(crate) fn into_storage(mut self) -> (usize, usize, Vec<f32>) {
        let buf = std::mem::take(&mut self.data);
        let (rows, cols) = (self.rows, self.cols);
        std::mem::forget(self);
        (rows, cols, buf)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data[self.off..self.off + self.rows * self.cols]
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.stamp = fresh_stamp();
        let n = self.rows * self.cols;
        &mut self.data[self.off..self.off + n]
    }

    /// The payload's snapshot id — changes on every mutable access, so
    /// two reads returning the same stamp saw the same bytes.
    pub(crate) fn stamp(&self) -> u64 {
        self.stamp
    }

    /// One element.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[self.off + r * self.cols + c]
    }

    /// Sets one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.stamp = fresh_stamp();
        self.data[self.off + r * self.cols + c] = v;
    }

    /// Borrow of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = self.off + r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        self.stamp = fresh_stamp();
        let start = self.off + r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in self.data_mut() {
            *a *= s;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::uninit(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.at(r, c));
            }
        }
        out
    }

    /// Copy of the rectangular block `[r0, r0 + rows) × [c0, c0 + cols)`
    /// — the one-copy form of `slice_rows(..).slice_cols(..)`, used to
    /// cut a head's key/value prefix out of a KV cache.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the tensor bounds.
    pub fn slice_block(&self, r0: usize, rows: usize, c0: usize, cols: usize) -> Tensor {
        assert!(r0 + rows <= self.rows, "row slice out of range");
        assert!(c0 + cols <= self.cols, "column slice out of range");
        let mut out = Tensor::uninit(rows, cols);
        for r in 0..rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r0 + r)[c0..c0 + cols]);
        }
        out
    }

    /// Copy of columns `[start, start + len)` — used to split heads out of
    /// a `[tokens, hidden]` activation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        self.slice_block(0, self.rows, start, len)
    }

    /// Adds `src` into columns `[start, start + len)` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_cols(&mut self, start: usize, src: &Tensor) {
        assert!(start + src.cols <= self.cols, "column slice out of range");
        assert_eq!(self.rows, src.rows, "row mismatch");
        for r in 0..self.rows {
            let dst = &mut self.row_mut(r)[start..start + src.cols];
            for (d, s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// Copy of rows `[start, start + len)` — used to cut token slices.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "row slice out of range");
        let mut out = Tensor::uninit(len, self.cols);
        out.data_mut()
            .copy_from_slice(&self.data()[start * self.cols..(start + len) * self.cols]);
        out
    }

    /// Appends the rows of `other` in place — the amortised-O(1) form of
    /// `vstack(&[self, other])`, used to grow KV caches slice by slice
    /// without recopying the whole prefix.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn append_rows(&mut self, other: &Tensor) {
        assert_eq!(self.cols, other.cols, "column mismatch in append_rows");
        self.stamp = fresh_stamp();
        let n = self.rows * self.cols;
        self.data.truncate(self.off + n);
        self.data.extend_from_slice(other.data());
        self.rows += other.rows;
    }

    /// Stacks tensors vertically (concatenating rows).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or the input is empty.
    pub fn vstack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Tensor::uninit(rows, cols);
        let mut at = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch in vstack");
            let n = p.rows * cols;
            out.data_mut()[at..at + n].copy_from_slice(p.data());
            at += n;
        }
        out
    }

    /// Maximum absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }

    /// Memory footprint in bytes (f32 payload only).
    pub fn bytes(&self) -> usize {
        self.rows * self.cols * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_vec(2, 3, (0..6).map(|x| x as f32).collect());
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().at(2, 1), t.at(1, 2));
    }

    #[test]
    fn col_slicing_and_accumulation() {
        let t = Tensor::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
        let s = t.slice_cols(1, 2);
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
        let mut acc = Tensor::zeros(2, 4);
        acc.add_cols(1, &s);
        assert_eq!(acc.at(0, 1), 1.0);
        assert_eq!(acc.at(1, 2), 6.0);
        assert_eq!(acc.at(0, 0), 0.0);
    }

    #[test]
    fn row_slicing_and_stacking() {
        let t = Tensor::from_vec(4, 2, (0..8).map(|x| x as f32).collect());
        let a = t.slice_rows(0, 2);
        let b = t.slice_rows(2, 2);
        assert_eq!(Tensor::vstack(&[a, b]), t);
    }

    #[test]
    fn block_slicing_matches_row_then_col() {
        let t = Tensor::from_vec(4, 6, (0..24).map(|x| x as f32).collect());
        let fused = t.slice_block(1, 2, 2, 3);
        let two_step = t.slice_rows(1, 2).slice_cols(2, 3);
        assert_eq!(fused, two_step);
    }

    #[test]
    fn append_rows_matches_vstack() {
        let a = Tensor::from_vec(2, 3, (0..6).map(|x| x as f32).collect());
        let b = Tensor::from_vec(1, 3, vec![9.0, 8.0, 7.0]);
        let stacked = Tensor::vstack(&[a.clone(), b.clone()]);
        let mut grown = a;
        grown.append_rows(&b);
        assert_eq!(grown, stacked);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn arithmetic() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        assert_eq!(a.max_abs_diff(&b), 6.5);
    }
}
