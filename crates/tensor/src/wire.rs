//! Wire serialization for [`Tensor`]: the byte format boundary tensors
//! travel in between pipeline-stage processes.
//!
//! The encoding is deliberately trivial — `rows: u32 LE`, `cols: u32 LE`,
//! then `rows * cols` little-endian `f32` bit patterns — because the
//! transport layer above it (frame headers, checksums, sequence numbers)
//! owns integrity and ordering. Two properties matter here:
//!
//! 1. **Bit-exactness.** Payloads round-trip through raw bit patterns
//!    (`f32::to_bits`/`from_bits`), so NaN payloads, infinities and
//!    signed zeros survive unchanged and a tensor decoded on another
//!    process is bit-identical to the one encoded. This is what lets the
//!    multi-process runtime reproduce the in-process loss exactly.
//! 2. **Arena-backed decode.** [`Tensor::decode`] allocates its output
//!    through [`Tensor::uninit`], so when the decoding thread has a
//!    [`crate::TensorArena`] installed the receive buffer is served from
//!    (and recycled into) the stage's shape-keyed free lists — receiving
//!    a tensor in the steady state allocates nothing. The transport
//!    decodes on the *stage* thread, not its socket-reader threads, for
//!    exactly this reason.
//!
//! Decoding is defensive: short buffers, truncated payloads and
//! implausible shapes are rejected with a typed [`WireError`] instead of
//! panicking, since frame bytes may cross a process boundary.

use std::fmt;

use crate::tensor::Tensor;

/// Upper bound on decoded elements (1 Gi elements = 4 GiB payload):
/// rejects absurd shape headers before they turn into giant allocations.
const MAX_ELEMS: u64 = 1 << 30;

/// Size of the shape header in bytes (`rows: u32` + `cols: u32`).
pub const WIRE_HEADER_BYTES: usize = 8;

/// Decoding failure of a wire-encoded tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the shape header is complete.
    TruncatedHeader,
    /// The buffer ends before `rows * cols` payload elements.
    TruncatedPayload {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The shape header describes an implausibly large tensor.
    ImplausibleShape {
        /// Decoded row count.
        rows: u64,
        /// Decoded column count.
        cols: u64,
    },
    /// A lossy-payload block tag names no known block mode.
    UnknownBlockTag {
        /// The unrecognized tag byte.
        tag: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TruncatedHeader => write!(f, "tensor frame truncated inside shape header"),
            WireError::TruncatedPayload { expected, got } => {
                write!(
                    f,
                    "tensor frame truncated: payload needs {expected} bytes, got {got}"
                )
            }
            WireError::ImplausibleShape { rows, cols } => {
                write!(f, "tensor frame shape {rows}x{cols} exceeds the wire limit")
            }
            WireError::UnknownBlockTag { tag } => {
                write!(f, "lossy tensor frame block tag {tag:#04x} is unknown")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Floats converted per stack-buffered block during bulk encode/decode,
/// so the hot loops run over fixed-size arrays the compiler can unroll
/// and vectorize without any `unsafe` transmutes.
const BLOCK: usize = 256;

/// Converts an `f32` to bf16 bits (round-to-nearest-even).
///
/// bf16 keeps f32's sign and 8-bit exponent and truncates the mantissa
/// to 7 stored bits, so every normal value round-trips within a relative
/// error of 2^-8 ([`BF16_MAX_REL_ERR`]). NaNs stay NaN (a mantissa bit is
/// forced so rounding cannot quiet one into an infinity), infinities and
/// signed zeros are exact, and finite values whose rounding overflows the
/// largest bf16 normal map to the same-signed infinity.
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let lsb = (bits >> 16) & 1;
    (bits.wrapping_add(0x7FFF + lsb) >> 16) as u16
}

/// Inverse of [`f32_to_bf16`]: widens bf16 bits back to `f32` exactly
/// (every bf16 value is representable in f32, so this direction is
/// lossless).
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits(u32::from(b) << 16)
}

/// Relative round-trip error bound of [`f32_to_bf16`] for normal values:
/// half an ULP of bf16's 8-bit effective mantissa. Subnormal values
/// (magnitude below ~1.2e-38) can lose all precision and are bounded
/// only in absolute terms by the smallest bf16 subnormal step.
pub const BF16_MAX_REL_ERR: f32 = 1.0 / 256.0;

/// Elements per block of the lossy encoding: small enough that one
/// outlier only degrades 64 elements to the bf16 fallback, large enough
/// that the two bytes of per-block header stay under 4% overhead.
const LOSSY_BLOCK: usize = 64;

/// Block tag: 8-bit minifloat payload, one byte per element after a
/// shared anchor-exponent byte.
const LOSSY_MODE_MINI: u8 = 0;
/// Block tag: bf16 fallback payload, two bytes per element.
const LOSSY_MODE_BF16: u8 = 1;

/// Relative round-trip error bound of the lossy block encoding for
/// normal values, `2^-4`. The minifloat path rounds a 23-bit mantissa to
/// 3 bits (ties to even), so the error is at most half a mantissa step:
/// `2^-4 · 2^e ≤ 2^-4 · |v|`. The one clamp case — the block maximum
/// rounding up past `2^(anchor+1)` — decodes to `1.875 · 2^anchor` with
/// error `< (2 - 1.875)/2 = 2^-4` relative. The bf16 fallback is far
/// inside the bound (`2^-8`).
pub const LOSSY_MAX_REL_ERR: f32 = 1.0 / 16.0;

/// Decides how one block travels. `Some(anchor)` — the f32 biased
/// exponent of the block's largest magnitude — when every element fits
/// the minifloat form: all finite, no subnormals, and every nonzero
/// magnitude within 14 octaves of the maximum (the 4-bit exponent field
/// spans 15 values, with 0 reserved for zero). `None` sends the block
/// as bf16, whose full 8-bit exponent absorbs any spread and whose
/// NaN/infinity handling is already defined.
fn lossy_block_mode(chunk: &[f32]) -> Option<u8> {
    let mut emax = 0u32;
    let mut emin = u32::MAX;
    for &v in chunk {
        let bits = v.to_bits();
        let e = (bits >> 23) & 0xFF;
        if e == 0xFF {
            return None; // NaN or infinity
        }
        if bits & 0x7FFF_FFFF == 0 {
            continue; // ±0 is exact in every mode
        }
        if e == 0 {
            return None; // subnormal: no 1.m form to round
        }
        emax = emax.max(e);
        emin = emin.min(e);
    }
    if emin == u32::MAX {
        // All-zero block: every code is a signed zero, any anchor works.
        Some(1)
    } else if emax - emin <= 14 {
        Some(emax as u8)
    } else {
        None
    }
}

/// Quantizes one finite, non-subnormal f32 to the 8-bit minifloat form:
/// sign (1) | exponent (4, biased against `anchor`) | mantissa (3,
/// round-to-nearest-even). Callers guarantee `v`'s exponent lies in
/// `[anchor - 14, anchor]` (see [`lossy_block_mode`]).
fn f32_to_mini(v: f32, anchor: u8) -> u8 {
    let bits = v.to_bits();
    let sign = ((bits >> 31) as u8) << 7;
    if bits & 0x7FFF_FFFF == 0 {
        return sign; // exponent field 0 encodes ±0
    }
    let mut e = (bits >> 23) & 0xFF;
    let m = bits & 0x7F_FFFF;
    let mut m3 = (m + 0x7_FFFF + ((m >> 20) & 1)) >> 20;
    if m3 == 8 {
        m3 = 0;
        e += 1;
    }
    let anchor = u32::from(anchor);
    if e > anchor {
        // The block maximum rounded up past 2^(anchor+1): clamp to the
        // top code, still within LOSSY_MAX_REL_ERR (see its docs).
        e = anchor;
        m3 = 7;
    }
    let f = (e + 15 - anchor) as u8; // 1..=15 by block eligibility
    sign | (f << 3) | m3 as u8
}

/// Inverse of [`f32_to_mini`]: exact (every minifloat value is an f32).
/// Defensive about garbage bytes — an out-of-window exponent clamps into
/// the normal f32 range instead of fabricating an infinity or a panic.
fn mini_to_f32(code: u8, anchor: u8) -> f32 {
    let sign = u32::from(code >> 7) << 31;
    let f = u32::from(code >> 3) & 0xF;
    if f == 0 {
        return f32::from_bits(sign); // ±0
    }
    let e = (f as i32 + i32::from(anchor) - 15).clamp(1, 254) as u32;
    let m = (u32::from(code) & 0x7) << 20;
    f32::from_bits(sign | (e << 23) | m)
}

fn decode_shape(bytes: &[u8], elem_bytes: usize) -> Result<(usize, usize, usize), WireError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(WireError::TruncatedHeader);
    }
    let rows = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as u64;
    let cols = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as u64;
    if rows.saturating_mul(cols) > MAX_ELEMS {
        return Err(WireError::ImplausibleShape { rows, cols });
    }
    let need = (rows * cols) as usize * elem_bytes;
    let payload = &bytes[WIRE_HEADER_BYTES..];
    if payload.len() < need {
        return Err(WireError::TruncatedPayload {
            expected: need,
            got: payload.len(),
        });
    }
    Ok((rows as usize, cols as usize, need))
}

fn push_shape(out: &mut Vec<u8>, t: &Tensor) {
    let rows = u32::try_from(t.rows()).expect("rows fit in u32");
    let cols = u32::try_from(t.cols()).expect("cols fit in u32");
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&cols.to_le_bytes());
}

impl Tensor {
    /// Number of bytes [`Tensor::encode_into`] appends for this tensor.
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES + self.len() * 4
    }

    /// Number of bytes [`Tensor::encode_bf16_into`] appends.
    pub fn encoded_len_bf16(&self) -> usize {
        WIRE_HEADER_BYTES + self.len() * 2
    }

    /// Appends the wire encoding (`rows u32 LE, cols u32 LE, payload f32
    /// LE bit patterns`) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX` (no real tensor here is
    /// within orders of magnitude of that).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        push_shape(out, self);
        let mut block = [0u8; BLOCK * 4];
        for chunk in self.data().chunks(BLOCK) {
            for (dst, &v) in block.chunks_exact_mut(4).zip(chunk) {
                dst.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&block[..chunk.len() * 4]);
        }
    }

    /// Appends the bf16 wire encoding (`rows u32 LE, cols u32 LE, payload
    /// bf16 LE bit patterns`) to `out` — half the payload bytes of
    /// [`Tensor::encode_into`], lossy per [`f32_to_bf16`].
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX`.
    pub fn encode_bf16_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len_bf16());
        push_shape(out, self);
        let mut block = [0u8; BLOCK * 2];
        for chunk in self.data().chunks(BLOCK) {
            for (dst, &v) in block.chunks_exact_mut(2).zip(chunk) {
                dst.copy_from_slice(&f32_to_bf16(v).to_le_bytes());
            }
            out.extend_from_slice(&block[..chunk.len() * 2]);
        }
    }

    /// Decodes one tensor from the front of `bytes`, returning it plus
    /// the number of bytes consumed. The payload is copied bit-exactly;
    /// the output buffer is served by the installed arena, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffer is truncated or the shape
    /// header is implausible; `bytes` is never panicked over.
    pub fn decode(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        let (rows, cols, need) = decode_shape(bytes, 4)?;
        let payload = &bytes[WIRE_HEADER_BYTES..WIRE_HEADER_BYTES + need];
        let mut t = Tensor::uninit(rows, cols);
        for (dst, src) in t
            .data_mut()
            .chunks_mut(BLOCK)
            .zip(payload.chunks(BLOCK * 4))
        {
            for (d, s) in dst.iter_mut().zip(src.chunks_exact(4)) {
                *d = f32::from_bits(u32::from_le_bytes(s.try_into().unwrap()));
            }
        }
        Ok((t, WIRE_HEADER_BYTES + need))
    }

    /// Decodes a bf16-encoded tensor from the front of `bytes` (the
    /// [`Tensor::encode_bf16_into`] format), widening each element back
    /// to `f32`. The output buffer is served by the installed arena.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::decode`].
    pub fn decode_bf16(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        let (rows, cols, need) = decode_shape(bytes, 2)?;
        let payload = &bytes[WIRE_HEADER_BYTES..WIRE_HEADER_BYTES + need];
        let mut t = Tensor::uninit(rows, cols);
        for (dst, src) in t
            .data_mut()
            .chunks_mut(BLOCK)
            .zip(payload.chunks(BLOCK * 2))
        {
            for (d, s) in dst.iter_mut().zip(src.chunks_exact(2)) {
                *d = bf16_to_f32(u16::from_le_bytes(s.try_into().unwrap()));
            }
        }
        Ok((t, WIRE_HEADER_BYTES + need))
    }

    /// Number of bytes [`Tensor::encode_lossy_into`] appends. Scans the
    /// data (block modes are data-dependent), so this is exact, not an
    /// upper bound.
    pub fn encoded_len_lossy(&self) -> usize {
        let mut len = WIRE_HEADER_BYTES;
        for chunk in self.data().chunks(LOSSY_BLOCK) {
            len += 1 + match lossy_block_mode(chunk) {
                Some(_) => 1 + chunk.len(),
                None => 2 * chunk.len(),
            };
        }
        len
    }

    /// Appends the error-bounded lossy wire encoding to `out`: the shape
    /// header, then one block per [`LOSSY_BLOCK`] elements. A block is a
    /// tag byte plus either an anchor-exponent byte and one minifloat
    /// byte per element ([`LOSSY_MODE_MINI`]), or two bf16 bytes per
    /// element ([`LOSSY_MODE_BF16`]) when the block holds nonfinite,
    /// subnormal, or wider-than-14-octave values. Relative error per
    /// normal element is bounded by [`LOSSY_MAX_REL_ERR`]; payloads
    /// always shrink versus f32 (≤ ~0.26x typical, ≤ 0.52x worst case).
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX`.
    pub fn encode_lossy_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len_lossy());
        push_shape(out, self);
        for chunk in self.data().chunks(LOSSY_BLOCK) {
            match lossy_block_mode(chunk) {
                Some(anchor) => {
                    out.push(LOSSY_MODE_MINI);
                    out.push(anchor);
                    for &v in chunk {
                        out.push(f32_to_mini(v, anchor));
                    }
                }
                None => {
                    out.push(LOSSY_MODE_BF16);
                    for &v in chunk {
                        out.extend_from_slice(&f32_to_bf16(v).to_le_bytes());
                    }
                }
            }
        }
    }

    /// Decodes a lossy-encoded tensor from the front of `bytes` (the
    /// [`Tensor::encode_lossy_into`] format). The output buffer is
    /// served by the installed arena.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffer is truncated, a block tag
    /// is unknown, or the shape header is implausible.
    pub fn decode_lossy(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        if bytes.len() < WIRE_HEADER_BYTES {
            return Err(WireError::TruncatedHeader);
        }
        let rows = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as u64;
        let cols = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as u64;
        if rows.saturating_mul(cols) > MAX_ELEMS {
            return Err(WireError::ImplausibleShape { rows, cols });
        }
        let avail = bytes.len() - WIRE_HEADER_BYTES;
        // Payload length is data-dependent, so "expected" reports the
        // bytes needed through the block that fell off the end.
        let trunc = |need_through: usize| WireError::TruncatedPayload {
            expected: need_through - WIRE_HEADER_BYTES,
            got: avail,
        };
        let mut t = Tensor::uninit(rows as usize, cols as usize);
        let mut pos = WIRE_HEADER_BYTES;
        for dst in t.data_mut().chunks_mut(LOSSY_BLOCK) {
            let tag = *bytes.get(pos).ok_or_else(|| trunc(pos + 1))?;
            pos += 1;
            match tag {
                LOSSY_MODE_MINI => {
                    let end = pos + 1 + dst.len();
                    if bytes.len() < end {
                        return Err(trunc(end));
                    }
                    let anchor = bytes[pos];
                    for (d, &c) in dst.iter_mut().zip(&bytes[pos + 1..end]) {
                        *d = mini_to_f32(c, anchor);
                    }
                    pos = end;
                }
                LOSSY_MODE_BF16 => {
                    let end = pos + 2 * dst.len();
                    if bytes.len() < end {
                        return Err(trunc(end));
                    }
                    for (d, s) in dst.iter_mut().zip(bytes[pos..end].chunks_exact(2)) {
                        *d = bf16_to_f32(u16::from_le_bytes(s.try_into().unwrap()));
                    }
                    pos = end;
                }
                tag => return Err(WireError::UnknownBlockTag { tag }),
            }
        }
        Ok((t, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let t = Tensor::from_vec(
            2,
            3,
            vec![1.5, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 3e-39],
        );
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len());
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!((back.rows(), back.cols()), (2, 3));
        for (a, b) in t.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_sized_tensors_round_trip() {
        let t = Tensor::zeros(0, 5);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, WIRE_HEADER_BYTES);
        assert_eq!((back.rows(), back.cols()), (0, 5));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let t = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_shape_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Tensor::decode(&buf),
            Err(WireError::ImplausibleShape { .. })
        ));
    }

    #[test]
    fn bf16_round_trip_is_within_bound() {
        let t = Tensor::from_vec(
            2,
            4,
            vec![
                1.5,
                -0.0,
                f32::NAN,
                f32::INFINITY,
                -3.25e7,
                1e-20,
                0.1,
                -65504.0,
            ],
        );
        let mut buf = Vec::new();
        t.encode_bf16_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len_bf16());
        let (back, used) = Tensor::decode_bf16(&buf).unwrap();
        assert_eq!(used, buf.len());
        for (&a, &b) in t.data().iter().zip(back.data()) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else if a.is_infinite() || a == 0.0 {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert!(((a - b) / a).abs() <= BF16_MAX_REL_ERR, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 sits exactly halfway between bf16(1.0) and the next
        // bf16 up (ULP 2^-7); ties-to-even keeps the even mantissa (1.0).
        let tie = 1.0f32 + 1.0 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // Just above the tie rounds up to the next bf16.
        let above_tie = f32::from_bits(tie.to_bits() + 1);
        assert_eq!(bf16_to_f32(f32_to_bf16(above_tie)), 1.0078125);
        // Overflow near f32::MAX saturates to infinity, sign preserved.
        assert_eq!(f32_to_bf16(f32::MAX), f32_to_bf16(f32::INFINITY));
        assert!(bf16_to_f32(f32_to_bf16(-f32::MAX)).is_infinite());
    }

    #[test]
    fn bf16_truncation_is_rejected_at_every_length() {
        let t = Tensor::from_vec(3, 3, (0..9).map(|x| x as f32).collect());
        let mut buf = Vec::new();
        t.encode_bf16_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode_bf16(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn lossy_round_trip_is_within_bound_and_shrinks() {
        // Well-conditioned block (gradient-like magnitudes): minifloat.
        let n = 3 * LOSSY_BLOCK + 17;
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let mag = 0.5 + (i % 97) as f32 / 50.0;
                if i % 2 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect();
        let t = Tensor::from_vec(1, n, data);
        let mut buf = Vec::new();
        t.encode_lossy_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len_lossy());
        // All blocks qualify for minifloat: ~1 byte/elem + 2/block.
        assert_eq!(
            buf.len(),
            WIRE_HEADER_BYTES + n + 2 * n.div_ceil(LOSSY_BLOCK)
        );
        // Element bytes roughly halve again versus bf16 (2 -> ~1.03).
        assert!(buf.len() < t.encoded_len_bf16(), "should beat bf16");
        assert!(buf.len() * 3 < t.encoded_len(), "should be < f32/3");
        let (back, used) = Tensor::decode_lossy(&buf).unwrap();
        assert_eq!(used, buf.len());
        for (&a, &b) in t.data().iter().zip(back.data()) {
            assert!(
                (a - b).abs() <= a.abs() * LOSSY_MAX_REL_ERR,
                "lossy error out of bound: {a} -> {b}"
            );
        }
    }

    #[test]
    fn lossy_wide_and_nonfinite_blocks_fall_back_to_bf16() {
        // One block spanning > 14 octaves, one holding a NaN: both must
        // take the bf16 fallback and still round-trip within the bound.
        let mut data = vec![0.25f32; 2 * LOSSY_BLOCK];
        data[3] = 1e-3;
        data[7] = 100.0; // octave spread ~17 in block 0
        data[LOSSY_BLOCK + 5] = f32::NAN;
        data[LOSSY_BLOCK + 6] = f32::INFINITY;
        let t = Tensor::from_vec(2, LOSSY_BLOCK, data);
        let mut buf = Vec::new();
        t.encode_lossy_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len_lossy());
        assert_eq!(buf.len(), WIRE_HEADER_BYTES + 2 * (1 + 2 * LOSSY_BLOCK));
        let (back, _) = Tensor::decode_lossy(&buf).unwrap();
        for (&a, &b) in t.data().iter().zip(back.data()) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else if a.is_infinite() {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert!(
                    (a - b).abs() <= a.abs() * BF16_MAX_REL_ERR,
                    "fallback error out of bound: {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn lossy_preserves_signed_zeros_and_block_maxima() {
        let mut data = vec![0.0f32; LOSSY_BLOCK];
        data[0] = -0.0;
        data[1] = 1.0; // exactly representable
        data[2] = 1.875; // the top minifloat mantissa
        data[3] = 1.99; // rounds up past the top code: clamp case
        let t = Tensor::from_vec(1, LOSSY_BLOCK, data);
        let mut buf = Vec::new();
        t.encode_lossy_into(&mut buf);
        let (back, _) = Tensor::decode_lossy(&buf).unwrap();
        assert_eq!(back.data()[0].to_bits(), (-0.0f32).to_bits());
        assert_eq!(back.data()[1], 1.0);
        assert_eq!(back.data()[2], 1.875);
        assert_eq!(back.data()[3], 1.875, "clamped to the top code");
        assert!((1.99 - back.data()[3]) / 1.99 <= LOSSY_MAX_REL_ERR);
        assert!(back.data()[4..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lossy_truncation_is_rejected_at_every_length() {
        let mut data: Vec<f32> = (0..LOSSY_BLOCK + 9).map(|i| 1.0 + i as f32).collect();
        data[2] = f32::NAN; // force one bf16 block, one minifloat block
        let t = Tensor::from_vec(1, LOSSY_BLOCK + 9, data);
        let mut buf = Vec::new();
        t.encode_lossy_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode_lossy(&buf[..cut]).is_err(), "cut at {cut}");
        }
        let (_, used) = Tensor::decode_lossy(&buf).unwrap();
        assert_eq!(used, buf.len());
    }

    #[test]
    fn lossy_unknown_block_tag_is_rejected() {
        let t = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut buf = Vec::new();
        t.encode_lossy_into(&mut buf);
        buf[WIRE_HEADER_BYTES] = 0x7E;
        assert!(matches!(
            Tensor::decode_lossy(&buf),
            Err(WireError::UnknownBlockTag { tag: 0x7E })
        ));
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let t = Tensor::from_vec(1, 2, vec![7.0, 8.0]);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let frame_len = buf.len();
        buf.extend_from_slice(&[0xAB; 9]);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, frame_len);
        assert_eq!(back.data(), &[7.0, 8.0]);
    }
}
