//! Wire serialization for [`Tensor`]: the byte format boundary tensors
//! travel in between pipeline-stage processes.
//!
//! The encoding is deliberately trivial — `rows: u32 LE`, `cols: u32 LE`,
//! then `rows * cols` little-endian `f32` bit patterns — because the
//! transport layer above it (frame headers, checksums, sequence numbers)
//! owns integrity and ordering. Two properties matter here:
//!
//! 1. **Bit-exactness.** Payloads round-trip through raw bit patterns
//!    (`f32::to_bits`/`from_bits`), so NaN payloads, infinities and
//!    signed zeros survive unchanged and a tensor decoded on another
//!    process is bit-identical to the one encoded. This is what lets the
//!    multi-process runtime reproduce the in-process loss exactly.
//! 2. **Arena-backed decode.** [`Tensor::decode`] allocates its output
//!    through [`Tensor::uninit`], so when the decoding thread has a
//!    [`crate::TensorArena`] installed the receive buffer is served from
//!    (and recycled into) the stage's shape-keyed free lists — receiving
//!    a tensor in the steady state allocates nothing. The transport
//!    decodes on the *stage* thread, not its socket-reader threads, for
//!    exactly this reason.
//!
//! Decoding is defensive: short buffers, truncated payloads and
//! implausible shapes are rejected with a typed [`WireError`] instead of
//! panicking, since frame bytes may cross a process boundary.

use std::fmt;

use crate::tensor::Tensor;

/// Upper bound on decoded elements (1 Gi elements = 4 GiB payload):
/// rejects absurd shape headers before they turn into giant allocations.
const MAX_ELEMS: u64 = 1 << 30;

/// Size of the shape header in bytes (`rows: u32` + `cols: u32`).
pub const WIRE_HEADER_BYTES: usize = 8;

/// Decoding failure of a wire-encoded tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the shape header is complete.
    TruncatedHeader,
    /// The buffer ends before `rows * cols` payload elements.
    TruncatedPayload {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The shape header describes an implausibly large tensor.
    ImplausibleShape {
        /// Decoded row count.
        rows: u64,
        /// Decoded column count.
        cols: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TruncatedHeader => write!(f, "tensor frame truncated inside shape header"),
            WireError::TruncatedPayload { expected, got } => {
                write!(
                    f,
                    "tensor frame truncated: payload needs {expected} bytes, got {got}"
                )
            }
            WireError::ImplausibleShape { rows, cols } => {
                write!(f, "tensor frame shape {rows}x{cols} exceeds the wire limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Floats converted per stack-buffered block during bulk encode/decode,
/// so the hot loops run over fixed-size arrays the compiler can unroll
/// and vectorize without any `unsafe` transmutes.
const BLOCK: usize = 256;

/// Converts an `f32` to bf16 bits (round-to-nearest-even).
///
/// bf16 keeps f32's sign and 8-bit exponent and truncates the mantissa
/// to 7 stored bits, so every normal value round-trips within a relative
/// error of 2^-8 ([`BF16_MAX_REL_ERR`]). NaNs stay NaN (a mantissa bit is
/// forced so rounding cannot quiet one into an infinity), infinities and
/// signed zeros are exact, and finite values whose rounding overflows the
/// largest bf16 normal map to the same-signed infinity.
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let lsb = (bits >> 16) & 1;
    (bits.wrapping_add(0x7FFF + lsb) >> 16) as u16
}

/// Inverse of [`f32_to_bf16`]: widens bf16 bits back to `f32` exactly
/// (every bf16 value is representable in f32, so this direction is
/// lossless).
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits(u32::from(b) << 16)
}

/// Relative round-trip error bound of [`f32_to_bf16`] for normal values:
/// half an ULP of bf16's 8-bit effective mantissa. Subnormal values
/// (magnitude below ~1.2e-38) can lose all precision and are bounded
/// only in absolute terms by the smallest bf16 subnormal step.
pub const BF16_MAX_REL_ERR: f32 = 1.0 / 256.0;

fn decode_shape(bytes: &[u8], elem_bytes: usize) -> Result<(usize, usize, usize), WireError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(WireError::TruncatedHeader);
    }
    let rows = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as u64;
    let cols = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as u64;
    if rows.saturating_mul(cols) > MAX_ELEMS {
        return Err(WireError::ImplausibleShape { rows, cols });
    }
    let need = (rows * cols) as usize * elem_bytes;
    let payload = &bytes[WIRE_HEADER_BYTES..];
    if payload.len() < need {
        return Err(WireError::TruncatedPayload {
            expected: need,
            got: payload.len(),
        });
    }
    Ok((rows as usize, cols as usize, need))
}

fn push_shape(out: &mut Vec<u8>, t: &Tensor) {
    let rows = u32::try_from(t.rows()).expect("rows fit in u32");
    let cols = u32::try_from(t.cols()).expect("cols fit in u32");
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&cols.to_le_bytes());
}

impl Tensor {
    /// Number of bytes [`Tensor::encode_into`] appends for this tensor.
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES + self.len() * 4
    }

    /// Number of bytes [`Tensor::encode_bf16_into`] appends.
    pub fn encoded_len_bf16(&self) -> usize {
        WIRE_HEADER_BYTES + self.len() * 2
    }

    /// Appends the wire encoding (`rows u32 LE, cols u32 LE, payload f32
    /// LE bit patterns`) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX` (no real tensor here is
    /// within orders of magnitude of that).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        push_shape(out, self);
        let mut block = [0u8; BLOCK * 4];
        for chunk in self.data().chunks(BLOCK) {
            for (dst, &v) in block.chunks_exact_mut(4).zip(chunk) {
                dst.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&block[..chunk.len() * 4]);
        }
    }

    /// Appends the bf16 wire encoding (`rows u32 LE, cols u32 LE, payload
    /// bf16 LE bit patterns`) to `out` — half the payload bytes of
    /// [`Tensor::encode_into`], lossy per [`f32_to_bf16`].
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX`.
    pub fn encode_bf16_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len_bf16());
        push_shape(out, self);
        let mut block = [0u8; BLOCK * 2];
        for chunk in self.data().chunks(BLOCK) {
            for (dst, &v) in block.chunks_exact_mut(2).zip(chunk) {
                dst.copy_from_slice(&f32_to_bf16(v).to_le_bytes());
            }
            out.extend_from_slice(&block[..chunk.len() * 2]);
        }
    }

    /// Decodes one tensor from the front of `bytes`, returning it plus
    /// the number of bytes consumed. The payload is copied bit-exactly;
    /// the output buffer is served by the installed arena, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffer is truncated or the shape
    /// header is implausible; `bytes` is never panicked over.
    pub fn decode(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        let (rows, cols, need) = decode_shape(bytes, 4)?;
        let payload = &bytes[WIRE_HEADER_BYTES..WIRE_HEADER_BYTES + need];
        let mut t = Tensor::uninit(rows, cols);
        for (dst, src) in t
            .data_mut()
            .chunks_mut(BLOCK)
            .zip(payload.chunks(BLOCK * 4))
        {
            for (d, s) in dst.iter_mut().zip(src.chunks_exact(4)) {
                *d = f32::from_bits(u32::from_le_bytes(s.try_into().unwrap()));
            }
        }
        Ok((t, WIRE_HEADER_BYTES + need))
    }

    /// Decodes a bf16-encoded tensor from the front of `bytes` (the
    /// [`Tensor::encode_bf16_into`] format), widening each element back
    /// to `f32`. The output buffer is served by the installed arena.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::decode`].
    pub fn decode_bf16(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        let (rows, cols, need) = decode_shape(bytes, 2)?;
        let payload = &bytes[WIRE_HEADER_BYTES..WIRE_HEADER_BYTES + need];
        let mut t = Tensor::uninit(rows, cols);
        for (dst, src) in t
            .data_mut()
            .chunks_mut(BLOCK)
            .zip(payload.chunks(BLOCK * 2))
        {
            for (d, s) in dst.iter_mut().zip(src.chunks_exact(2)) {
                *d = bf16_to_f32(u16::from_le_bytes(s.try_into().unwrap()));
            }
        }
        Ok((t, WIRE_HEADER_BYTES + need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let t = Tensor::from_vec(
            2,
            3,
            vec![1.5, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 3e-39],
        );
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len());
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!((back.rows(), back.cols()), (2, 3));
        for (a, b) in t.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_sized_tensors_round_trip() {
        let t = Tensor::zeros(0, 5);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, WIRE_HEADER_BYTES);
        assert_eq!((back.rows(), back.cols()), (0, 5));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let t = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_shape_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Tensor::decode(&buf),
            Err(WireError::ImplausibleShape { .. })
        ));
    }

    #[test]
    fn bf16_round_trip_is_within_bound() {
        let t = Tensor::from_vec(
            2,
            4,
            vec![
                1.5,
                -0.0,
                f32::NAN,
                f32::INFINITY,
                -3.25e7,
                1e-20,
                0.1,
                -65504.0,
            ],
        );
        let mut buf = Vec::new();
        t.encode_bf16_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len_bf16());
        let (back, used) = Tensor::decode_bf16(&buf).unwrap();
        assert_eq!(used, buf.len());
        for (&a, &b) in t.data().iter().zip(back.data()) {
            if a.is_nan() {
                assert!(b.is_nan());
            } else if a.is_infinite() || a == 0.0 {
                assert_eq!(a.to_bits(), b.to_bits());
            } else {
                assert!(((a - b) / a).abs() <= BF16_MAX_REL_ERR, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 sits exactly halfway between bf16(1.0) and the next
        // bf16 up (ULP 2^-7); ties-to-even keeps the even mantissa (1.0).
        let tie = 1.0f32 + 1.0 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // Just above the tie rounds up to the next bf16.
        let above_tie = f32::from_bits(tie.to_bits() + 1);
        assert_eq!(bf16_to_f32(f32_to_bf16(above_tie)), 1.0078125);
        // Overflow near f32::MAX saturates to infinity, sign preserved.
        assert_eq!(f32_to_bf16(f32::MAX), f32_to_bf16(f32::INFINITY));
        assert!(bf16_to_f32(f32_to_bf16(-f32::MAX)).is_infinite());
    }

    #[test]
    fn bf16_truncation_is_rejected_at_every_length() {
        let t = Tensor::from_vec(3, 3, (0..9).map(|x| x as f32).collect());
        let mut buf = Vec::new();
        t.encode_bf16_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode_bf16(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let t = Tensor::from_vec(1, 2, vec![7.0, 8.0]);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let frame_len = buf.len();
        buf.extend_from_slice(&[0xAB; 9]);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, frame_len);
        assert_eq!(back.data(), &[7.0, 8.0]);
    }
}
