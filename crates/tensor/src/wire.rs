//! Wire serialization for [`Tensor`]: the byte format boundary tensors
//! travel in between pipeline-stage processes.
//!
//! The encoding is deliberately trivial — `rows: u32 LE`, `cols: u32 LE`,
//! then `rows * cols` little-endian `f32` bit patterns — because the
//! transport layer above it (frame headers, checksums, sequence numbers)
//! owns integrity and ordering. Two properties matter here:
//!
//! 1. **Bit-exactness.** Payloads round-trip through raw bit patterns
//!    (`f32::to_bits`/`from_bits`), so NaN payloads, infinities and
//!    signed zeros survive unchanged and a tensor decoded on another
//!    process is bit-identical to the one encoded. This is what lets the
//!    multi-process runtime reproduce the in-process loss exactly.
//! 2. **Arena-backed decode.** [`Tensor::decode`] allocates its output
//!    through [`Tensor::uninit`], so when the decoding thread has a
//!    [`crate::TensorArena`] installed the receive buffer is served from
//!    (and recycled into) the stage's shape-keyed free lists — receiving
//!    a tensor in the steady state allocates nothing. The transport
//!    decodes on the *stage* thread, not its socket-reader threads, for
//!    exactly this reason.
//!
//! Decoding is defensive: short buffers, truncated payloads and
//! implausible shapes are rejected with a typed [`WireError`] instead of
//! panicking, since frame bytes may cross a process boundary.

use std::fmt;

use crate::tensor::Tensor;

/// Upper bound on decoded elements (1 Gi elements = 4 GiB payload):
/// rejects absurd shape headers before they turn into giant allocations.
const MAX_ELEMS: u64 = 1 << 30;

/// Size of the shape header in bytes (`rows: u32` + `cols: u32`).
pub const WIRE_HEADER_BYTES: usize = 8;

/// Decoding failure of a wire-encoded tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the shape header is complete.
    TruncatedHeader,
    /// The buffer ends before `rows * cols` payload elements.
    TruncatedPayload {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The shape header describes an implausibly large tensor.
    ImplausibleShape {
        /// Decoded row count.
        rows: u64,
        /// Decoded column count.
        cols: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TruncatedHeader => write!(f, "tensor frame truncated inside shape header"),
            WireError::TruncatedPayload { expected, got } => {
                write!(
                    f,
                    "tensor frame truncated: payload needs {expected} bytes, got {got}"
                )
            }
            WireError::ImplausibleShape { rows, cols } => {
                write!(f, "tensor frame shape {rows}x{cols} exceeds the wire limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl Tensor {
    /// Number of bytes [`Tensor::encode_into`] appends for this tensor.
    pub fn encoded_len(&self) -> usize {
        WIRE_HEADER_BYTES + self.len() * 4
    }

    /// Appends the wire encoding (`rows u32 LE, cols u32 LE, payload f32
    /// LE bit patterns`) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u32::MAX` (no real tensor here is
    /// within orders of magnitude of that).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let rows = u32::try_from(self.rows()).expect("rows fit in u32");
        let cols = u32::try_from(self.cols()).expect("cols fit in u32");
        out.reserve(self.encoded_len());
        out.extend_from_slice(&rows.to_le_bytes());
        out.extend_from_slice(&cols.to_le_bytes());
        for &v in self.data() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Decodes one tensor from the front of `bytes`, returning it plus
    /// the number of bytes consumed. The payload is copied bit-exactly;
    /// the output buffer is served by the installed arena, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffer is truncated or the shape
    /// header is implausible; `bytes` is never panicked over.
    pub fn decode(bytes: &[u8]) -> Result<(Tensor, usize), WireError> {
        if bytes.len() < WIRE_HEADER_BYTES {
            return Err(WireError::TruncatedHeader);
        }
        let rows = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as u64;
        let cols = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as u64;
        if rows.saturating_mul(cols) > MAX_ELEMS {
            return Err(WireError::ImplausibleShape { rows, cols });
        }
        let n = (rows * cols) as usize;
        let need = n * 4;
        let payload = &bytes[WIRE_HEADER_BYTES..];
        if payload.len() < need {
            return Err(WireError::TruncatedPayload {
                expected: need,
                got: payload.len(),
            });
        }
        let mut t = Tensor::uninit(rows as usize, cols as usize);
        for (dst, src) in t.data_mut().iter_mut().zip(payload.chunks_exact(4)) {
            *dst = f32::from_bits(u32::from_le_bytes(src.try_into().unwrap()));
        }
        Ok((t, WIRE_HEADER_BYTES + need))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let t = Tensor::from_vec(
            2,
            3,
            vec![1.5, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 3e-39],
        );
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        assert_eq!(buf.len(), t.encoded_len());
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!((back.rows(), back.cols()), (2, 3));
        for (a, b) in t.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_sized_tensors_round_trip() {
        let t = Tensor::zeros(0, 5);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, WIRE_HEADER_BYTES);
        assert_eq!((back.rows(), back.cols()), (0, 5));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let t = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(Tensor::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_shape_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Tensor::decode(&buf),
            Err(WireError::ImplausibleShape { .. })
        ));
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let t = Tensor::from_vec(1, 2, vec![7.0, 8.0]);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let frame_len = buf.len();
        buf.extend_from_slice(&[0xAB; 9]);
        let (back, used) = Tensor::decode(&buf).unwrap();
        assert_eq!(used, frame_len);
        assert_eq!(back.data(), &[7.0, 8.0]);
    }
}
