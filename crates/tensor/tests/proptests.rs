//! Property tests for the tensor kernels: algebraic identities and the
//! slice-equivalence laws the pipeline runtime depends on.

use proptest::prelude::*;

use mepipe_tensor::{
    init::{rng, uniform},
    ops::{
        causal_attention_backward_in, causal_attention_in, cross_entropy, matmul, matmul_dgrad,
        matmul_dgrad_in, matmul_in, matmul_wgrad, matmul_wgrad_in, naive, rmsnorm,
        rmsnorm_backward, silu, silu_backward,
    },
    KernelPool, Tensor,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `(A·B)ᵀ = Bᵀ·Aᵀ`.
    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let mut r = rng(seed);
        let a = uniform(m, k, 1.0, &mut r);
        let b = uniform(k, n, 1.0, &mut r);
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// dgrad and wgrad are consistent with each other: for scalar loss
    /// `L = Σ (A·B)`, `Σ A ⊙ dA = Σ B ⊙ dB` (both equal Σ over paths).
    #[test]
    fn grad_halves_agree_on_inner_product(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let mut r = rng(seed);
        let a = uniform(m, k, 1.0, &mut r);
        let b = uniform(k, n, 1.0, &mut r);
        let dc = Tensor::from_vec(m, n, vec![1.0; m * n]);
        let da = matmul_dgrad(&dc, &b);
        let db = matmul_wgrad(&a, &dc);
        let ip_a: f32 = a.data().iter().zip(da.data()).map(|(x, g)| x * g).sum();
        let ip_b: f32 = b.data().iter().zip(db.data()).map(|(x, g)| x * g).sum();
        // Both inner products equal Σ_C by Euler's identity for bilinear
        // forms: <A, dA> = <B, dB> = Σ C.
        prop_assert!((ip_a - ip_b).abs() < 1e-2 * ip_a.abs().max(1.0));
    }

    /// Weight gradients over row slices sum to the whole-batch gradient —
    /// the law that lets slices accumulate into one gradient buffer.
    #[test]
    fn wgrad_slice_additivity(rows in 2usize..10, k in 1usize..5, n in 1usize..5, cut_frac in 0.1f64..0.9, seed in 0u64..500) {
        let mut r = rng(seed);
        let a = uniform(rows, k, 1.0, &mut r);
        let dc = uniform(rows, n, 1.0, &mut r);
        let cut = ((rows as f64 * cut_frac) as usize).clamp(1, rows - 1);
        let whole = matmul_wgrad(&a, &dc);
        let mut parts = matmul_wgrad(&a.slice_rows(0, cut), &dc.slice_rows(0, cut));
        parts.add_assign(&matmul_wgrad(
            &a.slice_rows(cut, rows - cut),
            &dc.slice_rows(cut, rows - cut),
        ));
        prop_assert!(whole.max_abs_diff(&parts) < 1e-4);
    }

    /// RMSNorm output rows always have (weighted) unit RMS when the weight
    /// is all ones.
    #[test]
    fn rmsnorm_normalises(rows in 1usize..6, cols in 2usize..10, seed in 0u64..500) {
        let mut r = rng(seed);
        let x = uniform(rows, cols, 2.0, &mut r);
        let w = Tensor::from_vec(1, cols, vec![1.0; cols]);
        let (y, _) = rmsnorm(&x, &w);
        for i in 0..rows {
            let ms: f32 = y.row(i).iter().map(|v| v * v).sum::<f32>() / cols as f32;
            // eps keeps it slightly below 1 for small inputs.
            prop_assert!(ms <= 1.0 + 1e-3, "row {i}: ms = {ms}");
        }
    }

    /// RMSNorm gradient is orthogonal to scaling: dx · x ≈ 0 when w = 1
    /// and dy = x (the norm is scale-invariant along x).
    #[test]
    fn rmsnorm_scale_invariance(cols in 2usize..10, seed in 0u64..500) {
        let mut r = rng(seed);
        let x = uniform(1, cols, 1.0, &mut r);
        // The eps inside the RMS breaks exact scale invariance for tiny
        // inputs; keep the norm away from zero.
        prop_assume!(x.norm_sq() > 0.5);
        let w = Tensor::from_vec(1, cols, vec![1.0; cols]);
        let (_, saved) = rmsnorm(&x, &w);
        // Feed dy = normalised(x); the x-direction component must vanish.
        let (y, _) = rmsnorm(&x, &w);
        let (dx, _) = rmsnorm_backward(&y, &w, &saved);
        // With dy = y the true gradient is (numerically) zero; the only
        // residual is the eps inside the RMS. Measure the derivative along
        // the scaling direction against the input magnitude.
        let dot: f32 = dx.data().iter().zip(x.data()).map(|(a, b)| a * b).sum();
        prop_assert!(dot.abs() < 1e-3 * x.norm_sq(), "dot {dot} |x|^2 {}", x.norm_sq());
    }

    /// SiLU backward is exact against central differences everywhere.
    #[test]
    fn silu_grad_correct(v in -4.0f32..4.0) {
        let x = Tensor::from_vec(1, 1, vec![v]);
        let dy = Tensor::from_vec(1, 1, vec![1.0]);
        let dx = silu_backward(&dy, &x);
        let eps = 1e-3;
        let f = |t: f32| silu(&Tensor::from_vec(1, 1, vec![t])).at(0, 0);
        let num = (f(v + eps) - f(v - eps)) / (2.0 * eps);
        prop_assert!((num - dx.at(0, 0)).abs() < 1e-2);
    }

    /// Cross-entropy loss decomposes over row slices exactly.
    #[test]
    fn loss_slice_additivity(rows in 2usize..8, vocab in 2usize..12, seed in 0u64..500) {
        let mut r = rng(seed);
        let logits = uniform(rows, vocab, 2.0, &mut r);
        let targets: Vec<usize> = (0..rows).map(|i| i % vocab).collect();
        let full = cross_entropy(&logits, &targets);
        let cut = rows / 2;
        let a = cross_entropy(&logits.slice_rows(0, cut), &targets[..cut]);
        let b = cross_entropy(&logits.slice_rows(cut, rows - cut), &targets[cut..]);
        prop_assert!((full.loss_sum - a.loss_sum - b.loss_sum).abs() < 1e-9);
        // Gradients stack too.
        let stacked = Tensor::vstack(&[a.dlogits, b.dlogits]);
        prop_assert!(full.dlogits.max_abs_diff(&stacked) < 1e-6);
    }

    /// Cross-entropy gradient rows sum to zero (softmax minus one-hot).
    #[test]
    fn loss_grad_rows_sum_to_zero(vocab in 2usize..16, seed in 0u64..500) {
        let mut r = rng(seed);
        let logits = uniform(3, vocab, 3.0, &mut r);
        let out = cross_entropy(&logits, &[0, vocab / 2, vocab - 1]);
        for i in 0..3 {
            let s: f32 = out.dlogits.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {i} sums to {s}");
        }
    }

    /// The blocked/packed kernel engine matches the naive scalar loops for
    /// all three GEMM forms, at random shapes and worker counts. Shapes
    /// reach past the register-tile (6×8), row-block (48) and panel (256)
    /// boundaries so every packing edge case gets exercised.
    #[test]
    fn kernel_engine_matches_naive(
        m in 1usize..80,
        k in 1usize..70,
        n in 1usize..60,
        workers in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut r = rng(seed);
        let a = uniform(m, k, 1.0, &mut r);
        let b = uniform(k, n, 1.0, &mut r);
        let dc = uniform(m, n, 1.0, &mut r);
        let pool = KernelPool::new(workers);

        let c = matmul_in(&pool, &a, &b);
        prop_assert!(c.max_abs_diff(&naive::matmul(&a, &b)) < 1e-5);
        let da = matmul_dgrad_in(&pool, &dc, &b);
        prop_assert!(da.max_abs_diff(&naive::matmul_dgrad(&dc, &b)) < 1e-5);
        let db = matmul_wgrad_in(&pool, &a, &dc);
        prop_assert!(db.max_abs_diff(&naive::matmul_wgrad(&a, &dc)) < 1e-5);
    }

    /// The fused attention forward/backward matches the naive reference
    /// (explicit transposes, unfused softmax) at random shapes, prefix
    /// offsets and worker counts.
    #[test]
    fn fused_attention_matches_naive(
        t in 1usize..12,
        d in 1usize..10,
        offset in 0usize..8,
        workers in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut r = rng(seed);
        let prefix = offset + t;
        let q = uniform(t, d, 1.0, &mut r);
        let k = uniform(prefix, d, 1.0, &mut r);
        let v = uniform(prefix, d, 1.0, &mut r);
        let dout = uniform(t, d, 1.0, &mut r);
        let pool = KernelPool::new(workers);

        let (out, saved) = causal_attention_in(&pool, &q, &k, &v, offset);
        let (out_n, probs_n) = naive::causal_attention(&q, &k, &v, offset);
        prop_assert!(out.max_abs_diff(&out_n) < 1e-5);
        prop_assert!(saved.probs.max_abs_diff(&probs_n) < 1e-5);

        let (dq, dk, dv) = causal_attention_backward_in(&pool, &dout, &q, &k, &v, &saved);
        let (dq_n, dk_n, dv_n) =
            naive::causal_attention_backward(&dout, &q, &k, &v, &probs_n);
        prop_assert!(dq.max_abs_diff(&dq_n) < 1e-5);
        prop_assert!(dk.max_abs_diff(&dk_n) < 1e-5);
        prop_assert!(dv.max_abs_diff(&dv_n) < 1e-5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire round trip is bit-exact for arbitrary shapes and payloads,
    /// including NaN/inf bit patterns injected at arbitrary positions.
    #[test]
    fn wire_round_trip_is_bit_exact(
        rows in 0usize..17,
        cols in 0usize..23,
        seed in 0u64..1000,
        special in 0u32..6,
    ) {
        let mut r = rng(seed);
        let mut t = uniform(rows.max(1), cols.max(1), 1e3, &mut r);
        // Overwrite a few positions with non-finite / denormal payloads.
        let n = t.len();
        let specials = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            f32::from_bits(0x7fc0_dead), // NaN with payload bits
            1e-40,                       // subnormal
        ];
        for (i, s) in specials.iter().take(special as usize).enumerate() {
            let idx = (seed as usize + i * 7) % n;
            t.data_mut()[idx] = *s;
        }
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let (back, used) = Tensor::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!((back.rows(), back.cols()), (t.rows(), t.cols()));
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every strict prefix of a frame is rejected as truncated — no
    /// partial frame ever decodes into a tensor.
    #[test]
    fn wire_truncation_always_rejected(
        rows in 1usize..9,
        cols in 1usize..9,
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let t = uniform(rows, cols, 1.0, &mut r);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let cut = ((buf.len() as f64) * cut_frac) as usize; // strictly < len
        prop_assert!(Tensor::decode(&buf[..cut.min(buf.len() - 1)]).is_err());
    }

    /// Decoding with trailing garbage consumes exactly one frame and
    /// still round-trips bitwise.
    #[test]
    fn wire_decode_consumes_one_frame(
        rows in 1usize..9,
        cols in 1usize..9,
        trailer in 0usize..32,
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let t = uniform(rows, cols, 1.0, &mut r);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let frame_len = buf.len();
        buf.extend(std::iter::repeat_n(0x5Au8, trailer));
        let (back, used) = Tensor::decode(&buf).unwrap();
        prop_assert_eq!(used, frame_len);
        prop_assert!(back.max_abs_diff(&t) == 0.0);
    }
}
