//! GPipe scheduling: all forwards, then all backwards.
//!
//! GPipe (Huang et al., NeurIPS '19) divides a batch into micro-batches
//! and runs every forward pass before any backward pass, so each worker
//! retains the activations of all `n` micro-batches — the memory behaviour
//! the 1F1B family was invented to fix (Section 2.1).

use crate::ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta};

/// Generates a GPipe schedule for `stages` stages and `micro_batches`
/// micro-batches.
pub(crate) fn build(stages: usize, micro_batches: usize) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "GPipe".into(),
        stages,
        virtual_chunks: 1,
        slices: 1,
        micro_batches,
        split_backward: false,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape()?;
    let workers = (0..stages)
        .map(|_| {
            let mut ops = Vec::with_capacity(2 * micro_batches);
            for mb in 0..micro_batches {
                ops.push(Op::new(OpKind::Forward, mb, 0, 0));
            }
            for mb in 0..micro_batches {
                ops.push(Op::new(OpKind::Backward, mb, 0, 0));
            }
            ops
        })
        .collect();
    Ok(Schedule { meta, workers })
}

/// Generates a GPipe schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn gpipe_is_valid_and_memory_hungry() {
        let s = build(4, 8).unwrap();
        validate(&s).unwrap();
        // Every worker holds all n micro-batches at the forward/backward
        // boundary.
        assert_eq!(peak_in_flight(&s), vec![8, 8, 8, 8]);
    }

    #[test]
    fn gpipe_bubble_ratio_matches_formula() {
        // With fwd = bwd = 1, GPipe's bubble fraction is
        // 2(p-1) / (2n + 2(p-1)).
        let (p, n) = (4usize, 8usize);
        let s = build(p, n).unwrap();
        let t = execute(&s, &UnitCost::ones()).unwrap();
        let expected = 2.0 * (p as f64 - 1.0) / (2.0 * n as f64 + 2.0 * (p as f64 - 1.0));
        assert!(
            (t.bubble_ratio() - expected).abs() < 1e-9,
            "got {}, want {expected}",
            t.bubble_ratio()
        );
    }

    #[test]
    fn zero_stage_is_rejected() {
        assert!(build(0, 4).is_err());
        assert!(build(4, 0).is_err());
    }
}
