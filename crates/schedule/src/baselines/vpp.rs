//! Megatron-LM interleaved virtual pipeline parallelism (VPP).
//!
//! VPP splits the model into `v` chunks per stage (interleaved placement)
//! and runs 1F1B over chunk-level units. Micro-batches are processed in
//! groups of `p`: within a group the scheduler sweeps chunk 0 across the
//! group's `p` micro-batches, then chunk 1, and so on, which keeps every
//! stage fed during the fill phase. Stage `w` warms up with
//! `2(p − 1 − w) + (v − 1)·p` chunk passes — the reason VPP's peak
//! activation count is `v·p + p − 1` units (Table 3: `(1 + (p−1)/(p·v))·A`).

use crate::ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta};

/// Generates a Megatron-style interleaved VPP schedule.
///
/// Requires `micro_batches % stages == 0` (Megatron's own constraint for
/// the interleaved scheduler).
pub(crate) fn build(
    stages: usize,
    virtual_chunks: usize,
    micro_batches: usize,
) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "VPP".into(),
        stages,
        virtual_chunks,
        slices: 1,
        micro_batches,
        split_backward: false,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape()?;
    if !micro_batches.is_multiple_of(stages) {
        return Err(format!(
            "interleaved VPP requires micro_batches ({micro_batches}) divisible by stages ({stages})"
        ));
    }
    let p = stages;
    let v = virtual_chunks;
    let total = micro_batches * v;

    // Unit `k` of the forward (or backward) sequence on any worker.
    let fwd_unit = |k: usize| -> Op {
        let group = k / (p * v);
        let r = k % (p * v);
        Op::new(OpKind::Forward, group * p + r % p, 0, r / p)
    };
    let bwd_unit = |k: usize| -> Op {
        let group = k / (p * v);
        let r = k % (p * v);
        Op::new(OpKind::Backward, group * p + r % p, 0, v - 1 - r / p)
    };

    let workers = (0..p)
        .map(|w| {
            // Megatron's warmup count; with a single chunk the interleaved
            // scheduler degenerates to plain 1F1B (warmup p − 1 − w).
            let warmup = if v == 1 {
                (p - 1 - w).min(total)
            } else {
                (2 * (p - 1 - w) + (v - 1) * p).min(total)
            };
            let mut ops = Vec::with_capacity(2 * total);
            let mut fi = 0usize;
            let mut bi = 0usize;
            while fi < warmup {
                ops.push(fwd_unit(fi));
                fi += 1;
            }
            while fi < total {
                ops.push(fwd_unit(fi));
                fi += 1;
                ops.push(bwd_unit(bi));
                bi += 1;
            }
            while bi < total {
                ops.push(bwd_unit(bi));
                bi += 1;
            }
            ops
        })
        .collect();
    Ok(Schedule { meta, workers })
}

/// Generates a Megatron interleaved (VPP) schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn vpp_is_valid() {
        for (p, v, n) in [(2usize, 2usize, 4usize), (4, 2, 8), (4, 4, 8), (4, 2, 4)] {
            let s = build(p, v, n).unwrap();
            validate(&s).unwrap_or_else(|_| panic!("p={p} v={v} n={n}"));
        }
    }

    #[test]
    fn indivisible_microbatches_rejected() {
        assert!(build(4, 2, 6).is_err());
    }

    #[test]
    fn v1_reduces_to_dapple_memory() {
        let s = build(4, 1, 8).unwrap();
        validate(&s).unwrap();
        assert_eq!(peak_in_flight(&s)[0], 4);
    }

    #[test]
    fn peak_units_match_table3() {
        // Table 3 VPP memory: (1 + (p-1)/(p·v))·A = (v·p + p − 1) units of
        // A/(p·v) on stage 0.
        let (p, v, n) = (4usize, 2usize, 16usize);
        let s = build(p, v, n).unwrap();
        let peak = peak_in_flight(&s)[0];
        assert_eq!(peak, v * p + p - 1);
    }

    #[test]
    fn bubble_shrinks_with_v() {
        let (p, n) = (4usize, 8usize);
        let b: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&v| {
                let s = build(p, v, n).unwrap();
                // Chunk passes take 1/v the time of a full-stage pass.
                let cost = UnitCost {
                    fwd: 1.0,
                    bwd: 1.0,
                    wgrad: 0.0,
                };
                let t = execute(&s, &cost).unwrap();
                // Normalise: busy work per worker is 2·n·v ticks regardless
                // of v only because chunk ticks shrink; compare ratios.
                t.bubble_ratio()
            })
            .collect();
        assert!(b[1] < b[0], "v=2 should beat v=1: {b:?}");
        assert!(b[2] < b[1], "v=4 should beat v=2: {b:?}");
    }

    #[test]
    fn bubble_close_to_table3_formula() {
        // Table 3: (p-1)/(p-1+n·v). The interleaved schedule has a few
        // extra transition bubbles, so allow a modest tolerance.
        let (p, v, n) = (4usize, 2usize, 16usize);
        let s = build(p, v, n).unwrap();
        let t = execute(&s, &UnitCost::ones()).unwrap();
        let expected = (p as f64 - 1.0) / (p as f64 - 1.0 + (n * v) as f64);
        assert!(
            (t.bubble_ratio() - expected).abs() < 0.06,
            "got {}, want ~{expected}",
            t.bubble_ratio()
        );
    }
}
