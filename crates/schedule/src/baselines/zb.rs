//! ZB-1P: zero-bubble pipeline parallelism over the 1F1B skeleton.
//!
//! Zero bubble PP (Qi et al., ICLR '24) splits every backward pass into an
//! input-gradient half `B` (on the critical path — it feeds the upstream
//! stage) and a weight-gradient half `W` (free to float). The static list
//! here places each `W` right after its `B`, which is exactly DAPPLE; the
//! zero-bubble effect comes from *deferring* `W`s into bubbles, which the
//! simulator performs with its dynamic weight-gradient drain — the same
//! mechanism MEPipe refines to GEMM granularity (Section 5).

use crate::{
    baselines::dapple::one_f_one_b_order,
    ir::{ChunkPlacement, Schedule, ScheduleMeta},
};

/// Generates a ZB-1P schedule (split-backward 1F1B).
pub(crate) fn build(stages: usize, micro_batches: usize) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "ZB".into(),
        stages,
        virtual_chunks: 1,
        slices: 1,
        micro_batches,
        split_backward: true,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape()?;
    let workers = (0..stages)
        .map(|w| one_f_one_b_order(stages, micro_batches, w, true))
        .collect();
    Ok(Schedule { meta, workers })
}

/// Generates a ZB-1P schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::ir::OpKind;
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn zb_is_valid() {
        for (p, n) in [(2usize, 4usize), (4, 8), (8, 16)] {
            let s = build(p, n).unwrap();
            validate(&s).expect("valid");
        }
    }

    #[test]
    fn zb_has_three_ops_per_unit() {
        let s = build(4, 8).unwrap();
        assert_eq!(s.workers[0].len(), 3 * 8);
        let weights = s.workers[0]
            .iter()
            .filter(|o| o.kind == OpKind::BackwardWeight)
            .count();
        assert_eq!(weights, 8);
    }

    #[test]
    fn same_peak_activations_as_dapple() {
        let zb = build(4, 8).unwrap();
        let dapple = crate::baselines::dapple::build(4, 8).unwrap();
        assert_eq!(peak_in_flight(&zb), peak_in_flight(&dapple));
    }

    #[test]
    fn splitting_b_shortens_the_critical_path() {
        // With B = 1 and W = 1 (together equal to DAPPLE's fused bwd = 2),
        // the split schedule can finish no later even in the static layout,
        // and the downstream stage unblocks earlier.
        let (p, n) = (4usize, 8usize);
        let zb = build(p, n).unwrap();
        let da = crate::baselines::dapple::build(p, n).unwrap();
        let tz = execute(
            &zb,
            &UnitCost {
                fwd: 1.0,
                bwd: 1.0,
                wgrad: 1.0,
            },
        )
        .unwrap();
        let td = execute(
            &da,
            &UnitCost {
                fwd: 1.0,
                bwd: 2.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        assert!(tz.makespan <= td.makespan);
    }
}
