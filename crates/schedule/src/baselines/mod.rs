//! Baseline pipeline-scheduling methods from the literature (Section 2).
//!
//! Each generator returns a validated-shape [`crate::ir::Schedule`]; the
//! shared validator and executors treat them identically to SVPP.

pub mod dapple;
pub mod gpipe;
pub mod hanayo;
pub mod terapipe;
pub mod vpp;
pub mod zb;
pub mod zbv;
