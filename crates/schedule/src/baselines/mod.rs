//! Baseline pipeline-scheduling methods from the literature (Section 2).
//!
//! Each generator returns a validated-shape [`crate::ir::Schedule`]; the
//! shared validator and executors treat them identically to SVPP.

pub mod dapple;
pub mod gpipe;
pub mod hanayo;
pub mod terapipe;
pub mod vpp;
pub mod zb;
pub mod zbv;

pub use dapple::generate_dapple;
pub use gpipe::generate_gpipe;
pub use hanayo::generate_hanayo;
pub use terapipe::generate_terapipe;
pub use vpp::generate_vpp;
pub use zb::generate_zb;
pub use zbv::generate_zbv;
