//! Baseline pipeline-scheduling methods from the literature (Section 2).
//!
//! Each generator returns a validated-shape [`crate::ir::Schedule`]; the
//! shared validator and executors treat them identically to SVPP.

pub mod dapple;
pub mod gpipe;
pub mod hanayo;
pub mod terapipe;
pub mod vpp;
pub mod zb;
pub mod zbv;

// Deprecated free-function entry points, kept for one release. New code
// goes through `crate::generator::{ScheduleGenerator, Dims}`.
#[allow(deprecated)]
pub use dapple::generate_dapple;
#[allow(deprecated)]
pub use gpipe::generate_gpipe;
#[allow(deprecated)]
pub use hanayo::generate_hanayo;
#[allow(deprecated)]
pub use terapipe::generate_terapipe;
#[allow(deprecated)]
pub use vpp::generate_vpp;
#[allow(deprecated)]
pub use zb::generate_zb;
#[allow(deprecated)]
pub use zbv::generate_zbv;
