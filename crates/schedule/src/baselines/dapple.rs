//! DAPPLE / PipeDream-flush 1F1B scheduling (Figure 2 of the paper).
//!
//! Worker `w` warms up with `min(p − 1 − w, n)` forward passes, then
//! alternates one forward with one backward, and drains the remaining
//! backwards. The first stage holds `p` micro-batches of activations at
//! its peak — the memory behaviour MEPipe attacks.

use crate::ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta};

/// Generates a DAPPLE (1F1B) schedule.
pub(crate) fn build(stages: usize, micro_batches: usize) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "DAPPLE".into(),
        stages,
        virtual_chunks: 1,
        slices: 1,
        micro_batches,
        split_backward: false,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape()?;
    let workers = (0..stages)
        .map(|w| one_f_one_b_order(stages, micro_batches, w, false))
        .collect();
    Ok(Schedule { meta, workers })
}

/// The canonical 1F1B op order for one worker; shared with the ZB-1P
/// generator (which splits each backward).
pub(crate) fn one_f_one_b_order(
    stages: usize,
    micro_batches: usize,
    worker: usize,
    split: bool,
) -> Vec<Op> {
    let warmup = (stages - 1 - worker).min(micro_batches);
    let mut ops = Vec::new();
    let push_b = |ops: &mut Vec<Op>, mb: usize| {
        if split {
            ops.push(Op::new(OpKind::BackwardInput, mb, 0, 0));
            ops.push(Op::new(OpKind::BackwardWeight, mb, 0, 0));
        } else {
            ops.push(Op::new(OpKind::Backward, mb, 0, 0));
        }
    };
    for mb in 0..warmup {
        ops.push(Op::new(OpKind::Forward, mb, 0, 0));
    }
    let mut next_b = 0usize;
    for mb in warmup..micro_batches {
        ops.push(Op::new(OpKind::Forward, mb, 0, 0));
        push_b(&mut ops, next_b);
        next_b += 1;
    }
    while next_b < micro_batches {
        push_b(&mut ops, next_b);
        next_b += 1;
    }
    ops
}

/// Generates a DAPPLE (1F1B) schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn dapple_is_valid() {
        for (p, n) in [(2usize, 2usize), (4, 8), (8, 16), (4, 2)] {
            let s = build(p, n).unwrap();
            validate(&s).expect("valid");
        }
    }

    #[test]
    fn first_stage_holds_p_microbatches() {
        // Section 2.1: "the first stage still needs to save activations
        // for p forward passes".
        let s = build(4, 8).unwrap();
        let peaks = peak_in_flight(&s);
        assert_eq!(peaks[0], 4);
        assert_eq!(peaks[3], 1);
        // Monotone decrease across stages.
        assert!(peaks.windows(2).all(|x| x[0] >= x[1]));
    }

    #[test]
    fn bubble_matches_table3_formula() {
        // Table 3: bubble ratio (p-1)/(p-1+n) with balanced F/B; with
        // fwd = bwd = 1 the makespan is 2n + 2(p-1).
        for (p, n) in [(4usize, 8usize), (8, 16), (4, 4)] {
            let s = build(p, n).unwrap();
            let t = execute(&s, &UnitCost::ones()).unwrap();
            let expected = (p as f64 - 1.0) / (p as f64 - 1.0 + n as f64);
            assert!(
                (t.bubble_ratio() - expected).abs() < 1e-9,
                "p={p} n={n}: got {}, want {expected}",
                t.bubble_ratio()
            );
        }
    }

    #[test]
    fn fewer_microbatches_than_stages_still_valid() {
        let s = build(8, 3).unwrap();
        validate(&s).unwrap();
        assert_eq!(peak_in_flight(&s)[0], 3);
    }
}
