//! ZBV: zero-bubble scheduling over a V-shaped two-chunk placement.
//!
//! ZBV (Qi et al.) gives every worker two model chunks placed in a "V":
//! chunk 0 descends the stages, chunk 1 climbs back, so stage 0 hosts both
//! the model's entry and its exit. The loss is therefore computed on stage
//! 0 and backward chains start where forwards end, shrinking fill/drain
//! bubbles. Backwards are split zero-bubble style. The paper uses ZBV as
//! the strongest baseline but notes it replicates more parameters per
//! worker (only `p = slots/2` stages possible) and consumes more memory
//! (Section 7.2).
//!
//! Generation uses the shared greedy capacity-bounded generator with the
//! V placement; capacities default to `2(p − w)` chunk units (stage 0's
//! natural fill under the V shape), floored at 2.

use crate::{
    generate::greedy_generate,
    ir::{ChunkPlacement, Schedule, ScheduleMeta},
};

/// Generates a ZBV schedule: `stages` stages, two V-placed chunks each.
pub(crate) fn build(stages: usize, micro_batches: usize) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "ZBV".into(),
        stages,
        virtual_chunks: 2,
        slices: 1,
        micro_batches,
        split_backward: true,
        placement: ChunkPlacement::VShape,
    };
    meta.check_shape()?;
    // ZBV bounds activation memory to the 1F1B level — `p` full-stage
    // units, i.e. `2p` half-size chunk units — roughly uniformly across
    // stages (the balanced memory profile is one of ZBV's selling points).
    let caps: Vec<usize> = vec![(2 * stages).max(2); stages];
    greedy_generate(&meta, &caps)
}

/// Generates a ZBV schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn zbv_is_valid() {
        for (p, n) in [(2usize, 4usize), (4, 8), (4, 4), (8, 8)] {
            let s = build(p, n).unwrap();
            validate(&s).unwrap_or_else(|_| panic!("p={p} n={n}"));
        }
    }

    #[test]
    fn stage0_peak_is_about_2p() {
        let s = build(4, 8).unwrap();
        let peaks = peak_in_flight(&s);
        assert!(peaks[0] <= 8, "peaks = {peaks:?}");
        assert!(peaks[0] >= 4, "peaks = {peaks:?}");
    }

    #[test]
    fn zbv_beats_dapple_bubbles_at_equal_work() {
        let (p, n) = (4usize, 8usize);
        let zbv = build(p, n).unwrap();
        let da = crate::baselines::dapple::build(p, n).unwrap();
        // ZBV chunk ops are half-size: F/B/W = 1 tick each per half-chunk
        // vs DAPPLE's 2-tick forward / 4-tick fused backward.
        let tz = execute(
            &zbv,
            &UnitCost {
                fwd: 1.0,
                bwd: 1.0,
                wgrad: 1.0,
            },
        )
        .unwrap();
        let td = execute(
            &da,
            &UnitCost {
                fwd: 2.0,
                bwd: 4.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        assert!(
            tz.bubble_ratio() < td.bubble_ratio(),
            "zbv {} vs dapple {}",
            tz.bubble_ratio(),
            td.bubble_ratio()
        );
    }
}
