//! TeraPipe: token-level (slice-level) sequence pipeline parallelism
//! scheduled GPipe-style (Figure 3 of the paper).
//!
//! TeraPipe cuts every sample into `s` token slices and pipelines the
//! slices, exploiting causal attention: slice `i` only needs the key/value
//! tensors of slices `≤ i`. Scheduling, however, remains GPipe-shaped —
//! all forward passes of all samples run before the first backward pass —
//! so every worker retains the activations of the *entire batch*
//! (`n/p · A` per worker, Table 3), the memory problem SVPP solves.

use crate::ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta};

/// Generates a TeraPipe schedule: `stages` stages, `micro_batches`
/// samples, `slices` slices per sample.
pub(crate) fn build(
    stages: usize,
    micro_batches: usize,
    slices: usize,
) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "TeraPipe".into(),
        stages,
        virtual_chunks: 1,
        slices,
        micro_batches,
        split_backward: false,
        placement: ChunkPlacement::Interleaved,
    };
    meta.check_shape()?;
    let workers = (0..stages)
        .map(|_| {
            let mut ops = Vec::with_capacity(2 * micro_batches * slices);
            for mb in 0..micro_batches {
                for sl in 0..slices {
                    ops.push(Op::new(OpKind::Forward, mb, sl, 0));
                }
            }
            // Backwards mirror the forwards: same sample order, slices
            // reversed (dK/dV accumulate from later slices first).
            for mb in 0..micro_batches {
                for sl in (0..slices).rev() {
                    ops.push(Op::new(OpKind::Backward, mb, sl, 0));
                }
            }
            ops
        })
        .collect();
    Ok(Schedule { meta, workers })
}

/// Generates a TeraPipe schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn terapipe_is_valid() {
        for (p, n, s) in [(4usize, 4usize, 2usize), (4, 8, 4), (8, 4, 8), (2, 1, 4)] {
            let sch = build(p, n, s).unwrap();
            validate(&sch).expect("valid");
        }
    }

    #[test]
    fn all_activations_retained() {
        // Section 2.1: "workers need to preserve the activations of all
        // samples before processing the first backward passes".
        let sch = build(4, 8, 4).unwrap();
        assert_eq!(peak_in_flight(&sch), vec![32; 4]);
    }

    #[test]
    fn bubble_matches_table3_formula() {
        // Table 3: (p-1)/(ns+p-1). With unit costs the forward phase spans
        // ns + p - 1 and the backward phase the same, both with p-1 idle.
        for (p, n, s) in [(4usize, 8usize, 2usize), (4, 4, 4), (8, 8, 2)] {
            let sch = build(p, n, s).unwrap();
            let t = execute(&sch, &UnitCost::ones()).unwrap();
            let expected = (p as f64 - 1.0) / (n as f64 * s as f64 + p as f64 - 1.0);
            assert!(
                (t.bubble_ratio() - expected).abs() < 1e-9,
                "p={p} n={n} s={s}: got {}, want {expected}",
                t.bubble_ratio()
            );
        }
    }

    #[test]
    fn finer_slices_shrink_bubbles() {
        let coarse = build(4, 4, 1).unwrap();
        let fine = build(4, 4, 8).unwrap();
        let bc = execute(&coarse, &UnitCost::ones()).unwrap().bubble_ratio();
        let bf = execute(&fine, &UnitCost::ones()).unwrap().bubble_ratio();
        assert!(bf < bc);
    }
}
