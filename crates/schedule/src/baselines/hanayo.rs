//! Hanayo: wave-like pipeline scheduling (Liu et al., SC '23).
//!
//! Hanayo runs `v` *waves* over the stages — even waves sweep down the
//! pipeline, odd waves sweep back up — achieving the interleaved-pipeline
//! bubble ratio `(p−1)/(p−1+n·v)` (Table 3) **without** replicating
//! parameters the way Chimera's bidirectional pipelines do. The cost is
//! memory: the activation footprint stays at `A` per worker (Table 3),
//! because each worker ultimately hosts a slice of every wave.
//!
//! Generation uses the shared greedy capacity-bounded generator over the
//! zigzag [`ChunkPlacement::Wave`] with capacities allowing the full-`A`
//! footprint.

use crate::{
    generate::greedy_generate,
    ir::{ChunkPlacement, Schedule, ScheduleMeta},
};

/// Generates a Hanayo wave schedule: `stages` stages, `waves` chunks per
/// stage laid out as a zigzag, `micro_batches` micro-batches.
pub(crate) fn build(stages: usize, waves: usize, micro_batches: usize) -> Result<Schedule, String> {
    let meta = ScheduleMeta {
        name: "Hanayo".into(),
        stages,
        virtual_chunks: waves,
        slices: 1,
        micro_batches,
        split_backward: false,
        placement: ChunkPlacement::Wave,
    };
    meta.check_shape()?;
    // Table 3: Hanayo's activation footprint is A — p·v chunk units. The
    // generator's whole-pair reservation is conservative by up to v units,
    // so grant that headroom to reach the analytic footprint.
    let caps = vec![stages * waves + waves; stages];
    greedy_generate(&meta, &caps)
}

/// Generates a Hanayo wave schedule.
///
#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, UnitCost};
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn hanayo_is_valid() {
        for (p, v, n) in [(2usize, 2usize, 4usize), (4, 2, 8), (4, 3, 6), (4, 4, 8)] {
            let s = build(p, v, n).unwrap();
            validate(&s).unwrap_or_else(|_| panic!("p={p} v={v} n={n}"));
        }
    }

    #[test]
    fn wave_placement_round_trips() {
        use crate::ir::ChunkPlacement;
        let pl = ChunkPlacement::Wave;
        for p in [2usize, 4, 8] {
            for v in [1usize, 2, 3, 4] {
                for g in 0..p * v {
                    let (w, c) = pl.stage_chunk_of(p, g);
                    assert_eq!(pl.global_pos(p, w, c), g);
                    assert!(w < p && c < v);
                }
            }
        }
        // Wave at v = 2 equals VShape.
        for w in 0..4 {
            for c in 0..2 {
                assert_eq!(
                    pl.global_pos(4, w, c),
                    ChunkPlacement::VShape.global_pos(4, w, c)
                );
            }
        }
    }

    #[test]
    fn bubble_near_table3_formula() {
        // Table 3: (p−1)/(p−1+n·v). Waves shorten fill/drain like VPP.
        let (p, v, n) = (4usize, 2usize, 8usize);
        let s = build(p, v, n).unwrap();
        let t = execute(&s, &UnitCost::ones()).unwrap();
        let expected = (p as f64 - 1.0) / (p as f64 - 1.0 + (n * v) as f64);
        assert!(
            (t.bubble_ratio() - expected).abs() < 0.08,
            "got {}, want ~{expected}",
            t.bubble_ratio()
        );
    }

    #[test]
    fn waves_beat_plain_1f1b() {
        let (p, n) = (4usize, 8usize);
        let h = build(p, 2, n).unwrap();
        let d = crate::baselines::dapple::build(p, n).unwrap();
        let th = execute(&h, &UnitCost::ones()).unwrap();
        let td = execute(
            &d,
            &UnitCost {
                fwd: 2.0,
                bwd: 2.0,
                wgrad: 0.0,
            },
        )
        .unwrap();
        assert!(
            th.bubble_ratio() < td.bubble_ratio(),
            "hanayo {} vs dapple {}",
            th.bubble_ratio(),
            td.bubble_ratio()
        );
    }

    #[test]
    fn memory_footprint_exceeds_vpp_style_floor() {
        // Table 3 charges Hanayo a full A; our greedy realisation drains
        // backwards eagerly and lands below that bound, but each stage
        // still retains several wave units at its peak.
        let s = build(4, 2, 16).unwrap();
        let peaks = peak_in_flight(&s);
        assert!(peaks[0] >= 3, "peaks = {peaks:?}");
        assert!(peaks.iter().all(|&x| x <= 4 * 2 + 2), "peaks = {peaks:?}");
    }
}
