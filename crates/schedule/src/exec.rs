//! Static list-order execution timing.
//!
//! Given a schedule and per-op costs, compute when each op starts and
//! finishes if every worker executes its list strictly in order, starting
//! each op as soon as its producers (plus any cross-stage transfer) have
//! finished. This is the timing semantics every pipeline-parallel paper's
//! diagrams assume; the full simulator in `mepipe-sim` layers memory
//! tracking and dynamic weight-gradient draining on top.

use std::collections::HashMap;

use crate::{
    deps::dependencies,
    ir::{Op, OpKind, Schedule},
};

/// Pluggable per-op costs.
pub trait CostFn {
    /// Execution time of `op` on `stage`, in seconds (or abstract units).
    fn duration(&self, stage: usize, op: Op) -> f64;

    /// Transfer time for the tensor satisfying a cross-stage dependency.
    fn transfer(&self, from_stage: usize, to_stage: usize, op: Op) -> f64;
}

/// Uniform unit costs: every pass takes `fwd` (forwards) or `bwd`
/// (backwards) time units, transfers are free — the setting of the paper's
/// Table 3 analysis.
#[derive(Debug, Clone, Copy)]
pub struct UnitCost {
    /// Duration of one forward pass.
    pub fwd: f64,
    /// Duration of one fused or input-gradient backward pass.
    pub bwd: f64,
    /// Duration of one weight-gradient op.
    pub wgrad: f64,
}

impl UnitCost {
    /// Forward = 1, backward = 1, weight = 1 — pure slot counting.
    pub fn ones() -> Self {
        Self {
            fwd: 1.0,
            bwd: 1.0,
            wgrad: 1.0,
        }
    }

    /// The conventional 1F/2B weighting: backwards take twice as long.
    pub fn one_two() -> Self {
        Self {
            fwd: 1.0,
            bwd: 2.0,
            wgrad: 0.0,
        }
    }
}

impl CostFn for UnitCost {
    fn duration(&self, _stage: usize, op: Op) -> f64 {
        match op.kind {
            OpKind::Forward => self.fwd,
            OpKind::Backward | OpKind::BackwardInput => self.bwd,
            OpKind::BackwardWeight => self.wgrad,
        }
    }

    fn transfer(&self, _from: usize, _to: usize, _op: Op) -> f64 {
        0.0
    }
}

/// Timing of one executed op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placed {
    /// Worker the op ran on.
    pub stage: usize,
    /// The op.
    pub op: Op,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Full execution trace of a schedule.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// All ops with their times, in completion order.
    pub placed: Vec<Placed>,
    /// Completion time of the whole iteration.
    pub makespan: f64,
    /// Busy time per worker.
    pub busy: Vec<f64>,
}

impl ExecTrace {
    /// Idle fraction of one worker over the iteration.
    pub fn bubble_ratio_of(&self, stage: usize) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        1.0 - self.busy[stage] / self.makespan
    }

    /// Mean idle fraction over all workers — the paper's "bubble ratio".
    pub fn bubble_ratio(&self) -> f64 {
        if self.busy.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.busy.len()).map(|w| self.bubble_ratio_of(w)).sum();
        sum / self.busy.len() as f64
    }

    /// Start/end lookup for one op on one stage.
    pub fn time_of(&self, stage: usize, op: Op) -> Option<(f64, f64)> {
        self.placed
            .iter()
            .find(|p| p.stage == stage && p.op == op)
            .map(|p| (p.start, p.end))
    }
}

/// Executes the schedule in strict per-worker list order.
///
/// Returns `Err` on deadlock (which [`crate::validate::validate`] would
/// also catch).
pub fn execute(schedule: &Schedule, cost: &dyn CostFn) -> Result<ExecTrace, String> {
    let meta = &schedule.meta;
    let nw = schedule.num_workers();
    let mut next = vec![0usize; nw];
    let mut free_at = vec![0.0f64; nw];
    let mut busy = vec![0.0f64; nw];
    let mut finished: HashMap<(usize, Op), f64> = HashMap::with_capacity(schedule.num_ops());
    let mut placed = Vec::with_capacity(schedule.num_ops());
    let total = schedule.num_ops();

    while placed.len() < total {
        // Pick, among workers whose next op is dependency-ready, the one
        // that can start earliest (deterministic tie-break by stage index).
        let mut best: Option<(f64, usize)> = None;
        for w in 0..nw {
            if next[w] >= schedule.workers[w].len() {
                continue;
            }
            let op = schedule.workers[w][next[w]];
            let mut ready = free_at[w];
            let mut ok = true;
            for d in dependencies(meta, w, op) {
                match finished.get(&(d.stage, d.op)) {
                    Some(&t) => {
                        let arrival = if d.cross_stage {
                            t + cost.transfer(d.stage, w, op)
                        } else {
                            t
                        };
                        ready = ready.max(arrival);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && best.is_none_or(|(bt, _)| ready < bt) {
                best = Some((ready, w));
            }
        }
        let (start, w) = best.ok_or_else(|| {
            let (w, op) = (0..nw)
                .find(|&w| next[w] < schedule.workers[w].len())
                .map(|w| (w, schedule.workers[w][next[w]]))
                .expect("unfinished worker exists");
            format!("deadlock executing {op} on worker {w}")
        })?;
        let op = schedule.workers[w][next[w]];
        let dur = cost.duration(w, op);
        let end = start + dur;
        finished.insert((w, op), end);
        placed.push(Placed {
            stage: w,
            op,
            start,
            end,
        });
        free_at[w] = end;
        busy[w] += dur;
        next[w] += 1;
    }

    let makespan = free_at.iter().copied().fold(0.0, f64::max);
    Ok(ExecTrace {
        placed,
        makespan,
        busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ChunkPlacement, ScheduleMeta};

    fn two_stage_two_mb() -> Schedule {
        let meta = ScheduleMeta {
            name: "t".into(),
            stages: 2,
            virtual_chunks: 1,
            slices: 1,
            micro_batches: 2,
            split_backward: false,
            placement: ChunkPlacement::Interleaved,
        };
        let f = |mb| Op::new(OpKind::Forward, mb, 0, 0);
        let b = |mb| Op::new(OpKind::Backward, mb, 0, 0);
        Schedule {
            meta,
            workers: vec![vec![f(0), f(1), b(0), b(1)], vec![f(0), b(0), f(1), b(1)]],
        }
    }

    #[test]
    fn gpipe_like_timing_is_exact() {
        // Stage0: F0@0-1 F1@1-2; Stage1: F0@1-2 B0@2-3; Stage0: B0@3-4;
        // Stage1: F1@2-3? F1 needs stage0 F1 done @2 and stage1 free @3
        // (after B0) -> F1@3-4, B1@4-5; stage0 B1@5-6. Makespan 6.
        let s = two_stage_two_mb();
        let t = execute(&s, &UnitCost::ones()).unwrap();
        assert_eq!(t.makespan, 6.0);
        assert_eq!(
            t.time_of(0, Op::new(OpKind::Backward, 1, 0, 0)),
            Some((5.0, 6.0))
        );
        assert_eq!(t.busy, vec![4.0, 4.0]);
        assert!((t.bubble_ratio() - (1.0 - 4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn transfers_delay_downstream() {
        struct WithComm;
        impl CostFn for WithComm {
            fn duration(&self, _s: usize, _o: Op) -> f64 {
                1.0
            }
            fn transfer(&self, _f: usize, _t: usize, _o: Op) -> f64 {
                0.5
            }
        }
        let s = two_stage_two_mb();
        let t = execute(&s, &WithComm).unwrap();
        // Every cross-stage hop now adds 0.5.
        assert!(t.makespan > 6.0);
        let (start, _) = t.time_of(1, Op::new(OpKind::Forward, 0, 0, 0)).unwrap();
        assert_eq!(start, 1.5);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut s = two_stage_two_mb();
        s.workers[1].swap(0, 1); // B0 before F0 on the last stage.
        let err = execute(&s, &UnitCost::ones()).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }
}
