//! ASCII rendering of schedule timelines (the paper's Figures 2–7).
//!
//! Each worker is one row; time flows left to right in discrete ticks.
//! Every op paints a three-character token per tick:
//!
//! * first char — op kind (`F` forward, `B` fused backward, `b` input
//!   gradient, `W` weight gradient);
//! * second char — micro-batch as a letter (`a`–`z` for virtual chunk 0,
//!   `A`–`Z` for chunk 1; the paper shades chunks);
//! * third char — slice index digit.
//!
//! Bubbles render as dots, making idle time visually obvious.

use crate::{
    exec::{execute, CostFn, ExecTrace},
    ir::{OpKind, Schedule},
};

/// Renders a schedule using the given (integral-duration) cost function.
///
/// Returns `Err` if the schedule deadlocks or a duration is not a positive
/// whole number of ticks.
///
/// # Examples
///
/// ```
/// use mepipe_schedule::{exec::UnitCost, render::render};
/// use mepipe_schedule::generator::{Dapple, Dims, ScheduleGenerator};
///
/// let out = render(&Dapple.generate(&Dims::new(2, 2)).unwrap(), &UnitCost::ones()).unwrap();
/// assert!(out.starts_with("stage 0: Fa0"));
/// ```
pub fn render(schedule: &Schedule, cost: &dyn CostFn) -> Result<String, String> {
    let trace = execute(schedule, cost)?;
    render_trace(schedule, &trace)
}

/// Renders a pre-computed execution trace.
pub fn render_trace(schedule: &Schedule, trace: &ExecTrace) -> Result<String, String> {
    let ticks = trace.makespan.round() as usize;
    if (trace.makespan - ticks as f64).abs() > 1e-6 {
        return Err(format!(
            "non-integral makespan {} cannot be rendered",
            trace.makespan
        ));
    }
    let nw = schedule.num_workers();
    let mut grid = vec![vec!["...".to_string(); ticks]; nw];
    for p in &trace.placed {
        let s = p.start.round() as usize;
        let e = p.end.round() as usize;
        if (p.start - s as f64).abs() > 1e-6 || (p.end - e as f64).abs() > 1e-6 {
            return Err(format!("op {} has non-integral times", p.op));
        }
        let token = op_token(p.op.kind, p.op.micro_batch, p.op.slice, p.op.chunk);
        for cell in grid[p.stage].iter_mut().take(e).skip(s) {
            *cell = token.clone();
        }
    }
    let mut out = String::new();
    for (w, row) in grid.iter().enumerate() {
        let mut line = format!("stage {w}: ");
        for cell in row {
            line.push_str(cell);
            line.push(' ');
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    Ok(out)
}

fn op_token(kind: OpKind, mb: usize, slice: usize, chunk: usize) -> String {
    let kind_ch = kind.letter();
    let mb_ch = if chunk.is_multiple_of(2) {
        (b'a' + (mb % 26) as u8) as char
    } else {
        (b'A' + (mb % 26) as u8) as char
    };
    let slice_ch = char::from_digit((slice % 10) as u32, 10).expect("digit");
    format!("{kind_ch}{mb_ch}{slice_ch}")
}

/// Compact per-worker op listing (no timing), useful in error messages and
/// snapshot tests.
pub fn render_order(schedule: &Schedule) -> String {
    let mut out = String::new();
    for (w, ops) in schedule.workers.iter().enumerate() {
        out.push_str(&format!("stage {w}:"));
        for op in ops {
            out.push(' ');
            out.push_str(&op_token(op.kind, op.micro_batch, op.slice, op.chunk));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::UnitCost;
    use crate::ir::{ChunkPlacement, Op, ScheduleMeta};

    fn tiny() -> Schedule {
        let meta = ScheduleMeta {
            name: "t".into(),
            stages: 2,
            virtual_chunks: 1,
            slices: 1,
            micro_batches: 1,
            split_backward: false,
            placement: ChunkPlacement::Interleaved,
        };
        Schedule {
            meta,
            workers: vec![
                vec![
                    Op::new(OpKind::Forward, 0, 0, 0),
                    Op::new(OpKind::Backward, 0, 0, 0),
                ],
                vec![
                    Op::new(OpKind::Forward, 0, 0, 0),
                    Op::new(OpKind::Backward, 0, 0, 0),
                ],
            ],
        }
    }

    #[test]
    fn renders_rows_and_bubbles() {
        let out = render(&tiny(), &UnitCost::ones()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("stage 0: Fa0 ... ... Ba0"));
        assert!(lines[1].contains("Fa0 Ba0"));
    }

    #[test]
    fn non_integral_durations_are_rejected() {
        let cost = UnitCost {
            fwd: 0.5,
            bwd: 1.0,
            wgrad: 0.0,
        };
        assert!(render(&tiny(), &cost).is_err());
    }

    #[test]
    fn order_rendering_lists_all_ops() {
        let out = render_order(&tiny());
        assert_eq!(out, "stage 0: Fa0 Ba0\nstage 1: Fa0 Ba0\n");
    }
}
