//! Dependency derivation for schedule operations.
//!
//! Dependencies encode the training semantics of a decoder-only
//! transformer under slice-level pipelining (Sections 2.1 and 4.1):
//!
//! * a forward pass needs the hidden states from the previous global chunk
//!   position (cross-stage transfer) *and*, because causal attention reads
//!   the key/value tensors of every preceding slice, the forward of the
//!   previous slice on the same worker;
//! * a backward pass needs the activation gradient from the next global
//!   position, its own forward's saved activations, *and* the backward of
//!   the next slice on the same worker (whose attention backward produces
//!   dK/dV contributions for this slice);
//! * a weight-gradient op needs its matching input-gradient op.

use crate::ir::{Op, OpKind, ScheduleMeta};

/// One producer an op must wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dep {
    /// The producing op.
    pub op: Op,
    /// Stage (worker) the producer runs on.
    pub stage: usize,
    /// Whether satisfying this dependency moves a tensor between stages.
    pub cross_stage: bool,
}

/// All producers of `op` when placed on `stage` under `meta`.
///
/// # Panics
///
/// Panics if the op's coordinates are outside the meta's shape, or if a
/// weight-gradient op appears in a non-split schedule.
pub fn dependencies(meta: &ScheduleMeta, stage: usize, op: Op) -> Vec<Dep> {
    assert!(
        op.micro_batch < meta.micro_batches,
        "micro-batch out of range: {op}"
    );
    assert!(op.slice < meta.slices, "slice out of range: {op}");
    assert!(op.chunk < meta.virtual_chunks, "chunk out of range: {op}");
    let backward_kind = if meta.split_backward {
        OpKind::BackwardInput
    } else {
        OpKind::Backward
    };
    if let Some(c) = meta.chunk_of_mb(op.micro_batch) {
        assert_eq!(
            op.chunk, c,
            "bidirectional micro-batch on the wrong chunk: {op}"
        );
    }
    let g = meta.chain_pos(op.micro_batch, stage, op.chunk);
    let mut deps = Vec::with_capacity(3);
    match op.kind {
        OpKind::Forward => {
            if g > 0 {
                let (pw, pc) = meta.chain_stage_chunk(op.micro_batch, g - 1);
                deps.push(Dep {
                    op: Op::new(OpKind::Forward, op.micro_batch, op.slice, pc),
                    stage: pw,
                    cross_stage: pw != stage,
                });
            }
            if op.slice > 0 {
                deps.push(Dep {
                    op: Op::new(OpKind::Forward, op.micro_batch, op.slice - 1, op.chunk),
                    stage,
                    cross_stage: false,
                });
            }
        }
        OpKind::Backward | OpKind::BackwardInput => {
            assert_eq!(
                op.kind, backward_kind,
                "backward kind must match meta.split_backward"
            );
            if g < meta.last_chain_pos() {
                let (nw, nc) = meta.chain_stage_chunk(op.micro_batch, g + 1);
                deps.push(Dep {
                    op: Op::new(backward_kind, op.micro_batch, op.slice, nc),
                    stage: nw,
                    cross_stage: nw != stage,
                });
            }
            // Saved activations from this unit's own forward.
            deps.push(Dep {
                op: Op::new(OpKind::Forward, op.micro_batch, op.slice, op.chunk),
                stage,
                cross_stage: false,
            });
            if op.slice + 1 < meta.slices {
                deps.push(Dep {
                    op: Op::new(backward_kind, op.micro_batch, op.slice + 1, op.chunk),
                    stage,
                    cross_stage: false,
                });
            }
        }
        OpKind::BackwardWeight => {
            assert!(
                meta.split_backward,
                "weight-gradient ops only exist in split-backward schedules"
            );
            deps.push(Dep {
                op: Op::new(OpKind::BackwardInput, op.micro_batch, op.slice, op.chunk),
                stage,
                cross_stage: false,
            });
        }
    }
    deps
}

/// Descendant count of a backward op on its own worker — the priority key
/// used by the Section 4.3 rescheduling pass ("we prioritize the backward
/// passes based on the number of their children").
///
/// A backward at `(slice i, chunk j)` unlocks every backward at
/// `(slice ≤ i, chunk ≤ j)` on the same worker except itself, hence
/// `(i + 1)·(j_rank + 1) − 1` where `j_rank` counts how many of the
/// worker's chunks come *after* this one in backward order.
pub fn backward_descendants(meta: &ScheduleMeta, stage: usize, op: Op) -> usize {
    debug_assert!(op.kind.is_backward_pass());
    // Under bidirectional placement a micro-batch occupies exactly one
    // chunk per worker, so there is no same-worker later chunk to unlock.
    let later_chunks = if meta.bidirectional() {
        0
    } else {
        let g = meta.global_pos(stage, op.chunk);
        // Chunks on this worker whose global position is below g (they run
        // after this one in the backward direction).
        (0..meta.virtual_chunks)
            .filter(|&c| meta.global_pos(stage, c) < g)
            .count()
    };
    (op.slice + 1) * (later_chunks + 1) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ChunkPlacement;

    fn meta(p: usize, v: usize, s: usize, split: bool) -> ScheduleMeta {
        ScheduleMeta {
            name: "test".into(),
            stages: p,
            virtual_chunks: v,
            slices: s,
            micro_batches: 4,
            split_backward: split,
            placement: ChunkPlacement::Interleaved,
        }
    }

    #[test]
    fn first_forward_has_no_deps() {
        let m = meta(4, 1, 2, false);
        let d = dependencies(&m, 0, Op::new(OpKind::Forward, 0, 0, 0));
        assert!(d.is_empty());
    }

    #[test]
    fn forward_slice_dep_stays_on_worker() {
        let m = meta(4, 1, 2, false);
        let d = dependencies(&m, 2, Op::new(OpKind::Forward, 0, 1, 0));
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.cross_stage && x.stage == 1));
        assert!(d
            .iter()
            .any(|x| !x.cross_stage && x.stage == 2 && x.op.slice == 0));
    }

    #[test]
    fn interleaved_wraparound_crosses_from_last_to_first() {
        // With v=2, chunk 1 of stage 0 (g=4) depends on chunk 0 of stage 3
        // (g=3) — the Figure 4(b) arrow.
        let m = meta(4, 2, 2, false);
        let d = dependencies(&m, 0, Op::new(OpKind::Forward, 0, 0, 1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].stage, 3);
        assert_eq!(d[0].op.chunk, 0);
        assert!(d[0].cross_stage);
    }

    #[test]
    fn last_stage_backward_needs_own_forward_and_next_slice() {
        let m = meta(4, 1, 2, false);
        // Backward of slice 0 on the last stage (g = last).
        let d = dependencies(&m, 3, Op::new(OpKind::Backward, 0, 0, 0));
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|x| x.op.kind == OpKind::Forward && x.op.slice == 0));
        assert!(d
            .iter()
            .any(|x| x.op.kind == OpKind::Backward && x.op.slice == 1 && !x.cross_stage));
    }

    #[test]
    fn mid_stage_backward_waits_for_downstream() {
        let m = meta(4, 1, 1, false);
        let d = dependencies(&m, 1, Op::new(OpKind::Backward, 2, 0, 0));
        assert!(d
            .iter()
            .any(|x| x.stage == 2 && x.cross_stage && x.op.kind == OpKind::Backward));
    }

    #[test]
    fn weight_op_depends_on_its_input_grad() {
        let m = meta(4, 1, 2, true);
        let d = dependencies(&m, 1, Op::new(OpKind::BackwardWeight, 0, 1, 0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].op.kind, OpKind::BackwardInput);
        assert!(!d[0].cross_stage);
    }

    #[test]
    #[should_panic(expected = "split-backward")]
    fn weight_op_in_fused_schedule_panics() {
        let m = meta(4, 1, 2, false);
        dependencies(&m, 0, Op::new(OpKind::BackwardWeight, 0, 0, 0));
    }

    #[test]
    fn descendant_counts_match_figure4_example() {
        // Section 4.3: in Figure 4(b) — p=4, v=2, s=2 — (Slice 1, Chunk 1)
        // on the last stage has 3 children.
        let m = meta(4, 2, 2, false);
        let op = Op::new(OpKind::Backward, 0, 1, 1);
        assert_eq!(backward_descendants(&m, 3, op), 3);
        // (Slice 0, Chunk 0) is a leaf.
        assert_eq!(
            backward_descendants(&m, 3, Op::new(OpKind::Backward, 0, 0, 0)),
            0
        );
    }

    #[test]
    fn bidirectional_streams_enter_from_opposite_ends() {
        let mut m = meta(4, 2, 1, true);
        m.placement = ChunkPlacement::Bidirectional;
        // Even micro-batch: slice-0 forward on stage 0 chunk 0 is a source.
        assert!(dependencies(&m, 0, Op::new(OpKind::Forward, 0, 0, 0)).is_empty());
        // Odd micro-batch: slice-0 forward on stage 3 chunk 1 is a source.
        assert!(dependencies(&m, 3, Op::new(OpKind::Forward, 1, 0, 1)).is_empty());
        // The odd stream flows downward: stage 2 chunk 1 waits on stage 3.
        let d = dependencies(&m, 2, Op::new(OpKind::Forward, 1, 0, 1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].stage, 3);
        assert_eq!(d[0].op.chunk, 1);
        assert!(d[0].cross_stage);
        // Odd stream's loss sits on stage 0: its backward there needs only
        // its own forward.
        let d = dependencies(&m, 0, Op::new(OpKind::BackwardInput, 1, 0, 1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].op.kind, OpKind::Forward);
        // Even stream's backward on stage 0 waits on stage 1.
        let d = dependencies(&m, 0, Op::new(OpKind::BackwardInput, 0, 0, 0));
        assert!(d
            .iter()
            .any(|x| x.cross_stage && x.stage == 1 && x.op.chunk == 0));
        // No same-worker later chunk: descendants count only slices.
        assert_eq!(
            backward_descendants(&m, 1, Op::new(OpKind::BackwardInput, 0, 0, 0)),
            0
        );
    }

    #[test]
    #[should_panic(expected = "wrong chunk")]
    fn bidirectional_wrong_chunk_panics() {
        let mut m = meta(4, 2, 1, true);
        m.placement = ChunkPlacement::Bidirectional;
        dependencies(&m, 0, Op::new(OpKind::Forward, 1, 0, 0));
    }

    #[test]
    fn vshape_backward_chain_descends() {
        let mut m = meta(4, 2, 1, true);
        m.placement = ChunkPlacement::VShape;
        // Chunk 1 of stage 0 is the last global position (loss there).
        let d = dependencies(&m, 0, Op::new(OpKind::BackwardInput, 0, 0, 1));
        // Only dep: its own forward (plus no downstream, no next slice).
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].op.kind, OpKind::Forward);
    }
}
