//! Schedule statistics: communication message counts and phase structure.
//!
//! Slicing does not change the total bytes crossing stage boundaries
//! (Table 2: SPP's volume equals PP's) but it multiplies the *message
//! count* — each slice is its own transfer, paying per-message latency.
//! These statistics quantify that, and give reports the warmup / steady /
//! drain decomposition of a schedule.

use crate::{
    deps::dependencies,
    ir::{OpKind, Schedule},
};

/// Communication message counts for one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// Cross-stage activation transfers (forward direction).
    pub forward_messages: usize,
    /// Cross-stage gradient transfers (backward direction).
    pub backward_messages: usize,
}

impl MessageStats {
    /// Total transfers per iteration.
    pub fn total(&self) -> usize {
        self.forward_messages + self.backward_messages
    }
}

/// Counts every cross-stage transfer the schedule implies.
pub fn message_stats(schedule: &Schedule) -> MessageStats {
    let mut stats = MessageStats::default();
    for (w, _, op) in schedule.iter_ops() {
        for d in dependencies(&schedule.meta, w, op) {
            if d.cross_stage {
                match op.kind {
                    OpKind::Forward => stats.forward_messages += 1,
                    OpKind::Backward | OpKind::BackwardInput => stats.backward_messages += 1,
                    OpKind::BackwardWeight => {}
                }
            }
        }
    }
    stats
}

/// Phase decomposition of one worker's op list: ops before the first
/// backward (warmup), between first backward and last forward (steady),
/// and after the last forward (drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseLengths {
    /// Ops before the first backward pass.
    pub warmup: usize,
    /// Ops from the first backward through the last forward.
    pub steady: usize,
    /// Ops after the last forward.
    pub drain: usize,
}

/// Computes [`PhaseLengths`] for each worker.
pub fn phase_lengths(schedule: &Schedule) -> Vec<PhaseLengths> {
    schedule
        .workers
        .iter()
        .map(|ops| {
            let first_b = ops
                .iter()
                .position(|o| o.kind.is_backward_pass())
                .unwrap_or(ops.len());
            let last_f = ops
                .iter()
                .rposition(|o| o.kind == OpKind::Forward)
                .map_or(0, |i| i + 1);
            let steady_end = last_f.max(first_b);
            PhaseLengths {
                warmup: first_b,
                steady: steady_end - first_b,
                drain: ops.len() - steady_end,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{dapple, terapipe};

    #[test]
    fn dapple_message_count() {
        // p stages, n micro-batches: (p-1) boundaries crossed by n
        // forwards and n backwards each.
        let (p, n) = (4usize, 8usize);
        let s = dapple::build(p, n).unwrap();
        let m = message_stats(&s);
        assert_eq!(m.forward_messages, (p - 1) * n);
        assert_eq!(m.backward_messages, (p - 1) * n);
    }

    #[test]
    fn slicing_multiplies_messages() {
        // Same p, n: s slices mean s-fold the transfers at 1/s the size.
        let (p, n, slices) = (4usize, 8usize, 4usize);
        let plain = message_stats(&dapple::build(p, n).unwrap());
        let sliced = message_stats(&terapipe::build(p, n, slices).unwrap());
        assert_eq!(sliced.total(), plain.total() * slices);
    }

    #[test]
    fn phases_partition_the_list() {
        let s = dapple::build(4, 8).unwrap();
        for (w, ph) in phase_lengths(&s).iter().enumerate() {
            assert_eq!(
                ph.warmup + ph.steady + ph.drain,
                s.workers[w].len(),
                "worker {w}"
            );
        }
        // Stage 0 has the longest warmup, the last stage none beyond one F.
        let ph = phase_lengths(&s);
        assert!(ph[0].warmup > ph[3].warmup);
        assert_eq!(ph[3].warmup, 1);
    }
}
