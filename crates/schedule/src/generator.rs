//! The unified generation API: one [`Dims`] config, one
//! [`ScheduleGenerator`] trait, one error type.
//!
//! Every scheduling method in the workspace — the seven literature
//! baselines here plus SVPP/MEPipe in `mepipe-core` — generates from the
//! same four pipeline dimensions. Callers pick a generator value, build
//! a [`Dims`], and call [`ScheduleGenerator::generate`]; methods that do
//! not use a dimension (e.g. DAPPLE has no virtual chunks) reject
//! non-default values with [`ScheduleError::Unsupported`] rather than
//! silently ignoring them.

use std::fmt;

use crate::baselines;
use crate::ir::Schedule;

/// Pipeline dimensions shared by every scheduling method.
///
/// Construct with [`Dims::new`] and the builder methods; the struct is
/// `#[non_exhaustive]` so later dimensions (e.g. non-uniform slicing)
/// can be added without breaking callers.
///
/// ```
/// use mepipe_schedule::generator::Dims;
/// let dims = Dims::new(4, 16).virtual_chunks(2).slices(4);
/// assert_eq!((dims.p, dims.v, dims.s, dims.n), (4, 2, 4, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Dims {
    /// Pipeline stages `p`.
    pub p: usize,
    /// Virtual model chunks per stage `v` (1 = no interleaving).
    pub v: usize,
    /// Sequence slices per micro-batch `s` (1 = whole sequences).
    pub s: usize,
    /// Micro-batches per iteration `n`.
    pub n: usize,
}

impl Dims {
    /// Dimensions for `p` stages over `n` micro-batches, with no
    /// virtual chunking (`v = 1`) and whole sequences (`s = 1`).
    pub fn new(p: usize, n: usize) -> Self {
        Dims { p, v: 1, s: 1, n }
    }

    /// Sets the virtual-chunk count `v`.
    pub fn virtual_chunks(mut self, v: usize) -> Self {
        self.v = v;
        self
    }

    /// Sets the sequence-slice count `s`.
    pub fn slices(mut self, s: usize) -> Self {
        self.s = s;
        self
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}v{}s{}n{}", self.p, self.v, self.s, self.n)
    }
}

/// Why a generator rejected its dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The dimensions are outside the method's family (e.g. ZBV is
    /// defined only for `v = 2`).
    Unsupported {
        /// The rejecting method's display name.
        method: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The shape itself is invalid (zero dimensions, inconsistent
    /// op counts, …) — the generation-layer failures shared by all
    /// methods.
    InvalidShape(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unsupported { method, reason } => {
                write!(f, "{method} does not support these dimensions: {reason}")
            }
            ScheduleError::InvalidShape(reason) => write!(f, "invalid shape: {reason}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<String> for ScheduleError {
    fn from(reason: String) -> Self {
        ScheduleError::InvalidShape(reason)
    }
}

impl From<ScheduleError> for String {
    fn from(e: ScheduleError) -> String {
        e.to_string()
    }
}

/// A scheduling method that can build a [`Schedule`] from [`Dims`].
pub trait ScheduleGenerator {
    /// Display name matching the paper's figures.
    fn name(&self) -> &'static str;

    /// Builds the method's schedule for `dims`.
    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError>;
}

/// Rejects dimensions a method has no notion of.
pub(crate) fn require(
    method: &'static str,
    cond: bool,
    reason: impl FnOnce() -> String,
) -> Result<(), ScheduleError> {
    if cond {
        Ok(())
    } else {
        Err(ScheduleError::Unsupported {
            method,
            reason: reason(),
        })
    }
}

/// GPipe: all forwards, then all backwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GPipe;

impl ScheduleGenerator for GPipe {
    fn name(&self) -> &'static str {
        "GPipe"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.v == 1, || {
            format!("no virtual chunks (v = {})", dims.v)
        })?;
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::gpipe::build(dims.p, dims.n)?)
    }
}

/// DAPPLE / PipeDream-flush 1F1B.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dapple;

impl ScheduleGenerator for Dapple {
    fn name(&self) -> &'static str {
        "DAPPLE"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.v == 1, || {
            format!("no virtual chunks (v = {})", dims.v)
        })?;
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::dapple::build(dims.p, dims.n)?)
    }
}

/// Megatron-LM interleaved virtual-pipeline 1F1B.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Vpp;

impl ScheduleGenerator for Vpp {
    fn name(&self) -> &'static str {
        "VPP"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::vpp::build(dims.p, dims.v, dims.n)?)
    }
}

/// Hanayo wave scheduling over a zigzag chunk placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hanayo;

impl ScheduleGenerator for Hanayo {
    fn name(&self) -> &'static str {
        "Hanayo"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::hanayo::build(dims.p, dims.v, dims.n)?)
    }
}

/// TeraPipe: GPipe-style slice-level sequence pipelining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TeraPipe;

impl ScheduleGenerator for TeraPipe {
    fn name(&self) -> &'static str {
        "TeraPipe"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.v == 1, || {
            format!("no virtual chunks (v = {})", dims.v)
        })?;
        Ok(baselines::terapipe::build(dims.p, dims.n, dims.s)?)
    }
}

/// ZB-1P: 1F1B with split backward (zero bubble).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Zb;

impl ScheduleGenerator for Zb {
    fn name(&self) -> &'static str {
        "ZB"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.v == 1, || {
            format!("no virtual chunks (v = {})", dims.v)
        })?;
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::zb::build(dims.p, dims.n)?)
    }
}

/// ZBV: V-shaped two-chunk placement with split backward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Zbv;

impl ScheduleGenerator for Zbv {
    fn name(&self) -> &'static str {
        "ZBV"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        require(self.name(), dims.v == 2, || {
            format!("defined only for v = 2 chunks (v = {})", dims.v)
        })?;
        require(self.name(), dims.s == 1, || {
            format!("no sequence slices (s = {})", dims.s)
        })?;
        Ok(baselines::zbv::build(dims.p, dims.n)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn dims_builder_defaults() {
        let d = Dims::new(8, 16);
        assert_eq!((d.p, d.v, d.s, d.n), (8, 1, 1, 16));
        assert_eq!(d.to_string(), "p8v1s1n16");
    }

    #[test]
    fn every_baseline_generates_valid_schedules() {
        let gens: [(&dyn ScheduleGenerator, Dims); 7] = [
            (&GPipe, Dims::new(4, 8)),
            (&Dapple, Dims::new(4, 8)),
            (&Vpp, Dims::new(4, 8).virtual_chunks(2)),
            (&Hanayo, Dims::new(4, 8).virtual_chunks(2)),
            (&TeraPipe, Dims::new(4, 8).slices(4)),
            (&Zb, Dims::new(4, 8)),
            (&Zbv, Dims::new(4, 8).virtual_chunks(2)),
        ];
        for (g, dims) in gens {
            let sch = g
                .generate(&dims)
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            validate(&sch).unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert_eq!(sch.meta.stages, dims.p, "{}", g.name());
        }
    }

    #[test]
    fn unused_dims_are_rejected_not_ignored() {
        let e = Dapple
            .generate(&Dims::new(4, 8).virtual_chunks(2))
            .unwrap_err();
        assert!(
            matches!(
                e,
                ScheduleError::Unsupported {
                    method: "DAPPLE",
                    ..
                }
            ),
            "{e}"
        );
        let e = Zbv.generate(&Dims::new(4, 8)).unwrap_err();
        assert!(
            matches!(e, ScheduleError::Unsupported { method: "ZBV", .. }),
            "{e}"
        );
        let e = TeraPipe
            .generate(&Dims::new(4, 8).virtual_chunks(3))
            .unwrap_err();
        assert!(e.to_string().contains("virtual chunks"), "{e}");
    }

    #[test]
    fn shape_errors_pass_through() {
        let e = Dapple.generate(&Dims::new(0, 8)).unwrap_err();
        assert!(matches!(e, ScheduleError::InvalidShape(_)), "{e}");
        // The String interop both ways (old callers expect String errors).
        let s = String::from(e.clone());
        assert_eq!(
            ScheduleError::from(s.clone()).to_string(),
            format!("invalid shape: {s}")
        );
    }
}
