//! The schedule intermediate representation.
//!
//! Coordinates follow the paper's notation (Table 1): `p` pipeline stages,
//! `v` virtual chunks per stage, `s` sequence slices per sample, `n`
//! micro-batches per iteration. A schedulable unit is identified by
//! `(micro_batch, slice, chunk)` on a stage; its *global position* along
//! the forward chain is determined by the chunk-placement policy.

use std::fmt;

/// The kind of one schedulable operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Forward pass of one slice through one chunk.
    Forward,
    /// Fused backward pass (input and weight gradients together).
    Backward,
    /// Input-gradient half of a split backward (zero-bubble style "B").
    BackwardInput,
    /// Weight-gradient half of a split backward (zero-bubble style "W").
    BackwardWeight,
}

impl OpKind {
    /// Single-letter tag used by renderers and debug output.
    pub fn letter(self) -> char {
        match self {
            OpKind::Forward => 'F',
            OpKind::Backward => 'B',
            OpKind::BackwardInput => 'b',
            OpKind::BackwardWeight => 'W',
        }
    }

    /// Whether this op is a (full or input-) backward pass.
    pub fn is_backward_pass(self) -> bool {
        matches!(self, OpKind::Backward | OpKind::BackwardInput)
    }
}

/// One schedulable operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Op {
    /// What the op computes.
    pub kind: OpKind,
    /// Micro-batch index in `[0, n)`.
    pub micro_batch: usize,
    /// Sequence-slice index in `[0, s)`.
    pub slice: usize,
    /// Local virtual-chunk index in `[0, v)`.
    pub chunk: usize,
}

impl Op {
    /// Constructs an op.
    pub fn new(kind: OpKind, micro_batch: usize, slice: usize, chunk: usize) -> Self {
        Self {
            kind,
            micro_batch,
            slice,
            chunk,
        }
    }

    /// The same coordinates with a different kind.
    pub fn with_kind(self, kind: OpKind) -> Self {
        Self { kind, ..self }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(mb{},sl{},ck{})",
            self.kind.letter(),
            self.micro_batch,
            self.slice,
            self.chunk
        )
    }
}

/// How virtual chunks are laid out across stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkPlacement {
    /// Megatron interleaving: chunk `c` of stage `w` sits at global
    /// position `c·p + w`; the forward chain loops over the stages `v`
    /// times in the same direction.
    Interleaved,
    /// ZBV / wave "V" placement (requires `v = 2`): chunk 0 descends the
    /// stages (`g = w`), chunk 1 climbs back up (`g = 2p − 1 − w`), so each
    /// worker's two chunks are visited symmetrically.
    VShape,
    /// Hanayo-style wave placement for any `v`: even chunks descend the
    /// stages, odd chunks climb back (a zigzag of `v` waves). Identical to
    /// [`ChunkPlacement::VShape`] at `v = 2`.
    Wave,
    /// DualPipe bidirectional placement (requires `v = 2`, even `n`): the
    /// model is replicated, not interleaved. Stage `w` holds model block
    /// `w` in chunk 0 and block `p − 1 − w` in chunk 1, so *even*
    /// micro-batches traverse the stages `0 → p−1` through the chunk-0
    /// copies while *odd* micro-batches traverse `p−1 → 0` through the
    /// chunk-1 copies. Each micro-batch's forward chain has length `p`
    /// (not `p·v`), and which stage owns a chain position depends on the
    /// micro-batch's direction — use the `ScheduleMeta::chain_*` methods,
    /// which take the micro-batch, instead of the placement-level maps.
    Bidirectional,
}

impl ChunkPlacement {
    /// Global position along the forward chain of `(stage, chunk)` for a
    /// pipeline of `p` stages.
    pub fn global_pos(self, p: usize, stage: usize, chunk: usize) -> usize {
        match self {
            ChunkPlacement::Interleaved => chunk * p + stage,
            ChunkPlacement::VShape => {
                if chunk == 0 {
                    stage
                } else {
                    2 * p - 1 - stage
                }
            }
            ChunkPlacement::Wave => {
                if chunk.is_multiple_of(2) {
                    chunk * p + stage
                } else {
                    chunk * p + (p - 1 - stage)
                }
            }
            // For bidirectional placement the *model block* index: chunk 0
            // of stage `w` is block `w`, chunk 1 is the replica of block
            // `p − 1 − w`. Chain traversal is per-micro-batch — see
            // `ScheduleMeta::chain_pos`.
            ChunkPlacement::Bidirectional => {
                if chunk == 0 {
                    stage
                } else {
                    p - 1 - stage
                }
            }
        }
    }

    /// Inverse of [`ChunkPlacement::global_pos`].
    ///
    /// # Panics
    ///
    /// For [`ChunkPlacement::Bidirectional`] the block → `(stage, chunk)`
    /// map is two-valued (every block has a chunk-0 and a chunk-1 host),
    /// so this panics; callers must use
    /// [`ScheduleMeta::chain_stage_chunk`], which disambiguates by
    /// micro-batch direction.
    pub fn stage_chunk_of(self, p: usize, g: usize) -> (usize, usize) {
        match self {
            ChunkPlacement::Interleaved => (g % p, g / p),
            ChunkPlacement::VShape => {
                if g < p {
                    (g, 0)
                } else {
                    (2 * p - 1 - g, 1)
                }
            }
            ChunkPlacement::Wave => {
                let c = g / p;
                let r = g % p;
                if c.is_multiple_of(2) {
                    (r, c)
                } else {
                    (p - 1 - r, c)
                }
            }
            ChunkPlacement::Bidirectional => {
                panic!("bidirectional placement has no micro-batch-independent chain; use ScheduleMeta::chain_stage_chunk")
            }
        }
    }
}

/// Static description of a schedule's shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleMeta {
    /// Scheduling-method name for reports (e.g. `"DAPPLE"`, `"SVPP"`).
    pub name: String,
    /// Pipeline stages `p`.
    pub stages: usize,
    /// Virtual chunks per stage `v`.
    pub virtual_chunks: usize,
    /// Sequence slices per sample `s`.
    pub slices: usize,
    /// Micro-batches per iteration `n`.
    pub micro_batches: usize,
    /// Whether backward passes are split into input- and weight-gradient
    /// halves (zero-bubble style).
    pub split_backward: bool,
    /// Chunk placement policy.
    pub placement: ChunkPlacement,
}

impl ScheduleMeta {
    /// Total virtual chunk positions along the forward chain.
    pub fn total_chunks(&self) -> usize {
        self.stages * self.virtual_chunks
    }

    /// Last global position (where the loss is computed).
    pub fn last_global_pos(&self) -> usize {
        self.total_chunks() - 1
    }

    /// Global position of `(stage, chunk)`.
    pub fn global_pos(&self, stage: usize, chunk: usize) -> usize {
        self.placement.global_pos(self.stages, stage, chunk)
    }

    /// `(stage, chunk)` owning global position `g`.
    pub fn stage_chunk_of(&self, g: usize) -> (usize, usize) {
        self.placement.stage_chunk_of(self.stages, g)
    }

    /// Whether micro-batches enter the pipeline from both ends.
    pub fn bidirectional(&self) -> bool {
        self.placement == ChunkPlacement::Bidirectional
    }

    /// Length of one micro-batch's forward chain. Equal to
    /// [`ScheduleMeta::total_chunks`] for interleaved placements; `p` for
    /// bidirectional placement, where each micro-batch crosses every stage
    /// exactly once.
    pub fn chain_len(&self) -> usize {
        if self.bidirectional() {
            self.stages
        } else {
            self.total_chunks()
        }
    }

    /// Last chain position (where the loss is computed for a micro-batch).
    pub fn last_chain_pos(&self) -> usize {
        self.chain_len() - 1
    }

    /// Chain position of `(stage, chunk)` along micro-batch `mb`'s
    /// forward chain. For non-bidirectional placements this is
    /// micro-batch-independent and equals [`ScheduleMeta::global_pos`].
    pub fn chain_pos(&self, mb: usize, stage: usize, chunk: usize) -> usize {
        if self.bidirectional() {
            if mb.is_multiple_of(2) {
                debug_assert_eq!(chunk, 0, "even micro-batches run in chunk 0");
                stage
            } else {
                debug_assert_eq!(chunk, 1, "odd micro-batches run in chunk 1");
                self.stages - 1 - stage
            }
        } else {
            self.global_pos(stage, chunk)
        }
    }

    /// `(stage, chunk)` that executes chain position `g` of micro-batch
    /// `mb`. Inverse of [`ScheduleMeta::chain_pos`].
    pub fn chain_stage_chunk(&self, mb: usize, g: usize) -> (usize, usize) {
        if self.bidirectional() {
            if mb.is_multiple_of(2) {
                (g, 0)
            } else {
                (self.stages - 1 - g, 1)
            }
        } else {
            self.stage_chunk_of(g)
        }
    }

    /// Which chunk micro-batch `mb` occupies on any stage it visits.
    /// Non-bidirectional micro-batches visit every chunk.
    pub fn chunk_of_mb(&self, mb: usize) -> Option<usize> {
        if self.bidirectional() {
            Some(mb % 2)
        } else {
            None
        }
    }

    /// Number of model blocks the layer stack divides into. Equals
    /// [`ScheduleMeta::total_chunks`] except under bidirectional
    /// placement, where the two chunks per stage are *replicas*: the model
    /// has `p` blocks and stage `w` hosts blocks `w` and `p − 1 − w`.
    pub fn model_blocks(&self) -> usize {
        if self.bidirectional() {
            self.stages
        } else {
            self.total_chunks()
        }
    }

    /// Model block computed by `(stage, chunk)`.
    pub fn block_of(&self, stage: usize, chunk: usize) -> usize {
        // For every placement this is exactly the placement-level
        // position map (bidirectional defines it as the block index).
        self.placement.global_pos(self.stages, stage, chunk)
    }

    /// Work units (slice × chunk × micro-batch) per worker for one op kind.
    /// Under bidirectional placement each micro-batch visits one chunk per
    /// stage, so the per-worker unit count is `n·s` rather than `n·s·v`.
    pub fn units_per_worker(&self) -> usize {
        if self.bidirectional() {
            self.micro_batches * self.slices
        } else {
            self.micro_batches * self.slices * self.virtual_chunks
        }
    }

    /// Basic shape sanity: nonzero dimensions, V-placement only at `v = 2`,
    /// bidirectional placement only at `v = 2` with an even micro-batch
    /// count (the two streams must be balanced).
    pub fn check_shape(&self) -> Result<(), String> {
        if self.stages == 0 || self.virtual_chunks == 0 || self.slices == 0 {
            return Err("stages, virtual_chunks and slices must be nonzero".into());
        }
        if self.micro_batches == 0 {
            return Err("micro_batches must be nonzero".into());
        }
        if self.placement == ChunkPlacement::VShape && self.virtual_chunks != 2 {
            return Err("V-shaped placement requires exactly 2 chunks per stage".into());
        }
        if self.placement == ChunkPlacement::Bidirectional {
            if self.virtual_chunks != 2 {
                return Err("bidirectional placement requires exactly 2 chunks per stage".into());
            }
            if !self.micro_batches.is_multiple_of(2) {
                return Err("bidirectional placement requires an even micro-batch count".into());
            }
        }
        Ok(())
    }
}

/// A complete schedule: per-worker ordered op lists plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Shape metadata.
    pub meta: ScheduleMeta,
    /// `workers[w]` is the ordered op list executed by stage `w`.
    pub workers: Vec<Vec<Op>>,
}

impl Schedule {
    /// Number of workers (pipeline stages).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total ops across all workers.
    pub fn num_ops(&self) -> usize {
        self.workers.iter().map(Vec::len).sum()
    }

    /// Iterates `(worker, index_in_worker, op)` over the whole schedule.
    pub fn iter_ops(&self) -> impl Iterator<Item = (usize, usize, Op)> + '_ {
        self.workers
            .iter()
            .enumerate()
            .flat_map(|(w, ops)| ops.iter().enumerate().map(move |(i, op)| (w, i, *op)))
    }

    /// Expected op count per worker given the meta (for validation):
    /// forwards + backwards (+ weight ops when split).
    pub fn expected_ops_per_worker(&self) -> usize {
        let units = self.meta.units_per_worker();
        if self.meta.split_backward {
            3 * units
        } else {
            2 * units
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_positions_round_trip() {
        let pl = ChunkPlacement::Interleaved;
        for p in [2usize, 4, 8] {
            for v in [1usize, 2, 4] {
                for w in 0..p {
                    for c in 0..v {
                        let g = pl.global_pos(p, w, c);
                        assert_eq!(pl.stage_chunk_of(p, g), (w, c));
                        assert!(g < p * v);
                    }
                }
            }
        }
    }

    #[test]
    fn vshape_positions_round_trip() {
        let pl = ChunkPlacement::VShape;
        let p = 4;
        assert_eq!(pl.global_pos(p, 0, 0), 0);
        assert_eq!(pl.global_pos(p, 3, 0), 3);
        assert_eq!(pl.global_pos(p, 3, 1), 4);
        assert_eq!(pl.global_pos(p, 0, 1), 7);
        for g in 0..2 * p {
            let (w, c) = pl.stage_chunk_of(p, g);
            assert_eq!(pl.global_pos(p, w, c), g);
        }
    }

    #[test]
    fn vshape_first_and_last_share_stage0() {
        // The defining ZBV property: stage 0 hosts both the entry and the
        // exit chunk, so the loss is computed on stage 0.
        let pl = ChunkPlacement::VShape;
        let p = 8;
        assert_eq!(pl.stage_chunk_of(p, 0).0, 0);
        assert_eq!(pl.stage_chunk_of(p, 2 * p - 1).0, 0);
    }

    #[test]
    fn meta_shape_checks() {
        let mut m = ScheduleMeta {
            name: "t".into(),
            stages: 4,
            virtual_chunks: 2,
            slices: 2,
            micro_batches: 4,
            split_backward: false,
            placement: ChunkPlacement::Interleaved,
        };
        assert!(m.check_shape().is_ok());
        assert_eq!(m.total_chunks(), 8);
        assert_eq!(m.units_per_worker(), 16);
        m.placement = ChunkPlacement::VShape;
        assert!(m.check_shape().is_ok());
        m.virtual_chunks = 3;
        assert!(m.check_shape().is_err());
        m.virtual_chunks = 0;
        assert!(m.check_shape().is_err());
    }

    #[test]
    fn bidirectional_chains_enter_from_both_ends() {
        let m = ScheduleMeta {
            name: "dualpipe".into(),
            stages: 4,
            virtual_chunks: 2,
            slices: 2,
            micro_batches: 4,
            split_backward: true,
            placement: ChunkPlacement::Bidirectional,
        };
        assert!(m.check_shape().is_ok());
        assert!(m.bidirectional());
        assert_eq!(m.chain_len(), 4);
        assert_eq!(m.model_blocks(), 4);
        assert_eq!(m.units_per_worker(), 8);
        // Even micro-batches descend through chunk 0.
        assert_eq!(m.chain_stage_chunk(0, 0), (0, 0));
        assert_eq!(m.chain_stage_chunk(0, 3), (3, 0));
        // Odd micro-batches climb through chunk 1.
        assert_eq!(m.chain_stage_chunk(1, 0), (3, 1));
        assert_eq!(m.chain_stage_chunk(1, 3), (0, 1));
        // Round trip + both chunks of a stage map to mirrored blocks.
        for mb in 0..4 {
            for g in 0..m.chain_len() {
                let (w, c) = m.chain_stage_chunk(mb, g);
                assert_eq!(m.chain_pos(mb, w, c), g);
                assert_eq!(c, m.chunk_of_mb(mb).unwrap());
                // Chain position g always computes model block g: the
                // chunk-1 replica on stage p−1−g hosts block g.
                assert_eq!(m.block_of(w, c), g);
            }
        }
        assert_eq!(m.block_of(0, 0), 0);
        assert_eq!(m.block_of(0, 1), 3);
        assert_eq!(m.block_of(3, 1), 0);
        // Odd micro-batch count rejected.
        let odd = ScheduleMeta {
            micro_batches: 3,
            ..m.clone()
        };
        assert!(odd.check_shape().is_err());
        let v1 = ScheduleMeta {
            virtual_chunks: 1,
            ..m
        };
        assert!(v1.check_shape().is_err());
    }

    #[test]
    fn op_display_is_compact() {
        let op = Op::new(OpKind::BackwardInput, 1, 2, 0);
        assert_eq!(op.to_string(), "b(mb1,sl2,ck0)");
    }
}
