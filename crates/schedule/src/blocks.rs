//! Controllable-memory building-block schedules.
//!
//! "Pipeline Parallelism with Controllable Memory" observes that the
//! hand-written zoo samples a much larger family: a schedule is a repeated
//! *building block* — one forward, one (split) backward, offset by the
//! activation **lifespan**, the time a forward's activations stay resident
//! before their backward reclaims them. The lifespan is a free parameter:
//! shrinking it trades bubble time for activation memory, and the chunk
//! placement (interleaved vs V-shape) sets where along the pipeline the
//! memory concentrates.
//!
//! This module exposes that family through the same capacity-bounded
//! greedy machinery as SVPP: the lifespan knob becomes a *uniform*
//! per-stage in-flight cap (`floor + k` everywhere), in contrast to
//! SVPP's stage-sloped `max(f − w, floor)` ramp. Two placements are
//! offered:
//!
//! * [`Blocks::uniform`] — interleaved placement, uniform lifespan caps;
//! * [`Blocks::v_shape`] — V-shaped placement (`v = 2`), where each
//!   worker's two chunks sit symmetrically so the first and last model
//!   blocks share stage 0 and per-stage memory is naturally balanced.

use crate::generate::{cap_floor, greedy_generate};
use crate::generator::{require, Dims, ScheduleError, ScheduleGenerator};
use crate::ir::{ChunkPlacement, Schedule, ScheduleMeta};

/// Which building-block family variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockShape {
    /// Interleaved chunk placement with uniform lifespan caps.
    Uniform,
    /// V-shaped two-chunk placement (requires `v = 2`).
    VShape,
}

/// Lifespan-parameterized building-block schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocks {
    shape: BlockShape,
    lifespan: Option<usize>,
}

impl Blocks {
    /// Interleaved placement, uniform lifespan caps.
    pub fn uniform() -> Self {
        Self {
            shape: BlockShape::Uniform,
            lifespan: None,
        }
    }

    /// V-shaped placement (`v = 2`).
    pub fn v_shape() -> Self {
        Self {
            shape: BlockShape::VShape,
            lifespan: None,
        }
    }

    /// Sets the lifespan knob `k`: every stage may hold `floor + k`
    /// in-flight forward units (`floor = v·s`, the feasibility minimum).
    /// `k = 0` is the most memory-frugal member of the family; larger `k`
    /// buys bubble time with activation memory.
    pub fn lifespan(mut self, k: usize) -> Self {
        self.lifespan = Some(k);
        self
    }

    /// Largest useful lifespan: with `k` at `n·v·s − floor` every unit is
    /// admitted immediately and larger values change nothing.
    pub fn max_lifespan(dims: &Dims) -> usize {
        (dims.n * dims.v * dims.s).saturating_sub(dims.v * dims.s)
    }

    fn meta(&self, dims: &Dims) -> ScheduleMeta {
        ScheduleMeta {
            name: match self.shape {
                BlockShape::Uniform => "Blocks".into(),
                BlockShape::VShape => "Blocks-V".into(),
            },
            stages: dims.p,
            virtual_chunks: dims.v,
            slices: dims.s,
            micro_batches: dims.n,
            split_backward: true,
            placement: match self.shape {
                BlockShape::Uniform => ChunkPlacement::Interleaved,
                BlockShape::VShape => ChunkPlacement::VShape,
            },
        }
    }
}

impl ScheduleGenerator for Blocks {
    fn name(&self) -> &'static str {
        match self.shape {
            BlockShape::Uniform => "Blocks",
            BlockShape::VShape => "Blocks-V",
        }
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        if self.shape == BlockShape::VShape {
            require(self.name(), dims.v == 2, || {
                format!("V-shaped blocks need v = 2 chunks (v = {})", dims.v)
            })?;
        }
        let meta = self.meta(dims);
        let floor = cap_floor(&meta);
        // Default lifespan: one extra pipeline depth of units — a middle
        // point of the family that keeps the steady state fed.
        let k = self
            .lifespan
            .unwrap_or(dims.p)
            .min(Self::max_lifespan(dims));
        let caps = vec![floor + k; dims.p];
        Ok(greedy_generate(&meta, &caps)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn both_families_generate_valid_schedules() {
        for dims in [
            Dims::new(4, 8),
            Dims::new(4, 8).virtual_chunks(2),
            Dims::new(4, 8).virtual_chunks(2).slices(2),
            Dims::new(2, 4).slices(4),
        ] {
            let u = Blocks::uniform().generate(&dims).unwrap();
            validate(&u).unwrap_or_else(|e| panic!("uniform {dims}: {e}"));
            if dims.v == 2 {
                let v = Blocks::v_shape().generate(&dims).unwrap();
                validate(&v).unwrap_or_else(|e| panic!("v-shape {dims}: {e}"));
            }
        }
    }

    #[test]
    fn lifespan_is_a_monotone_memory_knob() {
        let dims = Dims::new(4, 16).slices(2);
        let peak = |k: usize| {
            let s = Blocks::uniform().lifespan(k).generate(&dims).unwrap();
            validate(&s).unwrap();
            peak_in_flight(&s).into_iter().max().unwrap()
        };
        let frugal = peak(0);
        let mid = peak(4);
        let rich = peak(Blocks::max_lifespan(&dims));
        assert!(frugal <= mid && mid <= rich, "{frugal} {mid} {rich}");
        assert!(frugal < rich, "knob has no effect: {frugal} == {rich}");
        // k = 0 pins every stage at the feasibility floor.
        assert_eq!(frugal, dims.v * dims.s);
    }

    #[test]
    fn v_shape_requires_two_chunks() {
        assert!(Blocks::v_shape().generate(&Dims::new(4, 8)).is_err());
    }
}
