//! Pipeline-schedule intermediate representation and baseline schedules.
//!
//! A [`ir::Schedule`] is a per-worker ordered list of operations (forward,
//! backward, split input-/weight-gradient backward) over micro-batches ×
//! sequence slices × virtual model chunks. Dependencies between operations
//! are *derived* from the training semantics ([`deps`]), never stored, so a
//! single validator and a single executor serve every scheduling method —
//! the baselines here, and SVPP in `mepipe-core`.
//!
//! Baselines implemented (Section 2 of the paper):
//!
//! * [`baselines::gpipe`] — GPipe: all forwards, then all backwards.
//! * [`baselines::dapple`] — DAPPLE / PipeDream-flush 1F1B.
//! * [`baselines::vpp`] — Megatron-LM interleaved virtual-pipeline 1F1B.
//! * [`baselines::hanayo`] — Hanayo: wave-like scheduling over a zigzag
//!   chunk placement.
//! * [`baselines::terapipe`] — TeraPipe: GPipe-style slice-level SPP.
//! * [`baselines::zb`] — ZB-1P: 1F1B with split backward (zero bubble).
//! * [`baselines::zbv`] — ZBV: V-shaped two-chunk placement with split
//!   backward.
//!
//! Beyond the hand-written zoo, two *synthesized* families share the same
//! IR and validators:
//!
//! * [`dualpipe`] — DualPipe bidirectional scheduling: two micro-batch
//!   streams entering from opposite ends of the pipeline.
//! * [`blocks`] — controllable-memory building-block schedules with a
//!   lifespan (activation-residency) knob.
#![warn(missing_docs)]

pub mod baselines;
pub mod blocks;
pub mod deps;
pub mod dualpipe;
pub mod exec;
pub mod generate;
pub mod generator;
pub mod ir;
pub mod render;
pub mod stats;
pub mod validate;

pub use blocks::{BlockShape, Blocks};
pub use dualpipe::{DualPipe, DualPipePhase};
pub use generator::{Dims, ScheduleError, ScheduleGenerator};
pub use ir::{ChunkPlacement, Op, OpKind, Schedule, ScheduleMeta};
