//! Schedule validation: completeness and executability.
//!
//! Two properties make a schedule well-formed:
//!
//! 1. **Completeness** — every worker lists exactly one forward and one
//!    backward (plus one weight op when split) for each of its
//!    `n × s × v` units, with no duplicates and no foreign ops.
//! 2. **Executability** — following each worker's list order never
//!    deadlocks: an op only needs producers that appear earlier in their
//!    own workers' lists. This is checked by a worklist simulation.

use std::collections::HashSet;

use crate::{
    deps::dependencies,
    ir::{Op, OpKind, Schedule},
};

/// Validates completeness and executability; `Err` describes the first
/// violation found.
pub fn validate(schedule: &Schedule) -> Result<(), String> {
    schedule.meta.check_shape()?;
    check_completeness(schedule)?;
    check_executability(schedule)
}

fn check_completeness(schedule: &Schedule) -> Result<(), String> {
    let meta = &schedule.meta;
    if schedule.workers.len() != meta.stages {
        return Err(format!(
            "schedule has {} worker lists but meta declares {} stages",
            schedule.workers.len(),
            meta.stages
        ));
    }
    let backward_kind = if meta.split_backward {
        OpKind::BackwardInput
    } else {
        OpKind::Backward
    };
    for (w, ops) in schedule.workers.iter().enumerate() {
        if ops.len() != schedule.expected_ops_per_worker() {
            return Err(format!(
                "worker {w} has {} ops, expected {}",
                ops.len(),
                schedule.expected_ops_per_worker()
            ));
        }
        let mut seen = HashSet::with_capacity(ops.len());
        for op in ops {
            if op.micro_batch >= meta.micro_batches
                || op.slice >= meta.slices
                || op.chunk >= meta.virtual_chunks
            {
                return Err(format!("worker {w}: op {op} out of shape"));
            }
            if let Some(c) = meta.chunk_of_mb(op.micro_batch) {
                if op.chunk != c {
                    return Err(format!(
                        "worker {w}: op {op} on chunk {} but its micro-batch's \
                         direction uses chunk {c}",
                        op.chunk
                    ));
                }
            }
            match op.kind {
                OpKind::Forward => {}
                k if k == backward_kind => {}
                OpKind::BackwardWeight if meta.split_backward => {}
                k => {
                    return Err(format!(
                        "worker {w}: op kind {k:?} not allowed (split_backward = {})",
                        meta.split_backward
                    ))
                }
            }
            if !seen.insert(*op) {
                return Err(format!("worker {w}: duplicate op {op}"));
            }
        }
    }
    Ok(())
}

fn check_executability(schedule: &Schedule) -> Result<(), String> {
    let meta = &schedule.meta;
    let mut next = vec![0usize; schedule.num_workers()];
    let mut done: HashSet<(usize, Op)> = HashSet::with_capacity(schedule.num_ops());
    let total = schedule.num_ops();
    let mut executed = 0usize;
    loop {
        let mut progress = false;
        for (w, ptr) in next.iter_mut().enumerate() {
            // Drain every currently-runnable op on this worker.
            while *ptr < schedule.workers[w].len() {
                let op = schedule.workers[w][*ptr];
                let ready = dependencies(meta, w, op)
                    .iter()
                    .all(|d| done.contains(&(d.stage, d.op)));
                if !ready {
                    break;
                }
                done.insert((w, op));
                *ptr += 1;
                executed += 1;
                progress = true;
            }
        }
        if executed == total {
            return Ok(());
        }
        if !progress {
            let (w, op) = (0..schedule.num_workers())
                .find(|&w| next[w] < schedule.workers[w].len())
                .map(|w| (w, schedule.workers[w][next[w]]))
                .expect("some worker must be stuck");
            let missing: Vec<String> = dependencies(meta, w, op)
                .iter()
                .filter(|d| !done.contains(&(d.stage, d.op)))
                .map(|d| format!("{} on stage {}", d.op, d.stage))
                .collect();
            return Err(format!(
                "deadlock at worker {w}: {op} waits for [{}]",
                missing.join(", ")
            ));
        }
    }
}

/// Peak number of in-flight forward units per worker (forwards issued minus
/// backward passes completed, running maximum over the list order) — the
/// quantity the paper's activation-memory analysis counts.
pub fn peak_in_flight(schedule: &Schedule) -> Vec<usize> {
    schedule
        .workers
        .iter()
        .map(|ops| {
            let mut cur: isize = 0;
            let mut peak: isize = 0;
            for op in ops {
                match op.kind {
                    OpKind::Forward => {
                        cur += 1;
                        peak = peak.max(cur);
                    }
                    OpKind::Backward | OpKind::BackwardInput => cur -= 1,
                    OpKind::BackwardWeight => {}
                }
            }
            peak.max(0) as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ChunkPlacement, ScheduleMeta};

    fn tiny_meta() -> ScheduleMeta {
        ScheduleMeta {
            name: "tiny".into(),
            stages: 2,
            virtual_chunks: 1,
            slices: 1,
            micro_batches: 1,
            split_backward: false,
            placement: ChunkPlacement::Interleaved,
        }
    }

    fn op(kind: OpKind, mb: usize) -> Op {
        Op::new(kind, mb, 0, 0)
    }

    #[test]
    fn valid_two_stage_schedule_passes() {
        let s = Schedule {
            meta: tiny_meta(),
            workers: vec![
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
            ],
        };
        assert!(validate(&s).is_ok());
        assert_eq!(peak_in_flight(&s), vec![1, 1]);
    }

    #[test]
    fn missing_op_is_rejected() {
        let s = Schedule {
            meta: tiny_meta(),
            workers: vec![
                vec![op(OpKind::Forward, 0)],
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
            ],
        };
        assert!(validate(&s).unwrap_err().contains("expected"));
    }

    #[test]
    fn duplicate_op_is_rejected() {
        let s = Schedule {
            meta: tiny_meta(),
            workers: vec![
                vec![op(OpKind::Forward, 0), op(OpKind::Forward, 0)],
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
            ],
        };
        assert!(validate(&s).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn backward_before_forward_deadlocks() {
        let s = Schedule {
            meta: tiny_meta(),
            workers: vec![
                vec![op(OpKind::Backward, 0), op(OpKind::Forward, 0)],
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
            ],
        };
        let err = validate(&s).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn wrong_backward_kind_is_rejected() {
        let s = Schedule {
            meta: tiny_meta(),
            workers: vec![
                vec![op(OpKind::Forward, 0), op(OpKind::BackwardInput, 0)],
                vec![op(OpKind::Forward, 0), op(OpKind::Backward, 0)],
            ],
        };
        assert!(validate(&s).is_err());
    }
}
