//! Greedy capacity-bounded schedule generation.
//!
//! The generator runs a synchronous unit-time simulation. At every tick
//! each idle worker picks, in priority order:
//!
//! 1. a *ready backward* pass (oldest micro-batch first, slices and chunks
//!    in backward-chain order) — the one-forward-one-backward steady state;
//! 2. otherwise a *ready forward* pass, but only while the worker's count
//!    of in-flight forward units is below its capacity `cap[w]` — the
//!    paper's `f` parameter (forwards admitted before the first backward),
//!    which is exactly the activation-memory knob of Section 4.2;
//! 3. otherwise it idles (a bubble).
//!
//! Among ready forwards, the deepest global chunk position wins (drain
//! in-flight work before admitting new micro-batches), which reproduces
//! the Figure 4(b) interleaving where a sample's second chunk preempts the
//! next sample's first chunk.
//!
//! For split-backward schedules, weight-gradient ops are appended directly
//! after their input-gradient op — the "compute W immediately" layout of
//! Figure 7(a); the simulator's dynamic drain (Section 5) reorders them at
//! execution time.

use std::collections::HashSet;

use crate::ir::{Op, OpKind, Schedule, ScheduleMeta};

/// The per-worker in-flight floor below which generation cannot make
/// progress: the first backward needs one whole micro-batch's units on the
/// loss worker — `v·s` for interleaved placements (Section 4.2: "at least
/// `v × s` forward passes must be executed before the first backward
/// pass"), `s` for bidirectional placement where each micro-batch holds
/// only one chunk per worker.
pub fn cap_floor(meta: &ScheduleMeta) -> usize {
    if meta.bidirectional() {
        meta.slices
    } else {
        meta.virtual_chunks * meta.slices
    }
}

/// Generates a schedule under per-stage in-flight capacities.
///
/// `caps[w]` bounds the number of forward units worker `w` may hold before
/// backing off; every cap must be at least [`cap_floor`].
///
/// Bidirectional metas are handled natively: each micro-batch is seeded at
/// its own end of the pipeline and all position arithmetic follows its
/// direction, so the same greedy machinery produces DualPipe-style
/// two-stream schedules.
pub fn greedy_generate(meta: &ScheduleMeta, caps: &[usize]) -> Result<Schedule, String> {
    meta.check_shape()?;
    let p = meta.stages;
    if caps.len() != p {
        return Err(format!("need {p} caps, got {}", caps.len()));
    }
    let min_cap = cap_floor(meta);
    if let Some(w) = caps.iter().position(|&c| c < min_cap) {
        return Err(format!(
            "cap {} at stage {w} below the feasibility floor {min_cap}",
            caps[w]
        ));
    }

    let backward_kind = if meta.split_backward {
        OpKind::BackwardInput
    } else {
        OpKind::Backward
    };

    // Incremental readiness tracking: instead of re-scanning every pending
    // op per tick, ops enter per-worker ready sets the moment their last
    // producer finishes (dependents are enumerated by inverting the
    // dependency derivation). Ready sets stay small, so a tick costs
    // O(ready) instead of O(pending).
    let mut finished: HashSet<(usize, Op)> =
        HashSet::with_capacity(2 * meta.units_per_worker() * p);
    let mut ready_fwd: Vec<Vec<Op>> = vec![Vec::new(); p];
    let mut ready_bwd: Vec<Vec<Op>> = vec![Vec::new(); p];
    // Guard against double-enqueueing when two producers of the same
    // consumer finish in the same tick.
    let mut queued: HashSet<(usize, Op)> = HashSet::new();

    // Seed: forwards with no producers — slice 0 of every micro-batch at
    // its chain entry (position 0 for everyone; bidirectional streams
    // enter from opposite ends).
    for mb in 0..meta.micro_batches {
        let (w0, c0) = meta.chain_stage_chunk(mb, 0);
        ready_fwd[w0].push(Op::new(OpKind::Forward, mb, 0, c0));
    }

    let mut lists: Vec<Vec<Op>> = vec![Vec::new(); p];
    let mut in_flight = vec![0usize; p];
    // Deep-chunk reservations: once a worker admits a (micro-batch, slice)
    // pair at its shallowest chunk, the pair's remaining chunks *will*
    // arrive and must never be starved by new admissions (they sit on the
    // backward critical path). `reserved[w]` counts those outstanding deep
    // units; admissions of new pairs are charged against them.
    let mut reserved = vec![0usize; p];
    // Steady-state 1F1B alternation at slice granularity: after a backward
    // the worker prefers a forward (the paper inserts "single bubbles ...
    // between two consecutive backward passes of different slices" exactly
    // so the next micro-batch's forwards can fill them). Without this,
    // same-worker backward chains (s > 1 or v > 1) would monopolise the
    // worker and starve downstream stages.
    let mut prefer_forward = vec![false; p];
    // Under bidirectional placement every admitted unit is its own "pair"
    // (one chunk per worker per micro-batch), so the reservation machinery
    // degenerates: every admission is shallow and reserves nothing.
    let bidir = meta.bidirectional();
    let pair_units = if bidir { 1 } else { meta.virtual_chunks };
    let shallow_chunk: Vec<usize> = (0..p)
        .map(|w| {
            (0..meta.virtual_chunks)
                .min_by_key(|&c| meta.placement.global_pos(p, w, c))
                .expect("at least one chunk")
        })
        .collect();
    let total_units = meta.units_per_worker();
    let mut remaining = 2 * total_units * p;
    let mut tick = 0usize;
    // Generous upper bound: every op could in the worst case wait for the
    // whole pipeline to drain.
    let tick_limit = 4 * (remaining + p * p + 16);

    // Newly finished ops of the current tick (their dependents unlock at
    // the next tick).
    let mut freshly_done: Vec<(usize, Op)> = Vec::new();

    while remaining > 0 {
        if tick > tick_limit {
            let state: Vec<String> = (0..p)
                .map(|w| {
                    format!(
                        "w{w}: placed {} ready_f {:?} ready_b {:?} if {} rsv {}",
                        lists[w].len(),
                        ready_fwd[w],
                        ready_bwd[w],
                        in_flight[w],
                        reserved[w]
                    )
                })
                .collect();
            return Err(format!(
                "generation exceeded {tick_limit} ticks; caps {caps:?} likely deadlock\n{}",
                state.join("\n")
            ));
        }
        freshly_done.clear();
        for w in 0..p {
            // 1. Ready backward, deepest global position first (the
            //    backward wavefront), older micro-batch on ties.
            let mut bwd_best: Option<(usize, usize)> = None; // (index, g)
            for (i, op) in ready_bwd[w].iter().enumerate() {
                let g = meta.chain_pos(op.micro_batch, w, op.chunk);
                let better = match bwd_best {
                    None => true,
                    Some((bi, bg)) => {
                        let b = ready_bwd[w][bi];
                        g > bg || (g == bg && op.micro_batch < b.micro_batch)
                    }
                };
                if better {
                    bwd_best = Some((i, g));
                }
            }
            // 2. Ready forward, deepest global chunk first. Deep chunks
            //    (pairs already admitted) bypass the capacity check — their
            //    room was reserved at admission; new pairs are admitted
            //    only if capacity remains after honouring reservations.
            // Tie-break at equal depth: oldest micro-batch, earliest slice
            // — this keeps an admitted micro-batch's slice chain ahead of
            // newer admissions, which is what guarantees the first
            // backward can always be reached within the capacity.
            let mut fwd_best: Option<(usize, usize)> = None; // (index, g)
            for (i, op) in ready_fwd[w].iter().enumerate() {
                let g = meta.chain_pos(op.micro_batch, w, op.chunk);
                // Admission control: interleaved placements admit a
                // (micro-batch, slice) pair at the worker's shallow chunk
                // and reserve room for its deep chunks; bidirectional
                // placements admit at the chain entry (g = 0) and let
                // pass-through forwards bypass the check — capping them
                // creates a store-and-forward cycle between the two
                // streams (each end full of its own admissions while the
                // other stream's loss unit waits), i.e. deadlock.
                let is_admission = if bidir {
                    g == 0
                } else {
                    op.chunk == shallow_chunk[w]
                };
                // Admission reserves room for the WHOLE (micro-batch,
                // slice) pair — its deep chunks will arrive and bypass the
                // check — so the cap is a hard bound on in-flight units.
                if is_admission && in_flight[w] + reserved[w] + pair_units > caps[w] {
                    continue;
                }
                let better = match fwd_best {
                    None => true,
                    Some((bi, bg)) => {
                        let b = ready_fwd[w][bi];
                        g > bg || (g == bg && (op.micro_batch, op.slice) < (b.micro_batch, b.slice))
                    }
                };
                if better {
                    fwd_best = Some((i, g));
                }
            }

            // 3. Pick per the 1F1B alternation preference.
            let run_forward = match (fwd_best, bwd_best) {
                (Some(_), Some(_)) => prefer_forward[w],
                (Some(_), None) => true,
                (None, _) => false,
            };
            if run_forward {
                let (i, _) = fwd_best.expect("forward candidate exists");
                let op = ready_fwd[w].swap_remove(i);
                if bidir {
                    // One-chunk pairs: nothing to reserve.
                } else if op.chunk == shallow_chunk[w] {
                    reserved[w] += pair_units - 1;
                } else {
                    reserved[w] -= 1;
                }
                lists[w].push(op);
                in_flight[w] += 1;
                remaining -= 1;
                prefer_forward[w] = false;
                freshly_done.push((w, op));
            } else if let Some((i, _)) = bwd_best {
                let op = ready_bwd[w].swap_remove(i);
                lists[w].push(op);
                if meta.split_backward {
                    // Default static layout: weight grads right after.
                    lists[w].push(op.with_kind(OpKind::BackwardWeight));
                }
                in_flight[w] -= 1;
                remaining -= 1;
                prefer_forward[w] = true;
                freshly_done.push((w, op));
            }
        }
        // Commit this tick's completions and unlock dependents for the
        // next tick.
        for &(w, op) in &freshly_done {
            finished.insert((w, op));
        }
        for &(w, op) in &freshly_done {
            for (dw, dep) in dependents(meta, w, op, backward_kind) {
                let all_done = crate::deps::dependencies(meta, dw, dep)
                    .iter()
                    .all(|d| finished.contains(&(d.stage, d.op)));
                if all_done && queued.insert((dw, dep)) {
                    match dep.kind {
                        OpKind::Forward => ready_fwd[dw].push(dep),
                        _ => ready_bwd[dw].push(dep),
                    }
                }
            }
        }
        tick += 1;
    }

    Ok(Schedule {
        meta: meta.clone(),
        workers: lists,
    })
}

/// Consumers an op can unlock — the inverse of
/// [`crate::deps::dependencies`]. Weight ops are excluded (the generator
/// appends them inline after their input-gradient op). Public so order
/// synthesizers outside this crate can reuse the incremental readiness
/// machinery.
pub fn dependents(
    meta: &ScheduleMeta,
    stage: usize,
    op: Op,
    backward_kind: OpKind,
) -> Vec<(usize, Op)> {
    let g = meta.chain_pos(op.micro_batch, stage, op.chunk);
    let mut out = Vec::with_capacity(3);
    match op.kind {
        OpKind::Forward => {
            if g < meta.last_chain_pos() {
                let (nw, nc) = meta.chain_stage_chunk(op.micro_batch, g + 1);
                out.push((nw, Op::new(OpKind::Forward, op.micro_batch, op.slice, nc)));
            }
            if op.slice + 1 < meta.slices {
                out.push((
                    stage,
                    Op::new(OpKind::Forward, op.micro_batch, op.slice + 1, op.chunk),
                ));
            }
            // Its own backward becomes a candidate once the rest of its
            // producers complete.
            out.push((
                stage,
                Op::new(backward_kind, op.micro_batch, op.slice, op.chunk),
            ));
        }
        OpKind::Backward | OpKind::BackwardInput => {
            if g > 0 {
                let (pw, pc) = meta.chain_stage_chunk(op.micro_batch, g - 1);
                out.push((pw, Op::new(backward_kind, op.micro_batch, op.slice, pc)));
            }
            if op.slice > 0 {
                out.push((
                    stage,
                    Op::new(backward_kind, op.micro_batch, op.slice - 1, op.chunk),
                ));
            }
        }
        OpKind::BackwardWeight => {}
    }
    out
}

/// Default per-stage capacities for a warmup budget `f` at stage 0:
/// `max(f − w, floor)` — later stages start later and drain sooner, so
/// they never need the full budget (Section 4.1's analysis focuses on
/// stage 0). For bidirectional metas the slope is symmetric — both ends
/// are entry stages — so the budget decays toward the middle:
/// `max(f − min(w, p−1−w), floor)`.
pub fn default_caps(meta: &ScheduleMeta, f: usize) -> Vec<usize> {
    let floor = cap_floor(meta);
    let p = meta.stages;
    (0..p)
        .map(|w| {
            let depth = if meta.bidirectional() {
                w.min(p - 1 - w)
            } else {
                w
            };
            f.saturating_sub(depth).max(floor)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ChunkPlacement;
    use crate::validate::{peak_in_flight, validate};

    fn meta(p: usize, v: usize, s: usize, n: usize) -> ScheduleMeta {
        ScheduleMeta {
            name: "greedy".into(),
            stages: p,
            virtual_chunks: v,
            slices: s,
            micro_batches: n,
            split_backward: false,
            placement: ChunkPlacement::Interleaved,
        }
    }

    #[test]
    fn figure4a_shape() {
        // p=4, s=2, v=1, n=4, f = v·max(p,s)+min(p,s)-1 = 5.
        let m = meta(4, 1, 2, 4);
        let caps = default_caps(&m, 5);
        let s = greedy_generate(&m, &caps).unwrap();
        validate(&s).unwrap();
        let peaks = peak_in_flight(&s);
        // Section 4.1: "The peak memory consumption of activations in
        // Figure 4(a) is 5/8 A" — five slice units on stage 0.
        assert_eq!(peaks[0], 5, "peaks = {peaks:?}");
        assert!(peaks[3] <= 3);
    }

    #[test]
    fn figure4b_shape() {
        // p=4, s=2, v=2, n=4: peak = 9 units of A/16 (Section 4.1).
        let m = meta(4, 2, 2, 4);
        let caps = default_caps(&m, 9);
        let s = greedy_generate(&m, &caps).unwrap();
        validate(&s).unwrap();
        // The closed-form bound is 9 units (Section 4.1); the greedy
        // generator drains backwards eagerly and reserves whole pairs at
        // admission, so it can undershoot the bound by up to v units.
        let peak = peak_in_flight(&s)[0];
        assert!((7..=9).contains(&peak), "peak = {peak}");
    }

    #[test]
    fn caps_bound_memory() {
        let m = meta(4, 1, 2, 8);
        for f in [2usize, 3, 4, 5, 6] {
            let s = greedy_generate(&m, &default_caps(&m, f)).unwrap();
            validate(&s).unwrap();
            let peaks = peak_in_flight(&s);
            assert!(
                peaks[0] <= f.max(2),
                "f={f}: stage-0 peak {} exceeds cap",
                peaks[0]
            );
        }
    }

    #[test]
    fn cap_below_floor_is_rejected() {
        let m = meta(4, 2, 2, 4);
        let err = greedy_generate(&m, &[3, 4, 4, 4]).unwrap_err();
        assert!(err.contains("floor"), "{err}");
    }

    #[test]
    fn split_backward_appends_weight_ops() {
        let m = ScheduleMeta {
            split_backward: true,
            ..meta(4, 1, 2, 4)
        };
        let s = greedy_generate(&m, &default_caps(&m, 5)).unwrap();
        validate(&s).unwrap();
        // Every Bi is immediately followed by its W in the static layout.
        for ops in &s.workers {
            for pair in ops.windows(2) {
                if pair[0].kind == OpKind::BackwardInput {
                    assert_eq!(pair[1].kind, OpKind::BackwardWeight);
                    assert_eq!(pair[1].micro_batch, pair[0].micro_batch);
                    assert_eq!(pair[1].slice, pair[0].slice);
                }
            }
        }
    }

    #[test]
    fn vshape_generation_is_valid() {
        let m = ScheduleMeta {
            placement: ChunkPlacement::VShape,
            split_backward: true,
            ..meta(4, 2, 1, 8)
        };
        let caps: Vec<usize> = (0..4).map(|w| (2 * (4 - w)).max(2)).collect();
        let s = greedy_generate(&m, &caps).unwrap();
        validate(&s).unwrap();
    }

    #[test]
    fn bidirectional_generation_is_valid() {
        for (p, s, n) in [(2usize, 1usize, 4usize), (4, 2, 4), (4, 1, 8)] {
            let m = ScheduleMeta {
                placement: ChunkPlacement::Bidirectional,
                split_backward: true,
                ..meta(p, 2, s, n)
            };
            for f in [cap_floor(&m), 2 * cap_floor(&m)] {
                let caps = default_caps(&m, f);
                let sched = greedy_generate(&m, &caps)
                    .unwrap_or_else(|e| panic!("p={p} s={s} n={n} f={f}: {e}"));
                validate(&sched).unwrap_or_else(|e| panic!("p={p} s={s} n={n} f={f}: {e}"));
                // Pass-through forwards bypass the cap (only admissions
                // are charged), so a stage can hold up to both directions'
                // budgets at once — but never more.
                let peaks = peak_in_flight(&sched);
                let bound = 2 * f.max(cap_floor(&m));
                assert!(
                    peaks.iter().all(|&pk| pk <= bound),
                    "p={p} s={s} n={n} f={f}: peaks {peaks:?} exceed {bound}"
                );
            }
        }
    }

    #[test]
    fn degenerate_single_stage_works() {
        let m = meta(1, 1, 1, 3);
        let s = greedy_generate(&m, &default_caps(&m, 1)).unwrap();
        validate(&s).unwrap();
        // Pure 1F1B on one stage: F B F B F B.
        let kinds: Vec<OpKind> = s.workers[0].iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Forward,
                OpKind::Backward,
                OpKind::Forward,
                OpKind::Backward,
                OpKind::Forward,
                OpKind::Backward
            ]
        );
    }
}
