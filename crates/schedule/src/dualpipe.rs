//! DualPipe bidirectional scheduling.
//!
//! Two micro-batch streams enter the pipeline from opposite ends: even
//! micro-batches flow `0 → p−1` through each stage's chunk-0 model
//! replica, odd micro-batches flow `p−1 → 0` through the chunk-1 replica
//! (see [`ChunkPlacement::Bidirectional`]). Because both ends are entry
//! stages, warmup ramps from both sides at once and the steady state
//! interleaves the two streams' forwards and backwards on every worker —
//! the bubble concentrates in the middle instead of rolling across the
//! whole pipeline.
//!
//! Generation reuses the capacity-bounded greedy machinery
//! ([`greedy_generate`]) on a bidirectional meta; each worker's resulting
//! op list factors into the classic three-phase shape — warmup (forwards
//! only), steady (mixed), cooldown (backwards only) — which
//! [`DualPipe::phases`] recovers for reports and tests.

use crate::generate::{cap_floor, default_caps, greedy_generate};
use crate::generator::{Dims, ScheduleError, ScheduleGenerator};
use crate::ir::{ChunkPlacement, Schedule, ScheduleMeta};

/// Execution phase of one position in a worker's op list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualPipePhase {
    /// Before the worker's first backward: ramping in-flight work up.
    Warmup,
    /// Between the first backward and the last forward: both streams live.
    Steady,
    /// After the worker's last forward: draining backwards only.
    Cooldown,
}

/// DualPipe bidirectional schedule generator. Defined for `v = 2` (the
/// two directions' model replicas) and an even micro-batch count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DualPipe {
    warmup: Option<usize>,
}

impl DualPipe {
    /// A generator with the default warmup budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps each direction's entry admissions at `f` in-flight units —
    /// the bidirectional analogue of SVPP's warmup parameter and the
    /// memory knob the budget selector sweeps.
    pub fn warmup_cap(mut self, f: usize) -> Self {
        self.warmup = Some(f);
        self
    }

    /// Smallest feasible warmup budget: one micro-batch's slices.
    pub fn min_warmup(dims: &Dims) -> usize {
        dims.s
    }

    /// Largest useful warmup budget: every unit of one direction admitted
    /// with no backoff (`n/2` micro-batches × `s` slices).
    pub fn max_warmup(dims: &Dims) -> usize {
        (dims.n / 2).max(1) * dims.s
    }

    fn meta(dims: &Dims) -> ScheduleMeta {
        ScheduleMeta {
            name: "DualPipe".into(),
            stages: dims.p,
            virtual_chunks: 2,
            slices: dims.s,
            micro_batches: dims.n,
            split_backward: true,
            placement: ChunkPlacement::Bidirectional,
        }
    }

    /// Labels each position of each worker's op list with its phase.
    pub fn phases(schedule: &Schedule) -> Vec<Vec<DualPipePhase>> {
        schedule
            .workers
            .iter()
            .map(|ops| {
                let first_bwd = ops
                    .iter()
                    .position(|o| o.kind.is_backward_pass())
                    .unwrap_or(ops.len());
                let last_fwd = ops
                    .iter()
                    .rposition(|o| o.kind == crate::ir::OpKind::Forward)
                    .unwrap_or(0);
                (0..ops.len())
                    .map(|i| {
                        if i < first_bwd {
                            DualPipePhase::Warmup
                        } else if i <= last_fwd {
                            DualPipePhase::Steady
                        } else {
                            DualPipePhase::Cooldown
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl ScheduleGenerator for DualPipe {
    fn name(&self) -> &'static str {
        "DualPipe"
    }

    fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        crate::generator::require(self.name(), dims.v == 2, || {
            format!("defined only for v = 2 model replicas (v = {})", dims.v)
        })?;
        crate::generator::require(self.name(), dims.n.is_multiple_of(2) && dims.n >= 2, || {
            format!("needs an even micro-batch count ≥ 2 (n = {})", dims.n)
        })?;
        let meta = Self::meta(dims);
        // Default: enough budget for both ramps to overlap — roughly half
        // the pipeline depth of micro-batches per direction.
        let f = self
            .warmup
            .unwrap_or_else(|| (dims.s * (dims.p / 2 + 1)).min(Self::max_warmup(dims)))
            .max(cap_floor(&meta));
        let caps = default_caps(&meta, f);
        Ok(greedy_generate(&meta, &caps)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{peak_in_flight, validate};

    #[test]
    fn dualpipe_generates_valid_schedules() {
        for (p, s, n) in [(2usize, 1usize, 4usize), (4, 1, 8), (4, 2, 4), (8, 1, 16)] {
            let dims = Dims::new(p, n).virtual_chunks(2).slices(s);
            let sched = DualPipe::new()
                .generate(&dims)
                .unwrap_or_else(|e| panic!("p={p} s={s} n={n}: {e}"));
            validate(&sched).unwrap_or_else(|e| panic!("p={p} s={s} n={n}: {e}"));
            assert_eq!(sched.meta.placement, ChunkPlacement::Bidirectional);
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        assert!(DualPipe::new().generate(&Dims::new(4, 8)).is_err());
        assert!(DualPipe::new()
            .generate(&Dims::new(4, 3).virtual_chunks(2))
            .is_err());
    }

    #[test]
    fn warmup_cap_bounds_entry_admissions() {
        let dims = Dims::new(4, 16).virtual_chunks(2);
        let tight = DualPipe::new()
            .warmup_cap(DualPipe::min_warmup(&dims))
            .generate(&dims)
            .unwrap();
        let loose = DualPipe::new()
            .warmup_cap(DualPipe::max_warmup(&dims))
            .generate(&dims)
            .unwrap();
        validate(&tight).unwrap();
        validate(&loose).unwrap();
        let peak = |s: &Schedule| peak_in_flight(s).into_iter().max().unwrap();
        assert!(
            peak(&tight) < peak(&loose),
            "tight {} vs loose {}",
            peak(&tight),
            peak(&loose)
        );
    }

    #[test]
    fn every_worker_walks_warmup_steady_cooldown() {
        let dims = Dims::new(4, 8).virtual_chunks(2);
        let sched = DualPipe::new().generate(&dims).unwrap();
        for (w, phases) in DualPipe::phases(&sched).iter().enumerate() {
            // Phases are monotone and all three occur.
            assert!(phases.windows(2).all(|p| !matches!(
                (p[0], p[1]),
                (DualPipePhase::Steady, DualPipePhase::Warmup)
                    | (DualPipePhase::Cooldown, DualPipePhase::Warmup)
                    | (DualPipePhase::Cooldown, DualPipePhase::Steady)
            )));
            for ph in [
                DualPipePhase::Warmup,
                DualPipePhase::Steady,
                DualPipePhase::Cooldown,
            ] {
                assert!(phases.contains(&ph), "worker {w} missing {ph:?}");
            }
        }
    }

    #[test]
    fn both_ends_start_immediately() {
        // The defining bidirectional property: stage p−1 is an entry
        // stage, so its first op is a forward of an odd micro-batch —
        // no waiting for the wavefront from stage 0.
        let dims = Dims::new(4, 8).virtual_chunks(2);
        let sched = DualPipe::new().generate(&dims).unwrap();
        let first_last = sched.workers[3][0];
        assert_eq!(first_last.kind, crate::ir::OpKind::Forward);
        assert!(!first_last.micro_batch.is_multiple_of(2));
        assert_eq!(first_last.chunk, 1);
        let first_zero = sched.workers[0][0];
        assert!(first_zero.micro_batch.is_multiple_of(2));
        assert_eq!(first_zero.chunk, 0);
    }
}
