//! Property tests for the schedule machinery.

use proptest::prelude::*;

use mepipe_schedule::{
    exec::{execute, UnitCost},
    generate::{default_caps, greedy_generate},
    generator::{Dapple, Dims, GPipe, ScheduleGenerator, TeraPipe},
    ir::{ChunkPlacement, ScheduleMeta},
    validate::{peak_in_flight, validate},
};

fn meta(
    p: usize,
    v: usize,
    s: usize,
    n: usize,
    split: bool,
    placement: ChunkPlacement,
) -> ScheduleMeta {
    ScheduleMeta {
        name: "prop".into(),
        stages: p,
        virtual_chunks: v,
        slices: s,
        micro_batches: n,
        split_backward: split,
        placement,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every placement's (stage, chunk) ↔ global-position mapping is a
    /// bijection over the whole grid.
    #[test]
    fn placements_are_bijections(p in 1usize..=12, v in 1usize..=5) {
        for placement in [ChunkPlacement::Interleaved, ChunkPlacement::Wave] {
            for g in 0..p * v {
                let (w, c) = placement.stage_chunk_of(p, g);
                prop_assert!(w < p && c < v);
                prop_assert_eq!(placement.global_pos(p, w, c), g);
            }
        }
        // VShape only at v = 2.
        for g in 0..p * 2 {
            let (w, c) = ChunkPlacement::VShape.stage_chunk_of(p, g);
            prop_assert_eq!(ChunkPlacement::VShape.global_pos(p, w, c), g);
        }
    }

    /// The greedy generator is deterministic: identical inputs produce
    /// identical schedules.
    #[test]
    fn generation_is_deterministic(
        p in 1usize..=6,
        v in 1usize..=3,
        s in 1usize..=4,
        n in 1usize..=6,
        split in proptest::bool::ANY,
    ) {
        let m = meta(p, v, s, n, split, ChunkPlacement::Interleaved);
        let caps = default_caps(&m, v * p.max(s) + p.min(s));
        let a = greedy_generate(&m, &caps).unwrap();
        let b = greedy_generate(&m, &caps).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Wave placements generate valid executable schedules too.
    #[test]
    fn wave_generation_valid(p in 1usize..=6, v in 1usize..=4, n in 1usize..=6) {
        let m = meta(p, v, 1, n, false, ChunkPlacement::Wave);
        let caps = vec![(p * v).max(v); p];
        let sch = greedy_generate(&m, &caps).unwrap();
        validate(&sch).unwrap();
        execute(&sch, &UnitCost::ones()).unwrap();
    }

    /// Executing any baseline under any positive costs keeps busy time
    /// equal to the sum of op durations (no work lost or duplicated).
    #[test]
    fn execution_conserves_work(
        p in 1usize..=6,
        n in 1usize..=8,
        fwd in 0.5f64..3.0,
        bwd in 0.5f64..3.0,
    ) {
        let sch = Dapple.generate(&Dims::new(p, n)).unwrap();
        let cost = UnitCost { fwd, bwd, wgrad: 0.0 };
        let t = execute(&sch, &cost).unwrap();
        let expected = (fwd + bwd) * n as f64;
        for w in 0..p {
            prop_assert!((t.busy[w] - expected).abs() < 1e-6);
        }
        prop_assert!(t.makespan >= expected - 1e-6);
    }

    /// Peak in-flight decreases (weakly) from the first stage to the last
    /// for 1F1B-family schedules — the memory skew the paper discusses.
    #[test]
    fn dapple_memory_skew(p in 2usize..=8, n in 2usize..=12) {
        let sch = Dapple.generate(&Dims::new(p, n)).unwrap();
        let peaks = peak_in_flight(&sch);
        prop_assert!(peaks.windows(2).all(|w| w[0] >= w[1]), "{:?}", peaks);
    }

    /// GPipe's makespan formula holds exactly under unit costs.
    #[test]
    fn gpipe_makespan_formula(p in 1usize..=8, n in 1usize..=12) {
        let sch = GPipe.generate(&Dims::new(p, n)).unwrap();
        let t = execute(&sch, &UnitCost::ones()).unwrap();
        prop_assert!((t.makespan - (2 * n + 2 * (p - 1)) as f64).abs() < 1e-9);
    }

    /// TeraPipe's bubble formula holds exactly under unit costs.
    #[test]
    fn terapipe_bubble_formula(p in 1usize..=6, n in 1usize..=8, s in 1usize..=4) {
        let sch = TeraPipe.generate(&Dims::new(p, n).slices(s)).unwrap();
        let t = execute(&sch, &UnitCost::ones()).unwrap();
        let expected = (p as f64 - 1.0) / ((n * s) as f64 + p as f64 - 1.0);
        prop_assert!((t.bubble_ratio() - expected).abs() < 1e-9);
    }
}
