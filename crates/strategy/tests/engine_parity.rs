//! Property: the parallel, bound-pruned, memoized search engine selects
//! the identical argmin — with bit-identical `Evaluated` metrics — as
//! the serial exhaustive reference, on randomized grids.

use proptest::prelude::*;

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_strategy::{search_serial, Evaluated, Method, SearchEngine};

fn metric_bits(e: &Evaluated) -> [u64; 4] {
    [
        e.iteration_time.to_bits(),
        e.bubble_ratio.to_bits(),
        e.peak_activation_bytes.to_bits(),
        e.mfu.to_bits(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized (method, model, cluster, batch, threads): pruning and
    /// parallelism never change the winner or any of its metrics.
    #[test]
    fn pruned_parallel_search_matches_serial(
        method_idx in 0usize..5,
        model_idx in 0usize..2,
        on_a100 in proptest::bool::ANY,
        gbs_shift in 0usize..4,
        threads in 1usize..4,
    ) {
        let method = Method::all()[method_idx];
        let model = [TransformerConfig::llama2_7b(), TransformerConfig::llama2_13b()]
            [model_idx];
        let cluster =
            if on_a100 { ClusterSpec::a100_cluster() } else { ClusterSpec::rtx4090_cluster() };
        let gbs = 32usize << gbs_shift; // 32, 64, 128, 256.
        let engine = SearchEngine::new().with_threads(threads);
        let fast = engine.search(method, &model, &cluster, gbs);
        let slow = search_serial(method, &model, &cluster, gbs);
        match (&fast, &slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert_eq!(&f.candidate, &s.candidate);
                prop_assert_eq!(metric_bits(f), metric_bits(s));
                prop_assert_eq!(f.warmup, s.warmup);
            }
            _ => prop_assert!(
                false,
                "feasibility disagreement: engine {:?} vs serial {:?}",
                fast.as_ref().map(|e| e.candidate.label()),
                slow.as_ref().map(|e| e.candidate.label())
            ),
        }
    }
}
