//! Elastic re-shard search: pick a new pipeline shape for new capacity.
//!
//! [`SearchEngine::retune_mepipe`] answers "better schedule, same
//! shape?" — the hot-swap question, where the stage count is frozen
//! because workers keep their in-flight state. The control plane asks a
//! bigger question when the fleet itself changes (a node drained, a
//! node added): *given `max_stages` slots and a checkpoint to restart
//! from, what shape should the pipeline take now?* A restart-from-
//! checkpoint tolerates any stage count, so the search may widen or
//! narrow the pipeline, not just re-slice it.
//!
//! [`SearchEngine::reshard_mepipe`] enumerates feasible stage counts
//! (divisors of the layer count, capped by the fleet), prices each
//! count's full retune space, and returns one flat ranking. Rows go
//! through the engine's shared schedule cache, so repeated capacity
//! events re-generate nothing.

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_model::cost::ExecutionCost;
use mepipe_model::partition::PartitionSpec;

use crate::engine::SearchEngine;
use crate::retune::Retuned;

/// The slice of `cluster` a `p`-stage gang would actually occupy, since
/// the cost model insists the partition fill its cluster exactly. The
/// control plane packs gangs node-by-node, so: whole nodes when `p`
/// divides evenly into them, one partial node when the gang fits inside
/// one, and — for awkward counts spanning a node boundary — every link
/// priced as inter-node, which can only overstate communication cost.
fn subcluster(cluster: &ClusterSpec, p: usize) -> ClusterSpec {
    let gpn = cluster.gpus_per_node;
    if p.is_multiple_of(gpn) {
        ClusterSpec {
            nodes: p / gpn,
            gpus_per_node: gpn,
            ..cluster.clone()
        }
    } else if p < gpn {
        ClusterSpec {
            nodes: 1,
            gpus_per_node: p,
            ..cluster.clone()
        }
    } else {
        ClusterSpec {
            nodes: p,
            gpus_per_node: 1,
            intra_node: cluster.inter_node.clone(),
            ..cluster.clone()
        }
    }
}

/// One re-shard candidate: a stage count plus a retuned schedule for it.
#[derive(Debug, Clone)]
pub struct Reshard {
    /// Pipeline stages (= processes the gang needs = fleet slots).
    pub stages: usize,
    /// The priced schedule at that stage count.
    pub row: Retuned,
}

impl SearchEngine {
    /// Ranks `(stages, slices, warmup)` triples for a job restarting
    /// from a checkpoint onto a fleet with `max_stages` free slots.
    ///
    /// `template` fixes everything re-sharding must preserve — virtual
    /// chunks, micro-batch shape, recompute flag, sequence split style;
    /// only its `pp` is swept. A stage count is feasible when it is at
    /// most `max_stages`, divides the pipeline slot count evenly (each
    /// stage owns an equal contiguous block, the invariant checkpoint
    /// merging relies on), and at most the micro-batch count (an
    /// emptier pipeline never beats the same schedule one stage
    /// narrower). Callers pricing the mini-runtime should pass the
    /// `layers - 2` adjusted config the cost model expects (the
    /// `Calibrator::prior_for` convention in `mepipe-train`), which
    /// makes modeled slots equal runtime layers and the two
    /// feasibility rules coincide.
    ///
    /// Rows come back sorted fastest-first across all stage counts,
    /// ties broken by *fewer* stages (frees slots for other jobs), so
    /// `[0]` is the recommendation.
    ///
    /// # Errors
    ///
    /// Returns an error if no stage count is feasible, or if cost
    /// construction / schedule generation fails for a feasible one.
    pub fn reshard_mepipe(
        &self,
        cfg: &TransformerConfig,
        template: &PartitionSpec,
        cluster: &ClusterSpec,
        max_stages: usize,
        max_units: Option<usize>,
    ) -> Result<Vec<Reshard>, String> {
        let n = template.micro_batches();
        let slots = cfg.pipeline_slots();
        let mut rows = Vec::new();
        let mut feasible = 0usize;
        for p in 1..=max_stages.min(slots).min(n) {
            if !slots.is_multiple_of(p * template.vp) {
                continue;
            }
            feasible += 1;
            let spec = PartitionSpec { pp: p, ..*template };
            let cost = ExecutionCost::new(*cfg, spec, &subcluster(cluster, p))
                .map_err(|e| format!("cost model at p={p}: {e}"))?;
            for row in self.retune_mepipe(&cost, max_units)? {
                rows.push(Reshard { stages: p, row });
            }
        }
        if feasible == 0 {
            return Err(format!(
                "no feasible stage count: slots={slots}, micro_batches={n}, max_stages={max_stages}"
            ));
        }
        rows.sort_by(|a, b| {
            a.row
                .iteration_time
                .total_cmp(&b.row.iteration_time)
                .then(a.stages.cmp(&b.stages))
                .then(a.row.synthesized.cmp(&b.row.synthesized))
                .then(a.row.slices.cmp(&b.row.slices))
                .then(a.row.warmup.cmp(&b.row.warmup))
        });
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_hw::{accelerator::AcceleratorSpec, link::LinkSpec};
    use mepipe_model::partition::SequenceSplit;
    use mepipe_schedule::validate;

    fn setup() -> (TransformerConfig, PartitionSpec, ClusterSpec) {
        // The `prior_for` convention: a 4-layer runtime job is priced as
        // `tiny(2)` so its 4 modeled slots are the 4 runtime layers.
        let cfg = TransformerConfig {
            seq_len: 64,
            ..TransformerConfig::tiny(2)
        };
        let template = PartitionSpec {
            pp: 4, // swept; only the rest of the template matters
            vp: 1,
            dp: 1,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 4,
        };
        let cluster = ClusterSpec {
            nodes: 1,
            gpus_per_node: 4,
            accelerator: AcceleratorSpec::rtx4090(),
            intra_node: LinkSpec::pcie4(),
            inter_node: LinkSpec::ib_100g(),
        };
        (cfg, template, cluster)
    }

    #[test]
    fn sweeps_every_feasible_stage_count() {
        let (cfg, template, cluster) = setup();
        let engine = SearchEngine::new();
        let rows = engine
            .reshard_mepipe(&cfg, &template, &cluster, 4, None)
            .unwrap();
        let mut stages: Vec<usize> = rows.iter().map(|r| r.stages).collect();
        stages.sort_unstable();
        stages.dedup();
        // 4 slots, 4 micro-batches: p ∈ {1, 2, 4} divide the slots.
        assert_eq!(stages, vec![1, 2, 4]);
        for w in rows.windows(2) {
            assert!(w[0].row.iteration_time <= w[1].row.iteration_time);
        }
        for r in &rows {
            assert_eq!(r.row.schedule.num_workers(), r.stages);
            validate::validate(&r.row.schedule).unwrap();
        }
    }

    #[test]
    fn capacity_cap_narrows_the_pipeline() {
        let (cfg, template, cluster) = setup();
        let engine = SearchEngine::new();
        let rows = engine
            .reshard_mepipe(&cfg, &template, &cluster, 3, None)
            .unwrap();
        assert!(
            rows.iter().all(|r| r.stages <= 2),
            "p=3 infeasible, p=4 capped"
        );
        assert!(rows.iter().any(|r| r.stages == 2));
    }

    #[test]
    fn zero_capacity_is_an_error() {
        let (cfg, template, cluster) = setup();
        let engine = SearchEngine::new();
        let err = engine
            .reshard_mepipe(&cfg, &template, &cluster, 0, None)
            .unwrap_err();
        assert!(err.contains("no feasible stage count"), "{err}");
    }

    #[test]
    fn wider_fleets_prefer_wider_pipelines() {
        // With more slots available the best row should use them: the
        // 4-slot recommendation must not be slower than the 1-slot one.
        let (cfg, template, cluster) = setup();
        let engine = SearchEngine::new();
        let narrow = engine
            .reshard_mepipe(&cfg, &template, &cluster, 1, None)
            .unwrap()
            .remove(0);
        let wide = engine
            .reshard_mepipe(&cfg, &template, &cluster, 4, None)
            .unwrap()
            .remove(0);
        assert_eq!(narrow.stages, 1);
        assert!(wide.row.iteration_time <= narrow.row.iteration_time);
    }
}
