//! Parallel-strategy enumeration, evaluation and grid search.
//!
//! The paper tunes every system by exhaustively searching its strategy
//! space (Section 7.1): pipeline size × data-parallel size × context or
//! sequence-pipeline parallelism × virtual pipeline size × recomputation,
//! keeping whatever fits in memory and minimising simulated iteration
//! time. This crate reproduces that search against the simulator —
//! feeding Figures 8 and 10 and Tables 5–8.
#![warn(missing_docs)]

pub mod engine;
pub mod evaluate;
pub mod reshard;
pub mod retune;
pub mod search;
pub mod space;

pub use engine::{EngineStats, ScheduleCache, ScheduleKey, SearchEngine};
pub use evaluate::{evaluate, Evaluated};
pub use reshard::Reshard;
pub use retune::Retuned;
pub use search::{search, search_all, search_serial, search_verbose};
pub use space::{enumerate_candidates, Candidate, Method};
