//! Online re-search over hot-swap-compatible schedules.
//!
//! The calibration loop (Section 6) measures a few iterations, fits the
//! cost model to the spans, and then asks: *given what we now know about
//! this machine, is there a better schedule for the job that is already
//! running?* The answer must be restricted to schedules the trainer can
//! swap to **between iterations without dropping in-flight state**: same
//! pipeline stages, same virtual chunks, same micro-batch count — only
//! the sequence-slice count and SVPP warmup cap may move.
//!
//! [`SearchEngine::retune_mepipe`] enumerates exactly that space, prices
//! every candidate with an externally supplied [`ExecutionCost`] (the
//! fitted one — not the datasheet defaults the offline grid search
//! uses), and returns the rows sorted fastest-first. Generation goes
//! through the engine's shared [`crate::engine::ScheduleCache`], so
//! repeated calibration rounds re-generate nothing.

use std::sync::Arc;

use mepipe_core::svpp::{self, SvppConfig};
use mepipe_core::Synth;
use mepipe_model::cost::ExecutionCost;
use mepipe_schedule::{
    generator::{Dims, ScheduleGenerator},
    ir::Schedule,
    validate,
};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    ModelCost,
};

use crate::engine::{ScheduleKey, SearchEngine};
use crate::space::Method;

/// Slice counts above this are never proposed: per-slice GEMMs degrade
/// (Figure 9) and the schedule itself balloons, so the paper's grids stop
/// well below it.
const MAX_SLICES: usize = 64;

/// One hot-swap candidate, priced under the supplied cost model.
#[derive(Debug, Clone)]
pub struct Retuned {
    /// Sequence slices per micro-batch.
    pub slices: usize,
    /// The regeneration knob: SVPP warmup cap `f` for template rows, the
    /// solver's per-worker unit cap for synthesized rows. Broadcasting
    /// `(synthesized, slices, warmup)` lets every worker rebuild the
    /// identical schedule.
    pub warmup: usize,
    /// Whether this row came out of the order solver ([`Synth`]) rather
    /// than the hand-written SVPP generator. Solver output is
    /// MEPipe-shaped (same stages, chunks, micro-batches, split
    /// backward), so it is hot-swap compatible too.
    pub synthesized: bool,
    /// The generated schedule, ready to hand to a trainer.
    pub schedule: Arc<Schedule>,
    /// Iteration time under the supplied cost model, in seconds.
    pub iteration_time: f64,
    /// Mean pipeline bubble ratio under the supplied cost model.
    pub bubble_ratio: f64,
    /// Peak in-flight units on the most loaded stage.
    pub peak_units: usize,
}

impl SearchEngine {
    /// Ranks every MEPipe schedule the running job could hot-swap to,
    /// priced by `fitted` (typically a calibration-fitted
    /// [`ExecutionCost`], but any instance works).
    ///
    /// The stage count, virtual chunks and micro-batch count are taken
    /// from `fitted.partition()` — those are frozen by hot-swap
    /// compatibility. Candidates vary the slice count over divisors of
    /// the sequence length (capped at [`MAX_SLICES`]) and the warmup cap
    /// over the full `[min_warmup, max_warmup]` range. Candidates whose
    /// peak in-flight units exceed `max_units` (when given) are dropped
    /// — the same memory gate the offline search applies.
    ///
    /// Rows come back sorted by iteration time, ties broken by fewer
    /// slices then lower warmup, so `[0]` is the recommendation and the
    /// ordering is deterministic.
    pub fn retune_mepipe(
        &self,
        fitted: &ExecutionCost,
        max_units: Option<usize>,
    ) -> Result<Vec<Retuned>, String> {
        let spec = fitted.partition();
        let p = spec.pp;
        let v = spec.vp;
        let n = spec.micro_batches();
        let seq = fitted.config().seq_len;
        let mut rows = Vec::new();
        for s in (1..=seq.min(MAX_SLICES)).filter(|s| seq.is_multiple_of(*s)) {
            let cost = fitted.clone().with_slices(s)?;
            let dims = Dims::new(p, n).virtual_chunks(v).slices(s);
            let base = SvppConfig::from_dims(&dims);
            for f in base.min_warmup()..=base.max_warmup() {
                let key = ScheduleKey {
                    method: Method::Mepipe,
                    p,
                    v,
                    s,
                    n,
                    warmup: Some(f),
                };
                let schedule = self
                    .schedules()
                    .get_or_build(key, || svpp::Mepipe::new().warmup_cap(f).generate(&dims))
                    .map_err(|e| format!("generate p={p} s={s} f={f}: {e}"))?;
                let peak_units = validate::peak_in_flight(&schedule)
                    .into_iter()
                    .max()
                    .unwrap_or(0);
                if max_units.is_some_and(|cap| peak_units > cap) {
                    continue;
                }
                let sim_cost = ModelCost::new(cost.clone());
                let result = simulate(
                    &schedule,
                    &sim_cost,
                    &SimConfig {
                        dynamic_wgrad: true,
                        ..Default::default()
                    },
                )?;
                let summary = result.summary();
                rows.push(Retuned {
                    slices: s,
                    warmup: f,
                    synthesized: false,
                    schedule,
                    iteration_time: summary.iteration_time,
                    bubble_ratio: summary.bubble_ratio,
                    peak_units,
                });
            }
            // One solver row per slice count. The order search prices
            // with the *default* deterministic SliceCosts — not the
            // fitted model — so peer workers can regenerate the same
            // schedule from the broadcast knob alone; the fitted model
            // still does the ranking below, like every other row.
            let total_units = n * v * s;
            let cap = max_units.map_or(total_units, |c| c.min(total_units));
            let key = ScheduleKey {
                method: Method::Synth,
                p,
                v,
                s,
                n,
                warmup: Some(cap),
            };
            let built = self
                .schedules()
                .get_or_build(key, || Synth::new().cap(cap).generate(&dims));
            // An infeasible cap (below the SVPP floor) just means no
            // solver row at this slice count.
            if let Ok(schedule) = built {
                let peak_units = validate::peak_in_flight(&schedule)
                    .into_iter()
                    .max()
                    .unwrap_or(0);
                if max_units.is_none_or(|cap| peak_units <= cap) {
                    let sim_cost = ModelCost::new(cost.clone());
                    let result = simulate(
                        &schedule,
                        &sim_cost,
                        &SimConfig {
                            dynamic_wgrad: true,
                            ..Default::default()
                        },
                    )?;
                    let summary = result.summary();
                    rows.push(Retuned {
                        slices: s,
                        warmup: cap,
                        synthesized: true,
                        schedule,
                        iteration_time: summary.iteration_time,
                        bubble_ratio: summary.bubble_ratio,
                        peak_units,
                    });
                }
            }
        }
        rows.sort_by(|a, b| {
            a.iteration_time
                .total_cmp(&b.iteration_time)
                .then(a.synthesized.cmp(&b.synthesized))
                .then(a.slices.cmp(&b.slices))
                .then(a.warmup.cmp(&b.warmup))
        });
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_hw::{accelerator::AcceleratorSpec, link::LinkSpec, topology::ClusterSpec};
    use mepipe_model::{
        config::TransformerConfig,
        partition::{PartitionSpec, SequenceSplit},
    };

    fn fitted(stages: usize, slices: usize, pp_link: LinkSpec) -> ExecutionCost {
        let cfg = TransformerConfig {
            seq_len: 64,
            ..TransformerConfig::tiny(4)
        };
        let spec = PartitionSpec {
            pp: stages,
            vp: 1,
            dp: 1,
            seq: SequenceSplit::SlicePipeline { slices },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 4,
        };
        let cluster = ClusterSpec {
            nodes: 1,
            gpus_per_node: stages,
            accelerator: AcceleratorSpec::rtx4090(),
            intra_node: LinkSpec::pcie4(),
            inter_node: LinkSpec::ib_100g(),
        };
        ExecutionCost::new(cfg, spec, &cluster)
            .unwrap()
            .with_pp_link(pp_link)
    }

    #[test]
    fn rows_are_sorted_and_swap_compatible() {
        let engine = SearchEngine::new();
        let rows = engine
            .retune_mepipe(&fitted(2, 4, LinkSpec::pcie4()), None)
            .unwrap();
        assert!(rows.len() > 1);
        for w in rows.windows(2) {
            assert!(w[0].iteration_time <= w[1].iteration_time);
        }
        for r in &rows {
            // Hot-swap invariants: stage count fixed, slices divide seq.
            assert_eq!(r.schedule.num_workers(), 2);
            assert_eq!(64 % r.slices, 0);
        }
    }

    #[test]
    fn latency_dominated_links_prefer_fewer_slices() {
        // On a near-infinite-bandwidth, high-latency link every extra
        // slice costs a full per-message latency, so the ranking must
        // favour coarser slicing than on a fast link.
        let engine = SearchEngine::new();
        let laggy = LinkSpec {
            name: "laggy",
            bandwidth: 1e12,
            latency: 5e-3,
        };
        let best_laggy = engine
            .retune_mepipe(&fitted(2, 8, laggy), None)
            .unwrap()
            .remove(0);
        let best_fast = engine
            .retune_mepipe(&fitted(2, 8, LinkSpec::pcie4()), None)
            .unwrap()
            .remove(0);
        assert!(
            best_laggy.slices <= best_fast.slices,
            "laggy link picked {} slices, fast link {}",
            best_laggy.slices,
            best_fast.slices
        );
        assert!(best_laggy.slices <= 2, "laggy best: {}", best_laggy.slices);
    }

    #[test]
    fn solver_rows_are_present_and_swap_compatible() {
        let engine = SearchEngine::new();
        let rows = engine
            .retune_mepipe(&fitted(2, 4, LinkSpec::pcie4()), None)
            .unwrap();
        let synth: Vec<_> = rows.iter().filter(|r| r.synthesized).collect();
        assert!(!synth.is_empty(), "no solver rows in the retune ranking");
        for r in &synth {
            assert_eq!(r.schedule.num_workers(), 2);
            assert_eq!(64 % r.slices, 0);
            validate::validate(&r.schedule).unwrap();
        }
        // The solver row at a given slice count is never slower than the
        // best template row at the same slice count under the *solver's*
        // seed family; under the fitted pricing it must at least stay in
        // the same ballpark (within 10%) of the best template overall.
        let best_template = rows
            .iter()
            .filter(|r| !r.synthesized)
            .map(|r| r.iteration_time)
            .fold(f64::INFINITY, f64::min);
        let best_synth = synth
            .iter()
            .map(|r| r.iteration_time)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_synth <= best_template * 1.10,
            "solver rows uncompetitive: {best_synth} vs {best_template}"
        );
    }

    #[test]
    fn memory_cap_drops_hungry_candidates() {
        let engine = SearchEngine::new();
        let uncapped = engine
            .retune_mepipe(&fitted(2, 4, LinkSpec::pcie4()), None)
            .unwrap();
        let cap = uncapped.iter().map(|r| r.peak_units).min().unwrap();
        let capped = engine
            .retune_mepipe(&fitted(2, 4, LinkSpec::pcie4()), Some(cap))
            .unwrap();
        assert!(!capped.is_empty());
        assert!(capped.iter().all(|r| r.peak_units <= cap));
        assert!(capped.len() < uncapped.len());
    }
}
