//! Grid search: best feasible strategy per method (Tables 5 and 8).
//!
//! These free functions are the stable façade over the parallel,
//! bound-pruned, memoized [`SearchEngine`]. One process-wide engine
//! backs them, so repeated searches (experiment grids, the test suite,
//! the CLI) share generated schedules and memoized evaluations. For an
//! isolated cache or custom thread count, construct a
//! [`SearchEngine`] directly.

use std::sync::OnceLock;

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::config::TransformerConfig;

use crate::{
    engine::SearchEngine,
    evaluate::{evaluate, Evaluated},
    space::{enumerate_candidates, Method},
};

/// The process-wide engine behind the free functions.
fn shared_engine() -> &'static SearchEngine {
    static ENGINE: OnceLock<SearchEngine> = OnceLock::new();
    ENGINE.get_or_init(SearchEngine::new)
}

/// Finds the fastest feasible configuration of `method`; `None` when
/// nothing fits (the paper's "-" cells, e.g. VPP/ZBV on Llama-34B).
pub fn search(
    method: Method,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Option<Evaluated> {
    shared_engine().search(method, model, cluster, global_batch)
}

/// The serial exhaustive reference: evaluates every candidate with no
/// pruning, no caching and no threads. [`search`] is bit-identical to
/// this — the parity tests and benches compare against it.
pub fn search_serial(
    method: Method,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Option<Evaluated> {
    enumerate_candidates(method, model, cluster, global_batch)
        .iter()
        .filter_map(|c| evaluate(c, model, cluster).ok())
        .min_by(|a, b| a.iteration_time.total_cmp(&b.iteration_time))
}

/// Evaluates the *entire* space of one method, returning every candidate
/// with its outcome — the transparency view behind Tables 5/8, and the
/// input to Section 9's observation that grid search "incurs substantial
/// overhead due to the large search space".
pub fn search_verbose(
    method: Method,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Vec<(crate::space::Candidate, Result<Evaluated, String>)> {
    shared_engine().search_verbose(method, model, cluster, global_batch)
}

/// Runs the search for every method — one Figure 8 / Figure 10 group.
pub fn search_all(
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Vec<(Method, Option<Evaluated>)> {
    shared_engine().search_all(model, cluster, global_batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbose_search_agrees_with_best() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let all = search_verbose(Method::Mepipe, &model, &cluster, 128);
        assert!(!all.is_empty());
        let best_verbose = all
            .iter()
            .filter_map(|(_, e)| e.as_ref().ok())
            .map(|e| e.iteration_time)
            .fold(f64::INFINITY, f64::min);
        let best = search(Method::Mepipe, &model, &cluster, 128).unwrap();
        assert!((best.iteration_time - best_verbose).abs() < 1e-12);
        // The space contains infeasible points too (OOM rows of Table 5).
        assert!(all.iter().any(|(_, e)| e.is_err()));
    }

    #[test]
    fn mepipe_wins_on_13b_gbs128() {
        // Figure 8's headline: MEPipe is fastest at every global batch
        // size; 1.36x over the best baseline at GBS 128.
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let results = search_all(&model, &cluster, 128);
        let time_of = |m: Method| {
            results
                .iter()
                .find(|(mm, _)| *mm == m)
                .and_then(|(_, e)| e.as_ref())
                .map(|e| e.iteration_time)
        };
        let mepipe = time_of(Method::Mepipe).expect("MEPipe feasible");
        let best_baseline = [Method::Dapple, Method::Vpp, Method::Zb, Method::Zbv]
            .into_iter()
            .filter_map(time_of)
            .fold(f64::INFINITY, f64::min);
        assert!(best_baseline.is_finite(), "no baseline feasible");
        assert!(
            mepipe < best_baseline,
            "MEPipe {mepipe} s not fastest (best baseline {best_baseline} s)"
        );
        let speedup = best_baseline / mepipe;
        assert!(
            (1.05..2.5).contains(&speedup),
            "speedup {speedup} outside the paper's plausible band"
        );
    }

    #[test]
    fn mepipe_optimum_uses_slices() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let best = search(Method::Mepipe, &model, &cluster, 128).expect("feasible");
        assert!(
            best.candidate.spec.seq.spp_slices() >= 2,
            "optimum {} should slice",
            best.candidate.label()
        );
    }
}
