//! The parallel, bound-pruned, memoized strategy search engine.
//!
//! [`SearchEngine`] runs the Section 7.1 exhaustive grid three ways
//! faster than evaluating every candidate end to end, while returning
//! **bit-identical** results to the serial exhaustive reference
//! ([`crate::search::search_serial`]):
//!
//! 1. **Analytic pre-pass** — before any schedule is generated, each
//!    candidate is priced with the closed forms of
//!    [`mepipe_core::analytic`] and the memory model of
//!    [`mepipe_model::memory`]. Candidates whose static memory already
//!    overflows the device, whose 1F1B warmup floor cannot fit the
//!    activation budget, or whose SVPP warmup floor `f = v·s` exceeds
//!    the units that fit, are discarded without generation — exactly the
//!    candidates [`crate::evaluate::evaluate`] would reject anyway.
//! 2. **Branch and bound** — [`mepipe_core::analytic::compute_floor_seconds`]
//!    gives a sound lower bound on any candidate's simulated iteration
//!    time. Workers share an atomic incumbent (the best simulated time so
//!    far); a candidate whose floor exceeds the incumbent (with a 1e-9
//!    relative safety margin) is pruned. Because the floor never
//!    overestimates, pruning only removes candidates that are *strictly*
//!    worse than the final optimum, so the argmin — and every metric of
//!    the returned [`Evaluated`] — is unchanged. Candidates are visited
//!    in ascending-floor order so the incumbent drops fast.
//! 3. **Memoization** — generated schedules are cached by
//!    `(method, p, v, s, n, warmup)` and shared via [`Arc`]; full
//!    evaluations are cached by the candidate's partition plus the
//!    [`ModelCost::fingerprint`] of every price the simulator can
//!    observe, so repeated searches across an experiment grid (Figures
//!    8/10, Tables 5–8) re-simulate nothing.
//!
//! Work is distributed over [`std::thread::scope`] workers (no external
//! thread-pool dependency); the deterministic reduction picks the lowest
//! iteration time with ties broken by the lowest enumeration index,
//! which is exactly what serial `Iterator::min_by` over the candidate
//! list returns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mepipe_core::analytic::{self, AnalysisParams};
use mepipe_core::svpp::SvppConfig;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig, cost::ExecutionCost, memory, partition::PartitionSpec,
};
use mepipe_schedule::{generator::ScheduleError, ir::Schedule};
use mepipe_sim::ModelCost;

use crate::evaluate::{evaluate_with, Evaluated};
use crate::space::{enumerate_candidates, Candidate, Method};

/// Relative safety margin for bound pruning: a candidate is discarded
/// only when its analytic floor exceeds the incumbent by more than this
/// fraction, absorbing any floating-point noise between the closed-form
/// sum and the simulator's op-by-op accumulation (both are ~1e-16-exact;
/// the margin is nine orders of magnitude wider).
const PRUNE_MARGIN: f64 = 1e-9;

/// Key of one generated schedule: everything generation depends on.
///
/// Candidates that differ only in pricing knobs (DP size, recomputation,
/// context-parallel degree) share the same schedule object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// Scheduling method.
    pub method: Method,
    /// Pipeline stages.
    pub p: usize,
    /// Virtual chunks.
    pub v: usize,
    /// Sequence slices.
    pub s: usize,
    /// Micro-batches.
    pub n: usize,
    /// SVPP warmup cap (MEPipe only; `None` = method default).
    pub warmup: Option<usize>,
}

/// Content-addressed cache of generated schedules, shared across an
/// experiment grid via [`Arc`] so evaluation never re-generates.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<ScheduleKey, Arc<Schedule>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ScheduleCache {
    /// Returns the cached schedule for `key`, generating (and caching)
    /// it with `build` on a miss.
    pub fn get_or_build(
        &self,
        key: ScheduleKey,
        build: impl FnOnce() -> Result<Schedule, ScheduleError>,
    ) -> Result<Arc<Schedule>, ScheduleError> {
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock; concurrent duplicate builds are rare
        // and harmless (generation is deterministic).
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }
}

/// Key of one memoized evaluation: the full partition plus the pricing
/// fingerprint (which folds in model, cluster and weight-gradient
/// granularity) and the memory-budget inputs of the feasibility checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EvalKey {
    method: Method,
    spec: PartitionSpec,
    cost_fingerprint: u64,
    budget_bits: u64,
    max_units: usize,
}

/// Counters describing one engine's lifetime of work (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Candidates discarded by the analytic/memory pre-pass.
    pub pre_discarded: usize,
    /// Candidates pruned by the shared-incumbent lower bound.
    pub bound_pruned: usize,
    /// Candidates fully evaluated (generation + simulation).
    pub evaluated: usize,
    /// Evaluations answered from the memo cache.
    pub eval_hits: usize,
    /// Schedule generations answered from the schedule cache.
    pub schedule_hits: usize,
    /// Schedules actually generated.
    pub schedule_misses: usize,
}

/// Outcome of the cheap pre-pass for one candidate.
enum Prepass {
    /// Would fail `evaluate`'s own feasibility checks; skip entirely.
    Infeasible,
    /// Feasibility unknown; `floor` bounds its simulated time from below.
    Ready { floor: f64 },
}

/// The search engine. One instance owns both caches; reuse it across an
/// experiment grid to amortize generation and simulation.
#[derive(Debug, Default)]
pub struct SearchEngine {
    schedules: ScheduleCache,
    evals: Mutex<HashMap<EvalKey, Result<Evaluated, String>>>,
    threads: Option<usize>,
    pruning: bool,
    pre_discarded: AtomicUsize,
    bound_pruned: AtomicUsize,
    evaluated: AtomicUsize,
    eval_hits: AtomicUsize,
}

impl SearchEngine {
    /// A pruning engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        Self {
            pruning: true,
            ..Default::default()
        }
    }

    /// Overrides the worker-thread count (default: available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Disables bound pruning (candidates are still memoized and run in
    /// parallel). Used by the parity tests and verbose listings.
    pub fn without_pruning(mut self) -> Self {
        self.pruning = false;
        self
    }

    /// The shared generation cache (used by the retune path too).
    pub(crate) fn schedules(&self) -> &ScheduleCache {
        &self.schedules
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            pre_discarded: self.pre_discarded.load(Ordering::Relaxed),
            bound_pruned: self.bound_pruned.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            eval_hits: self.eval_hits.load(Ordering::Relaxed),
            schedule_hits: self.schedules.hits.load(Ordering::Relaxed),
            schedule_misses: self.schedules.misses.load(Ordering::Relaxed),
        }
    }

    fn worker_count(&self, work_items: usize) -> usize {
        let hw = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        hw.min(work_items).max(1)
    }

    /// The best strategy for `method`, identical to
    /// [`crate::search::search_serial`] bit for bit.
    pub fn search(
        &self,
        method: Method,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
        global_batch: usize,
    ) -> Option<Evaluated> {
        let candidates = enumerate_candidates(method, model, cluster, global_batch);
        self.search_candidates(&candidates, model, cluster)
    }

    /// Best strategy per method, in the paper's plotting order.
    pub fn search_all(
        &self,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
        global_batch: usize,
    ) -> Vec<(Method, Option<Evaluated>)> {
        Method::all()
            .into_iter()
            .map(|m| (m, self.search(m, model, cluster, global_batch)))
            .collect()
    }

    /// Every candidate with its evaluation outcome, in enumeration
    /// order. Never prunes (each row is wanted), but memoizes and runs
    /// in parallel.
    pub fn search_verbose(
        &self,
        method: Method,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
        global_batch: usize,
    ) -> Vec<(Candidate, Result<Evaluated, String>)> {
        let candidates = enumerate_candidates(method, model, cluster, global_batch);
        let rows = Mutex::new(Vec::with_capacity(candidates.len()));
        let next = AtomicUsize::new(0);
        let workers = self.worker_count(candidates.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(c) = candidates.get(i) else { break };
                    let r = self.evaluate(c, model, cluster);
                    rows.lock().unwrap().push((i, r));
                });
            }
        });
        let mut rows = rows.into_inner().unwrap();
        rows.sort_unstable_by_key(|(i, _)| *i);
        candidates
            .into_iter()
            .zip(rows.into_iter().map(|(_, r)| r))
            .collect()
    }

    /// Memoized, schedule-cached version of [`crate::evaluate::evaluate`]
    /// — same results, same error strings.
    pub fn evaluate(
        &self,
        candidate: &Candidate,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
    ) -> Result<Evaluated, String> {
        let Some(key) = self.eval_key(candidate, model, cluster) else {
            // No cost model ⇒ `evaluate` fails the same cheap way; not
            // worth a cache slot.
            return evaluate_with(candidate, model, cluster, Some(&self.schedules));
        };
        if let Some(hit) = self.evals.lock().unwrap().get(&key) {
            self.eval_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let r = evaluate_with(candidate, model, cluster, Some(&self.schedules));
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.evals.lock().unwrap().insert(key, r.clone());
        r
    }

    fn eval_key(
        &self,
        candidate: &Candidate,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
    ) -> Option<EvalKey> {
        let cost = ExecutionCost::new(*model, candidate.spec, cluster).ok()?;
        let sim_cost = match candidate.method {
            Method::Mepipe | Method::DualPipe | Method::Blocks | Method::Synth => {
                ModelCost::new(cost)
            }
            _ => ModelCost::new_coarse(cost),
        };
        let usable = cluster.accelerator.usable_memory_bytes();
        let budget = memory::activation_budget_bytes(model, &candidate.spec, usable);
        Some(EvalKey {
            method: candidate.method,
            spec: candidate.spec,
            cost_fingerprint: sim_cost.fingerprint(),
            budget_bits: budget.to_bits(),
            max_units: memory::max_in_flight_units(model, &candidate.spec, usable),
        })
    }

    /// Cheap feasibility + lower bound for one candidate, mirroring the
    /// checks `evaluate` performs before and after generation.
    fn prepass(
        &self,
        candidate: &Candidate,
        model: &TransformerConfig,
        cluster: &ClusterSpec,
    ) -> Prepass {
        let spec = candidate.spec;
        let Ok(cost) = ExecutionCost::new(*model, spec, cluster) else {
            return Prepass::Infeasible;
        };
        let usable = cluster.accelerator.usable_memory_bytes();
        if memory::activation_budget_bytes(model, &spec, usable) <= 0.0 {
            return Prepass::Infeasible;
        }
        let max_units = memory::max_in_flight_units(model, &spec, usable);
        let dims = candidate.dims();
        let params = AnalysisParams {
            p: dims.p,
            v: dims.v,
            s: dims.s,
            n: dims.n,
        };
        let fits = match candidate.method {
            // `evaluate` rejects MEPipe (and the solver tier, which seeds
            // from the same family) when even the f = v·s floor exceeds
            // the units that fit; otherwise it lowers f to fit.
            Method::Mepipe | Method::Synth => {
                SvppConfig::from_dims(&dims).min_warmup() <= max_units
            }
            // A bidirectional entry stage admits at least one
            // micro-batch's slices per direction.
            Method::DualPipe => dims.s <= max_units,
            // The lifespan-0 member of the family pins every stage at v·s.
            Method::Blocks => dims.v * dims.s <= max_units,
            // 1F1B-family schedules hold at least the warmup floor.
            _ => analytic::warmup_units_floor(params) <= max_units,
        };
        if !fits {
            return Prepass::Infeasible;
        }
        let s = spec.seq.spp_slices();
        let forward: Vec<f64> = (0..s).map(|i| cost.forward_time(i)).collect();
        let backward: Vec<f64> = (0..s).map(|i| cost.backward_input_time(i)).collect();
        let overhead = cost.dp_sync_time() + cost.optimizer_time();
        let floor = match candidate.method {
            // Bidirectional pipelines start from both ends at t = 0, so
            // the unidirectional ramp/chain terms of the closed-form
            // floor do not apply; the per-worker busy time (every worker
            // runs every micro-batch through one L/p block) is the sound
            // bound.
            Method::DualPipe => {
                let fwd_sum: f64 = forward.iter().sum();
                let bwd_sum: f64 = backward.iter().sum();
                dims.n as f64 * (fwd_sum + bwd_sum + s as f64 * cost.wgrad_time()) + overhead
            }
            _ => analytic::compute_floor_seconds(
                params,
                analytic::FloorInputs {
                    forward: &forward,
                    backward_input: &backward,
                    wgrad: cost.wgrad_time(),
                    overhead,
                },
            ),
        };
        Prepass::Ready { floor }
    }

    /// Branch-and-bound parallel argmin over an explicit candidate list.
    ///
    /// Equivalent to
    /// `candidates.iter().filter_map(|c| evaluate(c, ..).ok()).min_by(total_cmp)`
    /// including the tie-break (serial `min_by` keeps the *first* of
    /// equal minima; pruning only ever removes strictly worse
    /// candidates, and the reduction breaks ties by enumeration index).
    pub fn search_candidates(
        &self,
        candidates: &[Candidate],
        model: &TransformerConfig,
        cluster: &ClusterSpec,
    ) -> Option<Evaluated> {
        // Pre-pass: discard infeasible candidates, floor the rest.
        let mut ready: Vec<(usize, f64)> = Vec::with_capacity(candidates.len());
        for (i, c) in candidates.iter().enumerate() {
            match self.prepass(c, model, cluster) {
                Prepass::Infeasible => {
                    self.pre_discarded.fetch_add(1, Ordering::Relaxed);
                }
                Prepass::Ready { floor } => ready.push((i, floor)),
            }
        }
        // Visit cheapest floors first so the incumbent drops fast.
        ready.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let incumbent = AtomicU64::new(f64::INFINITY.to_bits());
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Evaluated)>> = Mutex::new(Vec::new());
        let workers = self.worker_count(ready.len());
        let run_worker = || loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(idx, floor)) = ready.get(t) else {
                break;
            };
            if self.pruning {
                let best = f64::from_bits(incumbent.load(Ordering::Acquire));
                if floor > best * (1.0 + PRUNE_MARGIN) {
                    self.bound_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            if let Ok(e) = self.evaluate(&candidates[idx], model, cluster) {
                relax_min(&incumbent, e.iteration_time);
                results.lock().unwrap().push((idx, e));
            }
        };
        if workers <= 1 {
            run_worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(run_worker);
                }
            });
        }

        // Deterministic reduction: lowest time, ties to the lowest index
        // — the serial first-of-equal-minima choice.
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .min_by(|(ia, a), (ib, b)| {
                a.iteration_time
                    .total_cmp(&b.iteration_time)
                    .then(ia.cmp(ib))
            })
            .map(|(_, e)| e)
    }
}

/// Lock-free monotonic minimum over f64 bit patterns.
fn relax_min(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Acquire);
    while value < f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => break,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::search_serial;

    fn bits(e: &Evaluated) -> (u64, u64, u64, u64, Option<usize>) {
        (
            e.iteration_time.to_bits(),
            e.bubble_ratio.to_bits(),
            e.peak_activation_bytes.to_bits(),
            e.mfu.to_bits(),
            e.warmup,
        )
    }

    #[test]
    fn engine_matches_serial_reference_bit_for_bit() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let engine = SearchEngine::new();
        for gbs in [64usize, 128] {
            for m in Method::all() {
                let fast = engine.search(m, &model, &cluster, gbs);
                let slow = search_serial(m, &model, &cluster, gbs);
                match (fast, slow) {
                    (None, None) => {}
                    (Some(f), Some(s)) => {
                        assert_eq!(f.candidate, s.candidate, "{} gbs {gbs}", m.name());
                        assert_eq!(bits(&f), bits(&s), "{} gbs {gbs}", m.name());
                    }
                    (f, s) => panic!(
                        "{} gbs {gbs}: engine {:?} vs serial {:?}",
                        m.name(),
                        f.map(|e| e.candidate),
                        s.map(|e| e.candidate)
                    ),
                }
            }
        }
        let st = engine.stats();
        assert!(
            st.bound_pruned > 0,
            "expected pruning on the 13B grids: {st:?}"
        );
    }

    #[test]
    fn analytic_floor_never_exceeds_simulated_time() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let engine = SearchEngine::new().without_pruning();
        for m in Method::all() {
            for c in enumerate_candidates(m, &model, &cluster, 64) {
                let Prepass::Ready { floor } = engine.prepass(&c, &model, &cluster) else {
                    continue;
                };
                if let Ok(e) = engine.evaluate(&c, &model, &cluster) {
                    assert!(
                        floor <= e.iteration_time * (1.0 + PRUNE_MARGIN),
                        "{}: floor {floor} > simulated {} for {}",
                        m.name(),
                        e.iteration_time,
                        c.label()
                    );
                }
            }
        }
    }

    #[test]
    fn prepass_never_discards_feasible_candidates() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let engine = SearchEngine::new();
        for m in Method::all() {
            for c in enumerate_candidates(m, &model, &cluster, 32) {
                if matches!(engine.prepass(&c, &model, &cluster), Prepass::Infeasible) {
                    assert!(
                        crate::evaluate::evaluate(&c, &model, &cluster).is_err(),
                        "{}: pre-pass discarded feasible {}",
                        m.name(),
                        c.label()
                    );
                }
            }
        }
    }

    #[test]
    fn caches_answer_repeat_searches() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let engine = SearchEngine::new();
        let first = engine.search(Method::Mepipe, &model, &cluster, 128);
        let evaluated_once = engine.stats().evaluated;
        let second = engine.search(Method::Mepipe, &model, &cluster, 128);
        let st = engine.stats();
        assert_eq!(
            st.evaluated, evaluated_once,
            "second search must re-simulate nothing"
        );
        assert!(st.eval_hits > 0);
        let (a, b) = (first.unwrap(), second.unwrap());
        assert_eq!(a.candidate, b.candidate);
        assert_eq!(a.iteration_time.to_bits(), b.iteration_time.to_bits());
    }

    #[test]
    fn verbose_rows_match_direct_evaluation() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let engine = SearchEngine::new();
        let rows = engine.search_verbose(Method::Zbv, &model, &cluster, 128);
        assert!(!rows.is_empty());
        for (c, r) in &rows {
            let direct = crate::evaluate::evaluate(c, &model, &cluster);
            match (r, direct) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.iteration_time.to_bits(), b.iteration_time.to_bits())
                }
                (Err(a), Err(b)) => assert_eq!(a, &b),
                (a, b) => panic!("{}: {a:?} vs {b:?}", c.label()),
            }
        }
    }
}
