//! The strategy search space, per scheduling method.

use mepipe_core::svpp;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    partition::{PartitionSpec, SequenceSplit},
};
use mepipe_schedule::{
    generator::{self, Dims, ScheduleError, ScheduleGenerator},
    ir::Schedule,
};

/// The five systems compared in Section 7, plus the three synthesized
/// schedule tiers that share the same IR, validator and simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// DAPPLE / 1F1B (optionally with CP and recomputation).
    Dapple,
    /// Megatron interleaved virtual pipeline parallelism.
    Vpp,
    /// Zero bubble ZB-1P.
    Zb,
    /// Zero bubble ZBV (V-shaped, v = 2).
    Zbv,
    /// MEPipe: SVPP + fine-grained weight gradients.
    Mepipe,
    /// DualPipe bidirectional scheduling (two streams entering from
    /// opposite ends; duplicates parameters per worker).
    DualPipe,
    /// Controllable-memory building-block schedules (lifespan knob).
    Blocks,
    /// Solver-synthesized per-worker op orders (bound-pruned beam search
    /// over the SVPP-shaped IR).
    Synth,
}

impl Method {
    /// All methods: the hand-written zoo in the paper's plotting order,
    /// then the synthesized tiers.
    pub fn all() -> [Method; 8] {
        [
            Method::Dapple,
            Method::Vpp,
            Method::Zb,
            Method::Zbv,
            Method::Mepipe,
            Method::DualPipe,
            Method::Blocks,
            Method::Synth,
        ]
    }

    /// The hand-written templates of Section 7 (the Figure 8 baselines
    /// plus MEPipe itself).
    pub fn templates() -> [Method; 5] {
        [
            Method::Dapple,
            Method::Vpp,
            Method::Zb,
            Method::Zbv,
            Method::Mepipe,
        ]
    }

    /// The synthesized tiers: generated families and solver output, never
    /// counted as "baselines" in the paper's figures.
    pub fn synthesized() -> [Method; 3] {
        [Method::DualPipe, Method::Blocks, Method::Synth]
    }

    /// Whether this method is a synthesized tier (see
    /// [`Method::synthesized`]).
    pub fn is_synthesized(self) -> bool {
        matches!(self, Method::DualPipe | Method::Blocks | Method::Synth)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Dapple => "DAPPLE",
            Method::Vpp => "VPP",
            Method::Zb => "ZB",
            Method::Zbv => "ZBV",
            Method::Mepipe => "MEPipe",
            Method::DualPipe => "DualPipe",
            Method::Blocks => "Blocks",
            Method::Synth => "Synth",
        }
    }

    /// Whether the method can use activation recomputation (the paper
    /// notes it is incompatible with zero-bubble W deferral, and MEPipe
    /// never needs it).
    pub fn supports_recompute(self) -> bool {
        matches!(self, Method::Dapple | Method::Vpp)
    }

    /// This method's [`ScheduleGenerator`] with default knobs (MEPipe's
    /// lowest-bubble warmup; `evaluate` tightens it to the memory budget).
    pub fn generator(self) -> Box<dyn ScheduleGenerator> {
        match self {
            Method::Dapple => Box::new(generator::Dapple),
            Method::Vpp => Box::new(generator::Vpp),
            Method::Zb => Box::new(generator::Zb),
            Method::Zbv => Box::new(generator::Zbv),
            Method::Mepipe => Box::new(svpp::Mepipe::new()),
            Method::DualPipe => Box::new(mepipe_schedule::DualPipe::new()),
            Method::Blocks => Box::new(mepipe_schedule::Blocks::uniform()),
            Method::Synth => Box::new(mepipe_core::Synth::new()),
        }
    }

    /// Builds this method's schedule for `dims` — the single generation
    /// entry point of the unified API.
    pub fn generate(&self, dims: &Dims) -> Result<Schedule, ScheduleError> {
        self.generator().generate(dims)
    }
}

/// One point of the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Scheduling method.
    pub method: Method,
    /// The partition (PP, VP, DP, CP/SPP, recompute, batching).
    pub spec: PartitionSpec,
}

impl Candidate {
    /// The schedule dimensions of this candidate. Context parallelism
    /// affects only the cost model, not the schedule shape, so `s` comes
    /// from slice pipelining alone.
    ///
    /// DualPipe's two chunks are the two directions' *replicas* of the
    /// same `p`-way layer split, not an interleaved refinement, so its
    /// partition keeps `vp = 1` (each op prices `L/p` layers) while the
    /// schedule dims carry `v = 2`.
    pub fn dims(&self) -> Dims {
        let v = match self.method {
            Method::DualPipe => 2,
            _ => self.spec.vp,
        };
        Dims::new(self.spec.pp, self.spec.micro_batches())
            .virtual_chunks(v)
            .slices(self.spec.seq.spp_slices())
    }

    /// Compact label like `(8, 4, 1, ✗)` — (PP, CP/SPP, VP, recompute), the
    /// notation of Tables 5 and 8.
    pub fn label(&self) -> String {
        let seq = match self.spec.seq {
            SequenceSplit::None => 1,
            SequenceSplit::Context { size } => size,
            SequenceSplit::SlicePipeline { slices } => slices,
        };
        format!(
            "({}, {}, {}, {})",
            self.spec.pp,
            seq,
            self.spec.vp,
            if self.spec.recompute { "✓" } else { "✗" }
        )
    }
}

/// Enumerates every shape-valid candidate for `method` on `cluster`.
///
/// Constraints follow Section 7.1: the model must split evenly into
/// `pp × vp` chunks, the data-parallel size is at least 2, CP occupies
/// workers while SPP does not, and the global batch must divide evenly.
pub fn enumerate_candidates(
    method: Method,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Vec<Candidate> {
    let devices = cluster.num_devices();
    let mut out = Vec::new();
    let pps = [2usize, 4, 8, 16, 32];
    let vps: &[usize] = match method {
        Method::Vpp => &[2, 4],
        Method::Zbv => &[2],
        // DualPipe's v = 2 is a replica count, not a partition refinement
        // (see `Candidate::dims`); the synthesized tiers search slices.
        _ => &[1],
    };
    let seqs: &[usize] = match method {
        Method::Mepipe | Method::Synth => &[1, 2, 4, 8, 16],
        Method::DualPipe | Method::Blocks => &[1, 2, 4, 8],
        _ => &[1, 2, 4, 8],
    };
    let recomputes: &[bool] = if method.supports_recompute() {
        &[false, true]
    } else {
        &[false]
    };

    for &pp in &pps {
        for &vp in vps {
            if !model.pipeline_slots().is_multiple_of(pp * vp) {
                continue;
            }
            for &seq in seqs {
                let seq_split = match method {
                    // Slice-level schedules: SPP shares the sequence
                    // across pipeline time, consuming no workers.
                    Method::Mepipe | Method::DualPipe | Method::Blocks | Method::Synth => {
                        SequenceSplit::SlicePipeline { slices: seq }
                    }
                    _ if seq == 1 => SequenceSplit::None,
                    _ => SequenceSplit::Context { size: seq },
                };
                let cp_workers = seq_split.cp_size();
                if pp * cp_workers > devices {
                    continue;
                }
                if !devices.is_multiple_of(pp * cp_workers) {
                    continue;
                }
                let dp = devices / (pp * cp_workers);
                if dp < 2 {
                    continue;
                }
                if !global_batch.is_multiple_of(dp) {
                    continue;
                }
                for &recompute in recomputes {
                    let spec = PartitionSpec {
                        pp,
                        vp,
                        dp,
                        seq: seq_split,
                        recompute,
                        micro_batch_size: 1,
                        global_batch,
                    };
                    if spec.validate(model, devices).is_err() {
                        continue;
                    }
                    // Megatron's interleaved scheduler needs n % p == 0.
                    if method == Method::Vpp && !spec.micro_batches().is_multiple_of(pp) {
                        continue;
                    }
                    // DualPipe pairs micro-batches into two streams.
                    if method == Method::DualPipe
                        && (spec.micro_batches() < 2 || !spec.micro_batches().is_multiple_of(2))
                    {
                        continue;
                    }
                    out.push(Candidate { method, spec });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_is_nonempty_for_every_method() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        for m in Method::all() {
            let c = enumerate_candidates(m, &model, &cluster, 128);
            assert!(!c.is_empty(), "{} has an empty space", m.name());
        }
    }

    #[test]
    fn templates_and_synthesized_partition_all() {
        let mut combined: Vec<Method> = Method::templates().to_vec();
        combined.extend(Method::synthesized());
        assert_eq!(combined, Method::all().to_vec());
        for m in Method::templates() {
            assert!(!m.is_synthesized());
        }
        for m in Method::synthesized() {
            assert!(m.is_synthesized());
        }
    }

    #[test]
    fn dualpipe_dims_carry_two_replica_chunks() {
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 2 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let c = Candidate {
            method: Method::DualPipe,
            spec,
        };
        assert_eq!(c.dims().v, 2);
        assert_eq!(c.spec.vp, 1, "pricing partition stays vp = 1");
        let every = enumerate_candidates(
            Method::DualPipe,
            &TransformerConfig::llama2_13b(),
            &ClusterSpec::rtx4090_cluster(),
            128,
        );
        assert!(!every.is_empty());
        for c in every {
            assert!(c.spec.micro_batches().is_multiple_of(2), "{:?}", c);
            assert_eq!(c.dims().v, 2);
        }
    }

    #[test]
    fn mepipe_space_contains_the_paper_optimum() {
        // Table 5: MEPipe's 13B optimum is (8, 4, 1, ✗).
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let c = enumerate_candidates(Method::Mepipe, &model, &cluster, 128);
        assert!(
            c.iter().any(|x| x.label() == "(8, 4, 1, ✗)"),
            "labels: {:?}",
            c.iter().map(Candidate::label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cp_consumes_workers_spp_does_not() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let dapple = enumerate_candidates(Method::Dapple, &model, &cluster, 128);
        // DAPPLE with cp=8 and pp=8 would need dp=1 — excluded.
        assert!(!dapple
            .iter()
            .any(|c| c.spec.pp == 8 && c.spec.seq.cp_size() == 8));
        let mepipe = enumerate_candidates(Method::Mepipe, &model, &cluster, 128);
        // MEPipe at spp=8, pp=8 keeps dp=8 — allowed.
        assert!(mepipe
            .iter()
            .any(|c| c.spec.pp == 8 && c.spec.seq.spp_slices() == 8));
    }

    #[test]
    fn every_candidate_validates() {
        let model = TransformerConfig::llama2_7b();
        let cluster = ClusterSpec::rtx4090_cluster();
        for m in Method::all() {
            for c in enumerate_candidates(m, &model, &cluster, 128) {
                assert!(c.spec.validate(&model, 64).is_ok(), "{:?}", c);
            }
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        let c = Candidate {
            method: Method::Mepipe,
            spec: PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::SlicePipeline { slices: 4 },
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        };
        assert_eq!(c.label(), "(8, 4, 1, ✗)");
    }
}
