//! Evaluation of one strategy candidate on the simulator.

use mepipe_core::svpp::SvppConfig;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{config::TransformerConfig, cost::ExecutionCost, memory};
use mepipe_schedule::{baselines, ir::Schedule, validate};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    metrics,
    ModelCost,
};

use crate::space::{Candidate, Method};

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate evaluated.
    pub candidate: Candidate,
    /// Simulated iteration time in seconds.
    pub iteration_time: f64,
    /// Mean pipeline bubble ratio.
    pub bubble_ratio: f64,
    /// Peak activation bytes on the most loaded worker.
    pub peak_activation_bytes: f64,
    /// Model FLOPS utilisation.
    pub mfu: f64,
    /// The SVPP warmup budget actually used (MEPipe only).
    pub warmup: Option<usize>,
}

/// Evaluates a candidate; `Err` carries the infeasibility reason (OOM,
/// shape constraint, etc.) — the paper's "OOM" table cells.
pub fn evaluate(
    candidate: &Candidate,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
) -> Result<Evaluated, String> {
    let spec = candidate.spec;
    let cost = ExecutionCost::new(*model, spec, cluster)?;
    let usable = cluster.accelerator.usable_memory_bytes();
    let budget = memory::activation_budget_bytes(model, &spec, usable);
    if budget <= 0.0 {
        return Err(format!(
            "static memory alone exceeds the device ({:.1} GiB over)",
            -budget / 1024f64.powi(3)
        ));
    }
    let max_units = memory::max_in_flight_units(model, &spec, usable);
    let n = spec.micro_batches();

    let (schedule, warmup): (Schedule, Option<usize>) = match candidate.method {
        Method::Dapple => (baselines::generate_dapple(spec.pp, n)?, None),
        Method::Vpp => (baselines::generate_vpp(spec.pp, spec.vp, n)?, None),
        Method::Zb => (baselines::generate_zb(spec.pp, n)?, None),
        Method::Zbv => (baselines::generate_zbv(spec.pp, n)?, None),
        Method::Mepipe => {
            let base = SvppConfig {
                stages: spec.pp,
                virtual_chunks: spec.vp,
                slices: spec.seq.spp_slices(),
                micro_batches: n,
                warmup_cap: None,
            };
            if max_units < base.min_warmup() {
                return Err(format!(
                    "even the f = v*s = {} floor needs more than the {} units that fit",
                    base.min_warmup(),
                    max_units
                ));
            }
            let f = max_units.min(base.max_warmup());
            let cfg = SvppConfig { warmup_cap: Some(f), ..base };
            (mepipe_core::svpp::generate_svpp_split(&cfg)?, Some(f))
        }
    };

    // Static memory feasibility: the schedule's peak in-flight units must
    // fit the activation budget.
    let peak_units = validate::peak_in_flight(&schedule).into_iter().max().unwrap_or(0);
    if peak_units > max_units {
        return Err(format!(
            "OOM: schedule holds {peak_units} in-flight units, only {max_units} fit"
        ));
    }

    let sim_cost = match candidate.method {
        Method::Mepipe => ModelCost::new(cost),
        _ => ModelCost::new_coarse(cost),
    };
    let dynamic = matches!(candidate.method, Method::Zb | Method::Zbv | Method::Mepipe);
    let result = simulate(
        &schedule,
        &sim_cost,
        &SimConfig {
            dynamic_wgrad: dynamic,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )?;
    if let Some((worker, bytes)) = result.oom {
        return Err(format!(
            "OOM in simulation: worker {worker} needed {:.1} GiB",
            bytes / 1024f64.powi(3)
        ));
    }
    let peak = result.peak_activation_bytes.iter().copied().fold(0.0, f64::max);
    Ok(Evaluated {
        candidate: candidate.clone(),
        iteration_time: result.iteration_time,
        bubble_ratio: result.bubble_ratio(),
        peak_activation_bytes: peak,
        mfu: metrics::mfu(&result, sim_cost.execution_cost()),
        warmup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::partition::{PartitionSpec, SequenceSplit};

    fn mepipe_13b() -> Candidate {
        Candidate {
            method: Method::Mepipe,
            spec: PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::SlicePipeline { slices: 4 },
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        }
    }

    #[test]
    fn paper_optimum_evaluates_near_paper_numbers() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let e = evaluate(&mepipe_13b(), &model, &cluster).expect("feasible");
        // Paper: 5852 ms. Accept a factor-2 band; the shape tests are in
        // the search module.
        assert!(
            (3.0..9.0).contains(&e.iteration_time),
            "iteration {} s",
            e.iteration_time
        );
        assert!(e.warmup.is_some());
        assert!(e.mfu > 0.2);
    }

    #[test]
    fn oversized_model_reports_oom() {
        // Llama-34B at pp=2 cannot even hold its parameters.
        let model = TransformerConfig::llama2_34b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let c = Candidate {
            method: Method::Dapple,
            spec: PartitionSpec {
                pp: 2,
                vp: 1,
                dp: 32,
                seq: SequenceSplit::None,
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        };
        let err = evaluate(&c, &model, &cluster).unwrap_err();
        assert!(err.contains("exceeds") || err.contains("OOM"), "{err}");
    }

    #[test]
    fn dapple_13b_without_cp_ooms_like_figure1() {
        // DAPPLE without CP must hold p whole micro-batches (~A = 26 GiB):
        // impossible on a 24 GB card — the premise of the whole paper.
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let c = Candidate {
            method: Method::Dapple,
            spec: PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::None,
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        };
        assert!(evaluate(&c, &model, &cluster).is_err());
    }
}
