//! Evaluation of one strategy candidate on the simulator.

use std::sync::Arc;

use mepipe_core::svpp::{self, SvppConfig};
use mepipe_core::Synth;
use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{config::TransformerConfig, cost::ExecutionCost, memory};
use mepipe_schedule::{
    generator::{ScheduleError, ScheduleGenerator},
    ir::Schedule,
    validate, Blocks, DualPipe,
};
use mepipe_sim::{
    engine::{simulate, SimConfig},
    metrics, ModelCost,
};

use crate::engine::{ScheduleCache, ScheduleKey};
use crate::space::{Candidate, Method};

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate evaluated.
    pub candidate: Candidate,
    /// Simulated iteration time in seconds.
    pub iteration_time: f64,
    /// Mean pipeline bubble ratio.
    pub bubble_ratio: f64,
    /// Peak activation bytes on the most loaded worker.
    pub peak_activation_bytes: f64,
    /// Model FLOPS utilisation.
    pub mfu: f64,
    /// The memory-knob value actually used: SVPP warmup (MEPipe),
    /// per-direction admissions (DualPipe), lifespan (Blocks) or the
    /// solver's unit cap (Synth). `None` for knob-free methods.
    pub warmup: Option<usize>,
}

/// Evaluates a candidate; `Err` carries the infeasibility reason (OOM,
/// shape constraint, etc.) — the paper's "OOM" table cells.
///
/// This is the uncached entry point; [`crate::engine::SearchEngine`]
/// wraps it with schedule and result memoization and returns
/// bit-identical outcomes.
pub fn evaluate(
    candidate: &Candidate,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
) -> Result<Evaluated, String> {
    evaluate_with(candidate, model, cluster, None)
}

/// [`evaluate`] with an optional shared schedule cache: generation goes
/// through `schedules` when present, so candidates that differ only in
/// pricing (DP size, CP degree, recomputation) share one generated
/// schedule across the grid.
pub(crate) fn evaluate_with(
    candidate: &Candidate,
    model: &TransformerConfig,
    cluster: &ClusterSpec,
    schedules: Option<&ScheduleCache>,
) -> Result<Evaluated, String> {
    let spec = candidate.spec;
    let cost = ExecutionCost::new(*model, spec, cluster)?;
    let usable = cluster.accelerator.usable_memory_bytes();
    let budget = memory::activation_budget_bytes(model, &spec, usable);
    if budget <= 0.0 {
        return Err(format!(
            "static memory alone exceeds the device ({:.1} GiB over)",
            -budget / 1024f64.powi(3)
        ));
    }
    let max_units = memory::max_in_flight_units(model, &spec, usable);
    // Bidirectional schedules pay for a second parameter replica before
    // any activation fits.
    let (budget, max_units) = if candidate.method == Method::DualPipe {
        let b = budget - memory::bidirectional_extra_static_bytes(model, &spec);
        if b <= 0.0 {
            return Err(format!(
                "the reverse-direction parameter replica alone overflows the device ({:.1} GiB over)",
                -b / 1024f64.powi(3)
            ));
        }
        let unit = memory::activation_bytes_per_unit(model, &spec);
        (b, (b / unit).floor() as usize)
    } else {
        (budget, max_units)
    };

    let dims = candidate.dims();
    let build = |warmup: Option<usize>,
                 gen: &dyn Fn() -> Result<Schedule, ScheduleError>|
     -> Result<Arc<Schedule>, ScheduleError> {
        let key = ScheduleKey {
            method: candidate.method,
            p: dims.p,
            v: dims.v,
            s: dims.s,
            n: dims.n,
            warmup,
        };
        match schedules {
            Some(cache) => cache.get_or_build(key, gen),
            None => Ok(Arc::new(gen()?)),
        }
    };
    let (schedule, warmup): (Arc<Schedule>, Option<usize>) = match candidate.method {
        Method::Mepipe => {
            let base = SvppConfig::from_dims(&dims);
            if max_units < base.min_warmup() {
                return Err(format!(
                    "even the f = v*s = {} floor needs more than the {} units that fit",
                    base.min_warmup(),
                    max_units
                ));
            }
            let f = max_units.min(base.max_warmup());
            (
                build(Some(f), &|| {
                    svpp::Mepipe::new().warmup_cap(f).generate(&dims)
                })?,
                Some(f),
            )
        }
        Method::DualPipe => {
            let f_min = DualPipe::min_warmup(&dims);
            if max_units < f_min {
                return Err(format!(
                    "even the f = s = {f_min} floor needs more than the {max_units} units that fit"
                ));
            }
            // Both directions ramp at once and pass through each other's
            // stages, so a worker can hold both streams' admissions:
            // budget each direction half the units that fit.
            let f = (max_units / 2).max(f_min).min(DualPipe::max_warmup(&dims));
            (
                build(Some(f), &|| DualPipe::new().warmup_cap(f).generate(&dims))?,
                Some(f),
            )
        }
        Method::Blocks => {
            let floor = dims.v * dims.s;
            if max_units < floor {
                return Err(format!(
                    "even the lifespan-0 floor of {floor} units needs more than the {max_units} that fit"
                ));
            }
            let k = (max_units - floor).min(Blocks::max_lifespan(&dims));
            (
                build(Some(k), &|| Blocks::uniform().lifespan(k).generate(&dims))?,
                Some(k),
            )
        }
        Method::Synth => {
            let base = SvppConfig::from_dims(&dims);
            if max_units < base.min_warmup() {
                return Err(format!(
                    "even the f = v*s = {} floor needs more than the {} units that fit",
                    base.min_warmup(),
                    max_units
                ));
            }
            (
                build(Some(max_units), &|| {
                    Synth::new().cap(max_units).generate(&dims)
                })?,
                Some(max_units),
            )
        }
        _ => (build(None, &|| candidate.method.generate(&dims))?, None),
    };

    // Static memory feasibility: the schedule's peak in-flight units must
    // fit the activation budget.
    let peak_units = validate::peak_in_flight(&schedule)
        .into_iter()
        .max()
        .unwrap_or(0);
    if peak_units > max_units {
        return Err(format!(
            "OOM: schedule holds {peak_units} in-flight units, only {max_units} fit"
        ));
    }

    // The synthesized tiers run on the MEPipe runtime and inherit its
    // per-GEMM weight-gradient granularity; the zero-bubble baselines
    // defer whole weight ops.
    let sim_cost = match candidate.method {
        Method::Mepipe | Method::DualPipe | Method::Blocks | Method::Synth => ModelCost::new(cost),
        _ => ModelCost::new_coarse(cost),
    };
    let dynamic = matches!(
        candidate.method,
        Method::Zb
            | Method::Zbv
            | Method::Mepipe
            | Method::DualPipe
            | Method::Blocks
            | Method::Synth
    );
    let result = simulate(
        &schedule,
        &sim_cost,
        &SimConfig {
            dynamic_wgrad: dynamic,
            memory_limit_bytes: Some(budget),
            ..Default::default()
        },
    )?;
    let summary = result.summary();
    if let Some((worker, bytes)) = summary.oom {
        return Err(format!(
            "OOM in simulation: worker {worker} needed {:.1} GiB",
            bytes / 1024f64.powi(3)
        ));
    }
    Ok(Evaluated {
        candidate: candidate.clone(),
        iteration_time: summary.iteration_time,
        bubble_ratio: summary.bubble_ratio,
        peak_activation_bytes: summary.peak_activation_bytes,
        mfu: metrics::mfu(&result, sim_cost.execution_cost()),
        warmup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mepipe_model::partition::{PartitionSpec, SequenceSplit};

    fn mepipe_13b() -> Candidate {
        Candidate {
            method: Method::Mepipe,
            spec: PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::SlicePipeline { slices: 4 },
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        }
    }

    #[test]
    fn paper_optimum_evaluates_near_paper_numbers() {
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let e = evaluate(&mepipe_13b(), &model, &cluster).expect("feasible");
        // Paper: 5852 ms. Accept a factor-2 band; the shape tests are in
        // the search module.
        assert!(
            (3.0..9.0).contains(&e.iteration_time),
            "iteration {} s",
            e.iteration_time
        );
        assert!(e.warmup.is_some());
        assert!(e.mfu > 0.2);
    }

    #[test]
    fn oversized_model_reports_oom() {
        // Llama-34B at pp=2 cannot even hold its parameters.
        let model = TransformerConfig::llama2_34b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let c = Candidate {
            method: Method::Dapple,
            spec: PartitionSpec {
                pp: 2,
                vp: 1,
                dp: 32,
                seq: SequenceSplit::None,
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        };
        let err = evaluate(&c, &model, &cluster).unwrap_err();
        assert!(err.contains("exceeds") || err.contains("OOM"), "{err}");
    }

    #[test]
    fn dapple_13b_without_cp_ooms_like_figure1() {
        // DAPPLE without CP must hold p whole micro-batches (~A = 26 GiB):
        // impossible on a 24 GB card — the premise of the whole paper.
        let model = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let c = Candidate {
            method: Method::Dapple,
            spec: PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::None,
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            },
        };
        assert!(evaluate(&c, &model, &cluster).is_err());
    }
}
