//! Transformer (Llama-2) model configurations.
//!
//! The paper evaluates Llama-2 at 7B, 13B and 34B, with two transformer
//! layers removed so that the embedding and head layers can occupy the
//! first and last pipeline slots without imbalance (Table 4: 30 / 38 / 46
//! decoder layers at hidden sizes 4096 / 5120 / 8192).

/// Architecture of one decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Hidden size `h`.
    pub hidden: usize,
    /// Number of decoder layers (after the paper's 2-layer removal).
    pub layers: usize,
    /// MLP intermediate size (SwiGLU: three `h × ffn` matrices).
    pub ffn_hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Number of key/value heads (grouped-query attention; equal to
    /// `heads` for multi-head attention).
    pub kv_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Training context (sequence) length.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// Llama-2 7B with the paper's layer adjustment (Table 4).
    pub fn llama2_7b() -> Self {
        Self {
            hidden: 4096,
            layers: 30,
            ffn_hidden: 11008,
            heads: 32,
            kv_heads: 32,
            vocab: 32000,
            seq_len: 4096,
        }
    }

    /// Llama-2 13B with the paper's layer adjustment (Table 4).
    pub fn llama2_13b() -> Self {
        Self {
            hidden: 5120,
            layers: 38,
            ffn_hidden: 13824,
            heads: 40,
            kv_heads: 40,
            vocab: 32000,
            seq_len: 4096,
        }
    }

    /// Llama-2 (Code-Llama-style) 34B with the paper's layer adjustment
    /// (Table 4: hidden 8192, 46 layers). `kv_heads = 16` lands the
    /// parameter count at ~33B, matching the paper's `34·4/p` GB static
    /// memory arithmetic (Section 7.4) that makes `pp = 8` infeasible.
    pub fn llama2_34b() -> Self {
        Self {
            hidden: 8192,
            layers: 46,
            ffn_hidden: 22016,
            heads: 64,
            kv_heads: 16,
            vocab: 32000,
            seq_len: 4096,
        }
    }

    /// A tiny configuration for tests and the threaded training runtime.
    pub fn tiny(layers: usize) -> Self {
        Self {
            hidden: 64,
            layers,
            ffn_hidden: 128,
            heads: 4,
            kv_heads: 4,
            vocab: 256,
            seq_len: 64,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Hidden size of the key/value projection output.
    pub fn kv_hidden(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Parameters in one decoder layer: attention projections
    /// (`q`, `k`, `v`, `o`) plus the three SwiGLU matrices plus two
    /// RMSNorm vectors.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let kvh = self.kv_hidden() as u64;
        let f = self.ffn_hidden as u64;
        let attn = h * h /* q */ + h * kvh /* k */ + h * kvh /* v */ + h * h /* o */;
        let mlp = 3 * h * f;
        let norms = 2 * h;
        attn + mlp + norms
    }

    /// Parameters in the embedding table (tied head weights counted once;
    /// Llama unties them, so embedding and head each hold `vocab × h`).
    pub fn embedding_params(&self) -> u64 {
        (self.vocab * self.hidden) as u64
    }

    /// Total parameter count: layers + embedding + output head + final norm.
    pub fn num_params(&self) -> u64 {
        self.layers as u64 * self.params_per_layer()
            + 2 * self.embedding_params()
            + self.hidden as u64
    }

    /// Pipeline-visible layer count: the paper models embedding and head as
    /// occupying one layer slot each, so `layers + 2` slots are divided
    /// among stages ("Llama 13B comprises 40 layers (including the
    /// embedding and head layer)", Section 7.2).
    pub fn pipeline_slots(&self) -> usize {
        self.layers + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_in_the_right_ballpark() {
        // The adjusted models shed ~2 layers, so allow generous bands.
        let b7 = TransformerConfig::llama2_7b().num_params() as f64 / 1e9;
        let b13 = TransformerConfig::llama2_13b().num_params() as f64 / 1e9;
        let b34 = TransformerConfig::llama2_34b().num_params() as f64 / 1e9;
        assert!((6.0..7.5).contains(&b7), "7B model has {b7}B params");
        assert!((11.5..13.5).contains(&b13), "13B model has {b13}B params");
        assert!((30.0..36.0).contains(&b34), "34B model has {b34}B params");
    }

    #[test]
    fn pipeline_slots_match_paper() {
        // Section 7.2: "Llama 13B comprises 40 layers (including the
        // embedding and head layer)".
        assert_eq!(TransformerConfig::llama2_13b().pipeline_slots(), 40);
        assert_eq!(TransformerConfig::llama2_7b().pipeline_slots(), 32);
        assert_eq!(TransformerConfig::llama2_34b().pipeline_slots(), 48);
    }

    #[test]
    fn head_dims_divide() {
        for c in [
            TransformerConfig::llama2_7b(),
            TransformerConfig::llama2_13b(),
            TransformerConfig::llama2_34b(),
            TransformerConfig::tiny(4),
        ] {
            assert_eq!(c.head_dim() * c.heads, c.hidden);
            assert_eq!(c.kv_hidden() % c.head_dim(), 0);
        }
    }

    #[test]
    fn gqa_shrinks_kv() {
        let c = TransformerConfig::llama2_34b();
        assert!(c.kv_hidden() < c.hidden);
        let m = TransformerConfig::llama2_13b();
        assert_eq!(m.kv_hidden(), m.hidden);
    }
}
