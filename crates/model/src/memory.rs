//! Memory model (Section 4.5 of the paper).
//!
//! Three components, mirroring the paper's memory model used to pick SVPP
//! variants:
//!
//! 1. **Static** — parameters, gradients, optimizer state. With
//!    half-precision training and Adam, fp16 parameters + gradients cost
//!    `4·m/p` bytes per worker and the mixed-precision optimizer, sharded
//!    ZeRO-style over all `W` devices, costs `12·m/W` — the paper quotes
//!    "around 6.375 GB" for Llama-34B on 64 workers, which is exactly
//!    `12 · 34e9 / 64`.
//! 2. **Temporary** — workspace for intermediates like the loss/logits
//!    buffers, treated as constant during training.
//! 3. **Activations** — proportional to in-flight forward passes; the
//!    schedule determines the peak count, this module prices one unit.

use crate::{
    config::TransformerConfig,
    partition::{PartitionSpec, SequenceSplit},
};

/// Activation bytes kept per token per decoder layer in fp16 with
/// FlashAttention (no quadratic score matrix), following Korthikanti et
/// al.'s accounting the paper builds on: QKV/out/MLP inputs, normalisation
/// and activation-function saves ≈ 34 bytes per hidden element.
pub const ACT_BYTES_PER_TOKEN_HIDDEN: f64 = 30.0;

/// Activation bytes per token per layer when full recomputation is on:
/// only the fp16 layer input survives the forward pass.
pub const RECOMPUTE_BYTES_PER_TOKEN_HIDDEN: f64 = 2.0;

/// Activation memory of one *whole sample* across the *whole model* — the
/// quantity the paper calls `A` (Table 1).
pub fn sample_activation_bytes(cfg: &TransformerConfig) -> f64 {
    cfg.pipeline_slots() as f64
        * cfg.seq_len as f64
        * cfg.hidden as f64
        * ACT_BYTES_PER_TOKEN_HIDDEN
}

/// Activation bytes one worker must hold for a single in-flight forward
/// unit (one slice of one micro-batch through one virtual chunk).
pub fn activation_bytes_per_unit(cfg: &TransformerConfig, spec: &PartitionSpec) -> f64 {
    let slots = spec
        .slots_per_chunk(cfg)
        .expect("partition must divide the model evenly") as f64;
    let tokens = spec.tokens_per_unit(cfg) as f64;
    let per_token_layer = if spec.recompute {
        RECOMPUTE_BYTES_PER_TOKEN_HIDDEN
    } else {
        ACT_BYTES_PER_TOKEN_HIDDEN
    } * cfg.hidden as f64;
    slots * tokens * per_token_layer
}

/// Extra bytes retained when a unit's weight-gradient computation is
/// deferred (zero-bubble style): the activation stays alive *and* the
/// incoming activation gradient must be kept.
pub fn deferred_wgrad_bytes_per_unit(cfg: &TransformerConfig, spec: &PartitionSpec) -> f64 {
    // The activation gradient is one fp16 tensor per retained boundary;
    // conservatively one hidden-state per layer slot.
    let slots = spec.slots_per_chunk(cfg).expect("even partition") as f64;
    let tokens = spec.tokens_per_unit(cfg) as f64;
    slots * tokens * cfg.hidden as f64 * 2.0
}

/// Static memory per worker in bytes: fp16 parameters + gradients
/// (`4·m/p`) plus mixed-precision Adam sharded ZeRO-style across *all*
/// devices (Section 7.2: "optimizer states are evenly distributed across
/// all devices with the ZeRO technique") — `12·m/W` for `W` workers.
pub fn static_bytes_per_worker(cfg: &TransformerConfig, spec: &PartitionSpec) -> f64 {
    let m = cfg.num_params() as f64;
    let p = spec.pp as f64;
    let workers = spec.num_workers() as f64;
    4.0 * m / p + 12.0 * m / workers
}

/// Extra static bytes a *bidirectional* (DualPipe-style) schedule costs
/// per worker: the reverse direction runs through a second replica of the
/// worker's layer block, duplicating fp16 parameters and gradients
/// (`4·m/p` more). Optimizer state is not duplicated — ZeRO shards one
/// master copy per parameter across all devices regardless of how many
/// replicas serve it.
pub fn bidirectional_extra_static_bytes(cfg: &TransformerConfig, spec: &PartitionSpec) -> f64 {
    4.0 * cfg.num_params() as f64 / spec.pp as f64
}

/// Temporary workspace per worker in bytes: framework/runtime buffers plus
/// the fp32 logits + logit-gradient buffers on the worker holding the head.
pub fn temporary_bytes_per_worker(
    cfg: &TransformerConfig,
    spec: &PartitionSpec,
    holds_head: bool,
) -> f64 {
    // Communication buffers, allocator slack, kernels' workspaces.
    let base = 0.75e9;
    if holds_head {
        let tokens = spec.tokens_per_unit(cfg) as f64;
        base + 2.0 * 4.0 * tokens * cfg.vocab as f64
    } else {
        base
    }
}

/// Memory budget for activations on the most constrained worker.
///
/// Stage 0 holds the most activations under every schedule in the paper, so
/// feasibility is evaluated there; the head-holding last stage is also
/// checked because of its logits buffer.
pub fn activation_budget_bytes(
    cfg: &TransformerConfig,
    spec: &PartitionSpec,
    usable_device_bytes: u64,
) -> f64 {
    let static_b = static_bytes_per_worker(cfg, spec);
    let temp_first = temporary_bytes_per_worker(cfg, spec, false);
    let temp_last = temporary_bytes_per_worker(cfg, spec, true);
    let budget_first = usable_device_bytes as f64 - static_b - temp_first;
    let budget_last = usable_device_bytes as f64 - static_b - temp_last;
    budget_first.min(budget_last)
}

/// The maximum number of in-flight forward units a worker can hold within
/// the given budget — the `f` parameter fed to SVPP variant selection
/// (Section 4.5: "we can compute the maximum number of forward passes that
/// can be executed before the first backward pass").
pub fn max_in_flight_units(
    cfg: &TransformerConfig,
    spec: &PartitionSpec,
    usable_device_bytes: u64,
) -> usize {
    let budget = activation_budget_bytes(cfg, spec, usable_device_bytes);
    if budget <= 0.0 {
        return 0;
    }
    let unit = activation_bytes_per_unit(cfg, spec);
    (budget / unit).floor() as usize
}

/// Peak activation bytes if a worker holds `units` in-flight forward units.
pub fn peak_activation_bytes(cfg: &TransformerConfig, spec: &PartitionSpec, units: usize) -> f64 {
    units as f64 * activation_bytes_per_unit(cfg, spec)
}

/// Convenience: does CP apply here? CP divides each unit's tokens, which
/// `tokens_per_unit` already accounts for; this helper only documents it.
pub fn tokens_visible_to_worker(cfg: &TransformerConfig, spec: &PartitionSpec) -> usize {
    match spec.seq {
        SequenceSplit::Context { size } => cfg.seq_len / size,
        SequenceSplit::SlicePipeline { slices } => cfg.seq_len / slices,
        SequenceSplit::None => cfg.seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SequenceSplit;

    fn spec_13b() -> PartitionSpec {
        PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        }
    }

    #[test]
    fn paper_34b_optimizer_number() {
        // Section 7.4: "the mixed precision optimizer in Megatron-LM
        // occupies around 6.375 GB for each worker" at d*p = 64.
        let cfg = TransformerConfig::llama2_34b();
        let m = cfg.num_params() as f64;
        let optimizer = 12.0 * m / 64.0;
        let gib = optimizer / (1024.0 * 1024.0 * 1024.0);
        assert!((5.0..7.5).contains(&gib), "optimizer = {gib} GiB");
    }

    #[test]
    fn sample_activation_is_tens_of_gb_for_13b() {
        // One 4096-token sample through all 40 slots at 30 B/token/hidden:
        // this is why DAPPLE (peak = A) cannot fit on a 24 GB card.
        let a = sample_activation_bytes(&TransformerConfig::llama2_13b());
        let gib = a / (1024f64.powi(3));
        assert!((20.0..35.0).contains(&gib), "A = {gib} GiB");
    }

    #[test]
    fn unit_bytes_scale_inversely_with_slices() {
        let cfg = TransformerConfig::llama2_13b();
        let s4 = activation_bytes_per_unit(&cfg, &spec_13b());
        let mut spec8 = spec_13b();
        spec8.seq = SequenceSplit::SlicePipeline { slices: 8 };
        let s8 = activation_bytes_per_unit(&cfg, &spec8);
        assert!((s4 / s8 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_bytes_match_paper_fraction() {
        // Section 4.1: with p=4 stages and s=2 slices, one forward pass
        // holds A/8.
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 4,
            vp: 1,
            dp: 16,
            seq: SequenceSplit::SlicePipeline { slices: 2 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let unit = activation_bytes_per_unit(&cfg, &spec);
        let a = sample_activation_bytes(&cfg);
        assert!((unit / a - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn recompute_slashes_activations() {
        let cfg = TransformerConfig::llama2_13b();
        let normal = activation_bytes_per_unit(&cfg, &spec_13b());
        let mut r = spec_13b();
        r.recompute = true;
        let recomputed = activation_bytes_per_unit(&cfg, &r);
        // Section 7.3: "reduces the activation memory consumption by 90%".
        assert!(recomputed / normal < 0.12);
    }

    #[test]
    fn budget_is_positive_for_feasible_config() {
        let cfg = TransformerConfig::llama2_13b();
        let spec = spec_13b();
        let usable = (24.0 * 0.92 * 1024f64.powi(3)) as u64;
        let units = max_in_flight_units(&cfg, &spec, usable);
        assert!(units >= 7, "13B (8,4,1) must fit SVPP's peak, got {units}");
    }

    #[test]
    fn infeasible_config_reports_zero() {
        // Llama-34B at pp=2: static memory alone exceeds 24 GB.
        let cfg = TransformerConfig::llama2_34b();
        let spec = PartitionSpec {
            pp: 2,
            vp: 1,
            dp: 32,
            seq: SequenceSplit::None,
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let usable = (24.0 * 0.92 * 1024f64.powi(3)) as u64;
        assert_eq!(max_in_flight_units(&cfg, &spec, usable), 0);
    }
}
