//! Per-operation execution costs for a concrete accelerator and cluster.
//!
//! [`ExecutionCost`] is the single pricing authority consumed by the
//! discrete-event simulator and the grid search. For every schedulable op
//! (forward, input-gradient backward, weight-gradient backward) of every
//! slice/chunk it produces a duration in seconds, and for every stage
//! boundary it produces transfer sizes, by combining:
//!
//! * FLOP counts from [`crate::flops`] (including the causal slice
//!   imbalance),
//! * achieved GEMM throughput from [`crate::gemm`] (Figure 9),
//! * a bandwidth-bound "vector" term for normalisation/softmax/rotary,
//! * context-parallel ring collectives priced on the CP group's link,
//! * recomputation overhead when enabled.

use mepipe_hw::{
    accelerator::AcceleratorSpec,
    link::LinkSpec,
    mapping::{ParallelLayout, RankMapping},
    topology::ClusterSpec,
};

use crate::{
    config::TransformerConfig,
    flops,
    gemm::GemmEfficiency,
    memory,
    partition::{PartitionSpec, SequenceSplit},
};

/// Bytes moved per token-hidden element by bandwidth-bound kernels
/// (RMSNorm ×2, rotary, softmax, residual adds, activation function) per
/// layer per pass, in fp16 round trips.
const VECTOR_BYTES_PER_TOKEN_HIDDEN: f64 = 60.0;

/// GEMM kernels launched per decoder layer forward (q, k, v, score, av,
/// out, gate, up, down).
const KERNELS_PER_LAYER_FWD: usize = 9;

/// Per-op durations and transfer sizes for one (model, partition, cluster)
/// triple.
#[derive(Debug, Clone)]
pub struct ExecutionCost {
    cfg: TransformerConfig,
    spec: PartitionSpec,
    accel: AcceleratorSpec,
    eff: GemmEfficiency,
    pp_link: LinkSpec,
    cp_link: LinkSpec,
    dp_link: LinkSpec,
    slots_per_chunk: usize,
}

impl ExecutionCost {
    /// Builds the cost model, resolving links from the cluster topology via
    /// the canonical rank mapping (CP innermost, PP outermost).
    pub fn new(
        cfg: TransformerConfig,
        spec: PartitionSpec,
        cluster: &ClusterSpec,
    ) -> Result<Self, String> {
        spec.validate(&cfg, cluster.num_devices())?;
        let layout = ParallelLayout::new(spec.pp, spec.dp, spec.seq.cp_size())
            .ok_or_else(|| "zero-sized layout dimension".to_string())?;
        let mapping = RankMapping::new(layout, cluster)?;
        let pp_link = mapping.worst_pp_link(cluster).clone();
        let cp_link = mapping.cp_link(cluster, 0, 0).clone();
        let dp_link = mapping.dp_link(cluster, 0, 0).clone();
        let slots_per_chunk = spec
            .slots_per_chunk(&cfg)
            .ok_or_else(|| "model does not divide evenly into chunks".to_string())?;
        Ok(Self {
            cfg,
            spec,
            accel: cluster.accelerator.clone(),
            eff: GemmEfficiency::default(),
            pp_link,
            cp_link,
            dp_link,
            slots_per_chunk,
        })
    }

    /// Replaces the GEMM-efficiency curve — the calibration hook through
    /// which fitted (measured) throughput and launch-overhead constants
    /// enter the pricing (see [`crate::calibrate`]).
    #[must_use]
    pub fn with_gemm_efficiency(mut self, eff: GemmEfficiency) -> Self {
        self.eff = eff;
        self
    }

    /// Replaces the pipeline-parallel link spec — the calibration hook
    /// for fitted wire alpha–beta constants (see [`crate::calibrate`]).
    #[must_use]
    pub fn with_pp_link(mut self, link: LinkSpec) -> Self {
        self.pp_link = link;
        self
    }

    /// Re-prices the same model, cluster and calibrated constants under a
    /// different sequence-slice count — how the autotuner prices candidate
    /// schedules whose slicing differs from the one it measured.
    pub fn with_slices(mut self, slices: usize) -> Result<Self, String> {
        if slices == 0 || !self.cfg.seq_len.is_multiple_of(slices) {
            return Err(format!(
                "seq_len {} does not divide into {slices} slices",
                self.cfg.seq_len
            ));
        }
        self.spec.seq = SequenceSplit::SlicePipeline { slices };
        Ok(self)
    }

    /// The GEMM-efficiency curve currently pricing compute.
    pub fn gemm_efficiency(&self) -> &GemmEfficiency {
        &self.eff
    }

    /// The link currently pricing pipeline boundary transfers.
    pub fn pp_link(&self) -> &LinkSpec {
        &self.pp_link
    }

    /// The model being priced.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The partition being priced.
    pub fn partition(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Layer slots evaluated by one virtual chunk.
    pub fn slots_per_chunk(&self) -> usize {
        self.slots_per_chunk
    }

    /// Tokens processed per schedulable unit (slice or CP shard).
    pub fn tokens_per_unit(&self) -> usize {
        self.spec.tokens_per_unit(&self.cfg)
    }

    /// Time for the bandwidth-bound kernels of `slots` layers over `t`
    /// tokens (one pass).
    fn vector_time(&self, slots: usize, t: usize) -> f64 {
        slots as f64 * VECTOR_BYTES_PER_TOKEN_HIDDEN * t as f64 * self.cfg.hidden as f64
            / self.accel.memory_bandwidth
    }

    /// CP ring collective time per layer (all-gather of KV on forward,
    /// reduce-scatter of dKV on backward — symmetric volumes).
    ///
    /// Rings wider than two workers contend on the shared host bridge of a
    /// PCIe root complex (several peer pairs move data simultaneously), so
    /// the effective bandwidth degrades with `cp/2` — this is why the paper
    /// finds CP 4 *slower* than CP 2 on the 4090 cluster (Table 7) even
    /// though it halves the bubble ratio again.
    fn cp_time_per_layer(&self) -> f64 {
        let cp = self.spec.seq.cp_size();
        if cp <= 1 {
            return 0.0;
        }
        let t_local = self.cfg.seq_len / cp;
        let kv_bytes = (2 * t_local * self.cfg.kv_hidden() * 2) as u64;
        let contention = (cp as f64 / 2.0).max(1.0);
        self.cp_link.ring_all_gather_time(cp, kv_bytes) * contention
    }

    /// Average causal context seen by this unit's attention, in tokens.
    ///
    /// Under SPP, slice `i` attends to all preceding slices; under CP,
    /// Megatron assigns each worker two symmetric slices so every worker
    /// sees the sample-average context; with no split, the full causal
    /// average applies.
    fn context_tokens(&self, slice_idx: usize) -> f64 {
        let t = self.tokens_per_unit();
        match self.spec.seq {
            SequenceSplit::SlicePipeline { .. } => flops::causal_context(slice_idx * t, t),
            _ => flops::causal_context(0, self.cfg.seq_len), // Sample average.
        }
    }

    /// The `(FLOPs, tokens, kernel launches)` triple the GEMM term of
    /// [`ExecutionCost::forward_time`] prices — the regressors that
    /// calibration fits [`GemmEfficiency`] against (see
    /// [`crate::calibrate`]).
    pub fn forward_gemm_shape(&self, slice_idx: usize) -> (f64, usize, usize) {
        let t = self.tokens_per_unit();
        let slots = self.slots_per_chunk;
        let dense = flops::dense_forward_flops(&self.cfg, t) * slots as f64;
        let attn =
            4.0 * t as f64 * self.context_tokens(slice_idx) * self.cfg.hidden as f64 * slots as f64;
        (dense + attn, t, KERNELS_PER_LAYER_FWD * slots)
    }

    /// Like [`ExecutionCost::forward_gemm_shape`] for the input-gradient
    /// backward: dX GEMMs cost one forward-equivalent of dense work;
    /// attention backward costs ~2 forward-equivalents (dQ, dK, dV).
    pub fn backward_input_gemm_shape(&self, slice_idx: usize) -> (f64, usize, usize) {
        let t = self.tokens_per_unit();
        let slots = self.slots_per_chunk;
        let dense = flops::dense_forward_flops(&self.cfg, t) * slots as f64;
        let attn =
            4.0 * t as f64 * self.context_tokens(slice_idx) * self.cfg.hidden as f64 * slots as f64;
        (dense + 2.0 * attn, t, KERNELS_PER_LAYER_FWD * slots)
    }

    /// Like [`ExecutionCost::forward_gemm_shape`] for one unit's whole
    /// weight-gradient pass (dense only, slice-independent).
    pub fn wgrad_gemm_shape(&self) -> (f64, usize, usize) {
        let t = self.tokens_per_unit();
        let slots = self.slots_per_chunk;
        let dense = flops::dense_forward_flops(&self.cfg, t) * slots as f64;
        (dense, t, flops::WGRAD_GEMMS_PER_LAYER * slots)
    }

    /// The peak GEMM throughput the efficiency curve is relative to —
    /// calibration's fitting reference.
    pub fn peak_matmul_flops(&self) -> f64 {
        self.accel.effective_matmul_flops
    }

    /// Seconds of [`ExecutionCost::forward_time`] *not* priced by the
    /// GEMM term (bandwidth-bound kernels + CP collectives) — what
    /// calibration subtracts from a measured span before fitting the
    /// GEMM curve to the remainder.
    pub fn forward_non_gemm_time(&self, _slice_idx: usize) -> f64 {
        let t = self.tokens_per_unit();
        let slots = self.slots_per_chunk;
        self.vector_time(slots, t) + self.cp_time_per_layer() * slots as f64
    }

    /// Like [`ExecutionCost::forward_non_gemm_time`] for the
    /// input-gradient backward, including the recomputed forward when
    /// recomputation is enabled.
    pub fn backward_input_non_gemm_time(&self, slice_idx: usize) -> f64 {
        let recompute = if self.spec.recompute {
            self.forward_time(slice_idx)
        } else {
            0.0
        };
        self.forward_non_gemm_time(slice_idx) + recompute
    }

    /// Forward time in seconds of one unit (slice `slice_idx`) through one
    /// virtual chunk.
    pub fn forward_time(&self, slice_idx: usize) -> f64 {
        let (flops, t, kernels) = self.forward_gemm_shape(slice_idx);
        self.eff
            .gemm_time(flops, t, self.accel.effective_matmul_flops, kernels)
            + self.forward_non_gemm_time(slice_idx)
    }

    /// Input-gradient (activation-gradient) backward time of one unit.
    /// When recomputation is enabled the forward is replayed first.
    pub fn backward_input_time(&self, slice_idx: usize) -> f64 {
        let (flops, t, kernels) = self.backward_input_gemm_shape(slice_idx);
        self.eff
            .gemm_time(flops, t, self.accel.effective_matmul_flops, kernels)
            + self.backward_input_non_gemm_time(slice_idx)
    }

    /// Weight-gradient backward time of one unit — dense only, hence
    /// slice-independent (Section 5).
    pub fn wgrad_time(&self) -> f64 {
        let (flops, t, kernels) = self.wgrad_gemm_shape();
        self.eff
            .gemm_time(flops, t, self.accel.effective_matmul_flops, kernels)
    }

    /// Number of individually schedulable weight-gradient GEMMs per unit.
    pub fn wgrad_units(&self) -> usize {
        flops::WGRAD_GEMMS_PER_LAYER * self.slots_per_chunk
    }

    /// Duration of one weight-gradient GEMM unit.
    pub fn wgrad_unit_time(&self) -> f64 {
        self.wgrad_time() / self.wgrad_units() as f64
    }

    /// Fused backward time (input + weight gradients together), used by
    /// schedules that do not split the backward pass.
    pub fn full_backward_time(&self, slice_idx: usize) -> f64 {
        self.backward_input_time(slice_idx) + self.wgrad_time()
    }

    /// Bytes of the hidden-state tensor crossing a stage boundary per unit.
    pub fn boundary_bytes(&self) -> u64 {
        (self.tokens_per_unit() * self.cfg.hidden * 2) as u64
    }

    /// Time to move one unit's activations (or activation gradients)
    /// between adjacent stages over the worst pipeline link.
    pub fn pp_transfer_time(&self) -> f64 {
        self.pp_link.transfer_time(self.boundary_bytes())
    }

    /// Per-iteration data-parallel synchronisation time: ZeRO-1 gradient
    /// reduce-scatter plus parameter all-gather over this worker's shard.
    pub fn dp_sync_time(&self) -> f64 {
        let d = self.spec.dp;
        if d <= 1 {
            return 0.0;
        }
        let params_per_worker = self.cfg.num_params() as f64 / self.spec.pp as f64;
        let bytes = (params_per_worker * 2.0) as u64;
        self.dp_link.ring_reduce_scatter_time(d, bytes)
            + self.dp_link.ring_all_gather_time(d, bytes / d as u64)
    }

    /// Optimizer step time per worker (bandwidth-bound elementwise update
    /// over the ZeRO shard: read m, v, master, grad; write three).
    pub fn optimizer_time(&self) -> f64 {
        let params = self.cfg.num_params() as f64 / (self.spec.pp * self.spec.dp) as f64;
        params * 28.0 / self.accel.memory_bandwidth
    }

    /// Activation bytes retained per in-flight forward unit.
    pub fn activation_bytes_per_unit(&self) -> f64 {
        memory::activation_bytes_per_unit(&self.cfg, &self.spec)
    }

    /// Extra bytes retained per unit whose weight-gradient work is deferred.
    pub fn deferred_wgrad_bytes_per_unit(&self) -> f64 {
        memory::deferred_wgrad_bytes_per_unit(&self.cfg, &self.spec)
    }

    /// Uniform (slice-averaged) forward time — used by analytic bubble
    /// formulas that assume balanced computation.
    pub fn mean_forward_time(&self) -> f64 {
        let s = self.spec.seq.spp_slices();
        (0..s).map(|i| self.forward_time(i)).sum::<f64>() / s as f64
    }

    /// Model FLOPs per iteration attributable to one worker (for MFU).
    pub fn worker_model_flops_per_iteration(&self) -> f64 {
        let samples = self.spec.global_batch;
        flops::iteration_model_flops(&self.cfg, samples)
            / (self.spec.pp * self.spec.dp * self.spec.seq.cp_size()) as f64
    }

    /// The accelerator's datasheet throughput (MFU denominator).
    pub fn marketing_flops(&self) -> f64 {
        self.accel.marketing_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_13b(slices: usize) -> ExecutionCost {
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster()).unwrap()
    }

    #[test]
    fn later_slices_take_longer() {
        let c = cost_13b(4);
        assert!(c.forward_time(3) > c.forward_time(0));
        assert!(c.backward_input_time(3) > c.backward_input_time(0));
    }

    #[test]
    fn wgrad_close_to_first_slice_forward() {
        // Section 5's modelling assumption: W time ≈ forward time of the
        // first slice (dense-dominated).
        let c = cost_13b(4);
        let ratio = c.wgrad_time() / c.forward_time(0);
        assert!((0.6..1.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn backward_roughly_twice_forward() {
        let c = cost_13b(4);
        for i in 0..4 {
            let r = c.full_backward_time(i) / c.forward_time(i);
            assert!((1.6..2.4).contains(&r), "slice {i}: ratio = {r}");
        }
    }

    #[test]
    fn wgrad_units_decompose_exactly() {
        let c = cost_13b(4);
        let total = c.wgrad_unit_time() * c.wgrad_units() as f64;
        assert!((total - c.wgrad_time()).abs() / c.wgrad_time() < 1e-12);
        assert_eq!(c.wgrad_units(), 7 * 5);
    }

    #[test]
    fn recompute_adds_a_forward() {
        let cfg = TransformerConfig::llama2_13b();
        let mk = |recompute| {
            let spec = PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 8,
                seq: SequenceSplit::None,
                recompute,
                micro_batch_size: 1,
                global_batch: 128,
            };
            ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster()).unwrap()
        };
        let plain = mk(false);
        let recomp = mk(true);
        let extra = recomp.backward_input_time(0) - plain.backward_input_time(0);
        let fwd = plain.forward_time(0);
        assert!((extra - fwd).abs() / fwd < 1e-9);
    }

    #[test]
    fn iteration_time_is_plausible_for_13b() {
        // Sanity: total compute for GBS=128 on the (8, spp 4, dp 8) config
        // divided across the pipeline should land within a factor of two of
        // the paper's 5852 ms (bubbles and comm come from the simulator).
        let c = cost_13b(4);
        let n = c.partition().micro_batches();
        let s = 4;
        let per_worker: f64 = (0..s)
            .map(|i| (c.forward_time(i) + c.full_backward_time(i)) * n as f64)
            .sum();
        assert!(
            (2.0..9.0).contains(&per_worker),
            "per-worker compute = {per_worker}s"
        );
    }

    #[test]
    fn cp_adds_communication() {
        let cfg = TransformerConfig::llama2_13b();
        let mk = |seq| {
            let spec = PartitionSpec {
                pp: 8,
                vp: 1,
                dp: 2,
                seq,
                recompute: false,
                micro_batch_size: 1,
                global_batch: 128,
            };
            ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster()).unwrap()
        };
        let cp = mk(SequenceSplit::Context { size: 4 });
        let spp_spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 8,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let spp = ExecutionCost::new(cfg, spp_spec, &ClusterSpec::rtx4090_cluster()).unwrap();
        // Same tokens per unit, but CP pays ring collectives every layer.
        assert_eq!(cp.tokens_per_unit(), spp.tokens_per_unit());
        assert!(cp.forward_time(0) > spp.forward_time(0));
    }

    #[test]
    fn dp_sync_is_zero_for_single_replica() {
        let cfg = TransformerConfig::llama2_13b();
        let spec = PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 1,
            seq: SequenceSplit::Context { size: 8 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        };
        let c = ExecutionCost::new(cfg, spec, &ClusterSpec::rtx4090_cluster()).unwrap();
        assert_eq!(c.dp_sync_time(), 0.0);
    }
}
