//! Transformer model descriptions and the analytic cost model.
//!
//! Everything downstream — the discrete-event simulator, the strategy grid
//! search, the experiment harness — prices work through this crate:
//!
//! * [`config`] — Llama-2 7B/13B/34B configurations (Table 4 of the paper)
//!   and parameter counting;
//! * [`partition`] — how a training job is partitioned (PP × DP × CP/SPP ×
//!   VP, recomputation);
//! * [`flops`] — FLOP counts per layer and per sequence slice, including the
//!   causal-attention imbalance across slices that motivates Section 5;
//! * [`gemm`] — the operator-efficiency curve behind Figure 9 (GEMM and
//!   FlashAttention lose throughput as slices shrink);
//! * [`memory`] — activation / static / temporary memory (Section 4.5);
//! * [`comm`] — per-strategy communication volumes (Table 2);
//! * [`cost`] — ties it all together into per-op durations and transfer
//!   sizes for a concrete accelerator;
//! * [`calibrate`] — least-squares fits that replace the hand-set
//!   constants above with values measured on the running hardware
//!   (Section 6's profiler).
#![warn(missing_docs)]

pub mod calibrate;
pub mod comm;
pub mod config;
pub mod cost;
pub mod flops;
pub mod gemm;
pub mod memory;
pub mod partition;

pub use config::TransformerConfig;
pub use cost::ExecutionCost;
pub use partition::PartitionSpec;
