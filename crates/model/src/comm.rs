//! Communication volumes per parallel strategy (Table 2).
//!
//! Table 2 of the paper ranks TP ≫ CP > DP > PP ≈ SPP by communication
//! cost and records which of parameters / activations / optimizer state
//! each strategy partitions. This module computes the actual per-iteration
//! byte volumes behind that ranking for a concrete model, so the harness
//! can print the quantitative version of the table.

use crate::config::TransformerConfig;

/// Bytes of one fp16 element.
const FP16: f64 = 2.0;

/// Which resources a strategy partitions (the ✓/✗ columns of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionProfile {
    /// Does the strategy shard parameters across workers?
    pub parameters: bool,
    /// Does it shard activations?
    pub activations: bool,
    /// Does it shard optimizer state?
    pub optimizer: bool,
}

/// One row of the quantitative Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyComm {
    /// Strategy name as printed in the paper.
    pub name: &'static str,
    /// Bytes each worker sends per iteration.
    pub bytes_per_iteration: f64,
    /// What the strategy partitions.
    pub profile: PartitionProfile,
}

/// Per-worker bytes sent per iteration under tensor parallelism of the
/// given size: two ring all-reduces of the layer output per layer, in both
/// forward and backward, for every token of every sample.
pub fn tp_bytes_per_iteration(cfg: &TransformerConfig, tp: usize, samples: usize) -> f64 {
    if tp <= 1 {
        return 0.0;
    }
    let payload = cfg.seq_len as f64 * cfg.hidden as f64 * FP16;
    // Ring all-reduce moves 2(n-1)/n of the payload per worker; 2 per layer
    // forward and 2 per layer backward.
    let per_layer = 4.0 * 2.0 * (tp as f64 - 1.0) / tp as f64 * payload;
    per_layer * cfg.layers as f64 * samples as f64
}

/// Per-worker bytes sent per iteration under context parallelism: an
/// all-gather of the local KV shard per layer forward and the matching
/// reduce-scatter of dKV per layer backward.
pub fn cp_bytes_per_iteration(cfg: &TransformerConfig, cp: usize, samples: usize) -> f64 {
    if cp <= 1 {
        return 0.0;
    }
    let local_tokens = cfg.seq_len as f64 / cp as f64;
    let kv = 2.0 * local_tokens * cfg.kv_hidden() as f64 * FP16;
    // Ring all-gather: send own shard (cp-1) times; reduce-scatter mirrors.
    let per_layer = 2.0 * (cp as f64 - 1.0) * kv;
    per_layer * cfg.layers as f64 * samples as f64
}

/// Per-worker bytes sent per iteration under ZeRO-1 data parallelism:
/// gradient reduce-scatter plus parameter all-gather once per iteration
/// over the worker's parameter shard.
pub fn dp_bytes_per_iteration(cfg: &TransformerConfig, dp: usize, pp: usize) -> f64 {
    if dp <= 1 {
        return 0.0;
    }
    let params_per_worker = cfg.num_params() as f64 / pp as f64;
    let payload = params_per_worker * FP16;
    2.0 * (dp as f64 - 1.0) / dp as f64 * payload * 2.0
}

/// Per-worker bytes sent per iteration under pipeline parallelism: one
/// hidden-state tensor per micro-batch per stage boundary, forward and
/// backward.
pub fn pp_bytes_per_iteration(cfg: &TransformerConfig, micro_batches: usize) -> f64 {
    let boundary = cfg.seq_len as f64 * cfg.hidden as f64 * FP16;
    2.0 * boundary * micro_batches as f64
}

/// Per-worker bytes sent per iteration under sequence pipeline parallelism:
/// slices of a micro-batch sum to the same boundary volume as PP.
pub fn spp_bytes_per_iteration(
    cfg: &TransformerConfig,
    micro_batches: usize,
    _slices: usize,
) -> f64 {
    // Identical total volume to PP; slicing only changes message counts.
    pp_bytes_per_iteration(cfg, micro_batches)
}

/// Builds the quantitative Table 2 for a model at the given group sizes.
pub fn table2(cfg: &TransformerConfig, group: usize, samples: usize) -> Vec<StrategyComm> {
    vec![
        StrategyComm {
            name: "TP",
            bytes_per_iteration: tp_bytes_per_iteration(cfg, group, samples),
            profile: PartitionProfile {
                parameters: true,
                activations: true,
                optimizer: true,
            },
        },
        StrategyComm {
            name: "CP (ZeRO)",
            bytes_per_iteration: cp_bytes_per_iteration(cfg, group, samples),
            profile: PartitionProfile {
                parameters: false,
                activations: true,
                optimizer: true,
            },
        },
        StrategyComm {
            name: "DP (ZeRO)",
            bytes_per_iteration: dp_bytes_per_iteration(cfg, group, 1),
            profile: PartitionProfile {
                parameters: false,
                activations: false,
                optimizer: true,
            },
        },
        StrategyComm {
            name: "PP",
            bytes_per_iteration: pp_bytes_per_iteration(cfg, samples),
            profile: PartitionProfile {
                parameters: true,
                activations: false,
                optimizer: true,
            },
        },
        StrategyComm {
            name: "SPP",
            bytes_per_iteration: spp_bytes_per_iteration(cfg, samples, 4),
            profile: PartitionProfile {
                parameters: true,
                activations: true,
                optimizer: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransformerConfig {
        TransformerConfig::llama2_13b()
    }

    #[test]
    fn table2_ordering_matches_paper() {
        // TP >>> CP > DP > PP = SPP at equal group sizes.
        let rows = table2(&cfg(), 4, 16);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.name == n)
                .map(|r| r.bytes_per_iteration)
                .unwrap()
        };
        assert!(by_name("TP") > by_name("CP (ZeRO)"));
        assert!(by_name("CP (ZeRO)") > by_name("DP (ZeRO)"));
        assert!(by_name("DP (ZeRO)") > by_name("PP"));
        assert_eq!(by_name("PP"), by_name("SPP"));
    }

    #[test]
    fn degenerate_groups_cost_nothing() {
        assert_eq!(tp_bytes_per_iteration(&cfg(), 1, 16), 0.0);
        assert_eq!(cp_bytes_per_iteration(&cfg(), 1, 16), 0.0);
        assert_eq!(dp_bytes_per_iteration(&cfg(), 1, 8), 0.0);
    }

    #[test]
    fn cp_volume_grows_with_group() {
        let c2 = cp_bytes_per_iteration(&cfg(), 2, 16);
        let c8 = cp_bytes_per_iteration(&cfg(), 8, 16);
        // (cp-1)/cp scaling on fixed total KV: volume grows with cp.
        assert!(c8 > c2);
    }

    #[test]
    fn spp_equals_pp_volume() {
        // Section 2.2 / Table 2: SPP introduces no extra communication.
        for n in [8usize, 16, 64] {
            assert_eq!(
                spp_bytes_per_iteration(&cfg(), n, 8),
                pp_bytes_per_iteration(&cfg(), n)
            );
        }
    }
}
