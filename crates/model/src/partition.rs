//! Partitioning of one training job across workers.
//!
//! A partition fixes the five knobs the paper's grid search explores
//! (Section 7.3): pipeline size, data-parallel size, context parallelism
//! *or* sequence pipeline parallelism, virtual pipeline size, and whether
//! activation recomputation is enabled. CP and SPP are mutually exclusive
//! in the paper's configurations (the "CP/SPP" column of Tables 5 and 8).

use crate::config::TransformerConfig;

/// How single samples are split, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceSplit {
    /// No sample splitting: whole micro-batches flow through the pipeline.
    None,
    /// Context parallelism: each sample is sharded across `size` workers
    /// that communicate KV blocks every layer (ring attention).
    Context {
        /// Number of CP workers each sample is sharded over.
        size: usize,
    },
    /// Sequence pipeline parallelism: each sample is cut into `slices`
    /// token slices that flow through the pipeline one after another
    /// (TeraPipe / MEPipe).
    SlicePipeline {
        /// Number of slices per sample.
        slices: usize,
    },
}

impl SequenceSplit {
    /// CP worker count (1 when CP is not in use).
    pub fn cp_size(&self) -> usize {
        match self {
            SequenceSplit::Context { size } => *size,
            _ => 1,
        }
    }

    /// Slices per sample for pipeline scheduling (1 when SPP is not in use).
    pub fn spp_slices(&self) -> usize {
        match self {
            SequenceSplit::SlicePipeline { slices } => *slices,
            _ => 1,
        }
    }
}

/// A complete parallel-strategy choice for one training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    /// Pipeline-parallel size `p` (number of stages).
    pub pp: usize,
    /// Virtual pipeline size `v` (model chunks per stage).
    pub vp: usize,
    /// Data-parallel size `d` (with ZeRO-1 optimizer sharding).
    pub dp: usize,
    /// How samples are split (CP or SPP or neither).
    pub seq: SequenceSplit,
    /// Whether full activation recomputation is enabled.
    pub recompute: bool,
    /// Samples per micro-batch (the paper uses 1 throughout).
    pub micro_batch_size: usize,
    /// Global batch size in samples.
    pub global_batch: usize,
}

impl PartitionSpec {
    /// Workers required by this partition.
    pub fn num_workers(&self) -> usize {
        self.pp * self.dp * self.seq.cp_size()
    }

    /// Micro-batches `n` processed by each pipeline per iteration.
    pub fn micro_batches(&self) -> usize {
        self.global_batch / (self.dp * self.micro_batch_size)
    }

    /// Pipeline-visible layer slots per virtual chunk, if the model divides
    /// evenly; `None` otherwise (the paper requires even partitions).
    pub fn slots_per_chunk(&self, cfg: &TransformerConfig) -> Option<usize> {
        let total = cfg.pipeline_slots();
        let chunks = self.pp * self.vp;
        if chunks == 0 || !total.is_multiple_of(chunks) {
            None
        } else {
            Some(total / chunks)
        }
    }

    /// Tokens per pipeline work unit: the sequence divided across CP workers
    /// and/or SPP slices.
    pub fn tokens_per_unit(&self, cfg: &TransformerConfig) -> usize {
        let t = cfg.seq_len * self.micro_batch_size;
        match self.seq {
            SequenceSplit::None => t,
            SequenceSplit::Context { size } => t / size,
            SequenceSplit::SlicePipeline { slices } => t / slices,
        }
    }

    /// Validates divisibility constraints against a model and worker count.
    pub fn validate(&self, cfg: &TransformerConfig, total_workers: usize) -> Result<(), String> {
        if self.pp == 0 || self.vp == 0 || self.dp == 0 || self.micro_batch_size == 0 {
            return Err("all partition dimensions must be nonzero".into());
        }
        if self.num_workers() != total_workers {
            return Err(format!(
                "partition needs {} workers but cluster has {total_workers}",
                self.num_workers()
            ));
        }
        if !self
            .global_batch
            .is_multiple_of(self.dp * self.micro_batch_size)
        {
            return Err(format!(
                "global batch {} not divisible by dp*mbs = {}",
                self.global_batch,
                self.dp * self.micro_batch_size
            ));
        }
        if self.slots_per_chunk(cfg).is_none() {
            return Err(format!(
                "{} pipeline slots not divisible into {}x{} chunks",
                cfg.pipeline_slots(),
                self.pp,
                self.vp
            ));
        }
        match self.seq {
            SequenceSplit::Context { size } => {
                if size == 0 || !cfg.seq_len.is_multiple_of(size) {
                    return Err(format!(
                        "seq_len {} not divisible by cp {size}",
                        cfg.seq_len
                    ));
                }
            }
            SequenceSplit::SlicePipeline { slices } => {
                if slices == 0 || !cfg.seq_len.is_multiple_of(slices) {
                    return Err(format!(
                        "seq_len {} not divisible by spp {slices}",
                        cfg.seq_len
                    ));
                }
            }
            SequenceSplit::None => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PartitionSpec {
        PartitionSpec {
            pp: 8,
            vp: 1,
            dp: 2,
            seq: SequenceSplit::SlicePipeline { slices: 4 },
            recompute: false,
            micro_batch_size: 1,
            global_batch: 128,
        }
    }

    #[test]
    fn mepipe_13b_config_from_table5_validates() {
        // MEPipe's optimal 13B config: (PP, SPP, VP, recomp) = (8, 4, 1, no)
        // with DP filling the rest of the 64 GPUs... dp = 64 / 8 = 8.
        let spec = PartitionSpec { dp: 8, ..base() };
        let cfg = TransformerConfig::llama2_13b();
        assert!(spec.validate(&cfg, 64).is_ok());
        assert_eq!(spec.micro_batches(), 16);
        assert_eq!(spec.slots_per_chunk(&cfg), Some(5));
        assert_eq!(spec.tokens_per_unit(&cfg), 1024);
    }

    #[test]
    fn cp_occupies_workers_but_spp_does_not() {
        let spp = base();
        let cp = PartitionSpec {
            seq: SequenceSplit::Context { size: 4 },
            ..base()
        };
        assert_eq!(spp.num_workers(), 16);
        assert_eq!(cp.num_workers(), 64);
    }

    #[test]
    fn uneven_chunks_are_rejected() {
        // 40 slots cannot split into 16 x 1 chunks? 40 / 16 is uneven.
        let spec = PartitionSpec {
            pp: 16,
            dp: 4,
            seq: SequenceSplit::None,
            ..base()
        };
        let cfg = TransformerConfig::llama2_13b();
        assert!(spec.validate(&cfg, 64).is_err());
    }

    #[test]
    fn uneven_batch_is_rejected() {
        let spec = PartitionSpec {
            global_batch: 30,
            dp: 4,
            pp: 16,
            ..base()
        };
        let cfg = TransformerConfig::llama2_13b();
        assert!(spec.validate(&cfg, 64).is_err());
    }

    #[test]
    fn uneven_slices_are_rejected() {
        let spec = PartitionSpec {
            seq: SequenceSplit::SlicePipeline { slices: 3 },
            dp: 8,
            ..base()
        };
        let cfg = TransformerConfig::llama2_13b();
        assert!(spec.validate(&cfg, 64).is_err());
    }
}
