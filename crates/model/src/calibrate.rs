//! Least-squares calibration of the cost model from measured samples.
//!
//! The paper's Section 6 profiler exists so the schedule search optimizes
//! costs the target hardware actually exhibits, not datasheet constants.
//! This module is the pure fitting math: given per-(op-kind, shape)
//! samples extracted from measured spans it fits
//!
//! * an affine curve `y = α + β·x` ([`fit_affine`]) — the general tool,
//! * an alpha–beta link `T = messages·latency + bytes/bandwidth`
//!   ([`fit_link`]) from per-link traffic aggregates,
//! * the [`GemmEfficiency`] achieved-throughput curve
//!   ([`fit_gemm_efficiency`]) from per-GEMM `(flops, tokens, kernels,
//!   seconds)` samples,
//!
//! plus the [`blend`] update rule that damps round-to-round oscillation
//! in the online calibration loop. Extracting samples from traces lives
//! in `mepipe-sim` (`sim::calibrate`); the loop that re-runs the
//! schedule search under fitted costs lives in `mepipe-train`.

use mepipe_hw::link::LinkSpec;

use crate::gemm::GemmEfficiency;

/// A fitted affine curve `y = alpha + beta·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineFit {
    /// Intercept (fixed per-sample cost).
    pub alpha: f64,
    /// Slope (marginal cost per unit of `x`).
    pub beta: f64,
    /// Samples the fit was computed from.
    pub samples: usize,
}

/// Ordinary least squares for `y = alpha + beta·x`.
///
/// Returns `None` when there are fewer than two samples or the `x`
/// values are (numerically) all identical — an intercept and a slope
/// cannot both be identified from a single abscissa.
pub fn fit_affine(samples: &[(f64, f64)]) -> Option<AffineFit> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = samples.iter().map(|(x, _)| x).sum();
    let sy: f64 = samples.iter().map(|(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
    let det = nf * sxx - sx * sx;
    // Degenerate abscissa: the x spread is lost to rounding.
    if !(det.is_finite() && det.abs() > 1e-12 * nf * sxx.max(1.0)) {
        return None;
    }
    let beta = (nf * sxy - sx * sy) / det;
    let alpha = (sy - beta * sx) / nf;
    Some(AffineFit {
        alpha,
        beta,
        samples: n,
    })
}

/// Least squares for the no-intercept two-term model `y = a·x1 + b·x2`,
/// solved from the 2×2 normal equations. Returns `None` when the system
/// is singular (the two regressors are collinear across all samples).
pub fn fit_two_term(samples: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let (mut s11, mut s12, mut s22, mut s1y, mut s2y) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(x1, x2, y) in samples {
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        s1y += x1 * y;
        s2y += x2 * y;
    }
    let det = s11 * s22 - s12 * s12;
    if !(det.is_finite() && det.abs() > 1e-12 * (s11 * s22).max(1.0)) {
        return None;
    }
    Some(((s22 * s1y - s12 * s2y) / det, (s11 * s2y - s12 * s1y) / det))
}

/// One round's damped update: moves `old` a fraction `eta` of the way to
/// `target`. `eta = 1` adopts the new fit outright; smaller values trade
/// convergence speed for robustness to per-round measurement noise.
pub fn blend(old: f64, target: f64, eta: f64) -> f64 {
    old + eta * (target - old)
}

/// Traffic aggregate for one directed link over one measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Messages transmitted.
    pub messages: f64,
    /// Bytes transmitted.
    pub bytes: f64,
    /// Seconds the wire was occupied by this traffic.
    pub seconds: f64,
}

/// Fits an alpha–beta [`LinkSpec`] from per-link traffic aggregates:
/// each sample contributes one equation
/// `seconds = messages·latency + bytes/bandwidth`.
///
/// When the samples cannot identify both parameters — fewer than two
/// rows, or every row carrying the same bytes-per-message so the two
/// regressors are collinear — the prior's bandwidth is kept and only the
/// latency is re-fitted (per-message latency is what the trace pins down
/// best). Fits that come out non-physical (negative latency or
/// bandwidth) are clamped the same way. The fitted spec is named
/// `"fitted"` to mark it as measured rather than datasheet.
pub fn fit_link(samples: &[LinkSample], prior: &LinkSpec) -> LinkSpec {
    let fitted = |latency: f64, bandwidth: f64| LinkSpec {
        name: "fitted",
        bandwidth,
        latency,
    };
    let rows: Vec<(f64, f64, f64)> = samples
        .iter()
        .filter(|s| s.messages > 0.0 && s.seconds.is_finite())
        .map(|s| (s.messages, s.bytes, s.seconds))
        .collect();
    if let Some((alpha, inv_bw)) = fit_two_term(&rows) {
        if alpha >= 0.0 && inv_bw > 0.0 {
            return fitted(alpha, 1.0 / inv_bw);
        }
    }
    // Fallback: keep the prior bandwidth, fit latency as the mean
    // per-message residual after the bandwidth term.
    if rows.is_empty() {
        return prior.clone();
    }
    let alpha = rows
        .iter()
        .map(|(m, b, t)| (t - b / prior.bandwidth) / m)
        .sum::<f64>()
        / rows.len() as f64;
    fitted(alpha.max(0.0), prior.bandwidth)
}

/// One measured GEMM-class execution: total FLOPs, the token (row)
/// dimension, how many kernel launches it took, and the wall seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmSample {
    /// FLOPs executed.
    pub flops: f64,
    /// Token (row) dimension of the GEMMs.
    pub tokens: usize,
    /// Kernel launches performed.
    pub kernels: usize,
    /// Measured wall-clock seconds.
    pub seconds: f64,
}

/// Fits `max_efficiency` and `launch_overhead` of a [`GemmEfficiency`]
/// curve from measured samples, keeping the prior's saturation shape
/// (`half_saturation_tokens` needs a sweep over token sizes to identify;
/// the online loop measures one shape per round).
///
/// The model `seconds = flops / (peak·eff(tokens)) + overhead·kernels`
/// is linear in `(1/max_efficiency, launch_overhead)` once the
/// saturation shape is fixed, so this is the two-term least squares of
/// [`fit_two_term`]. The fitted `max_efficiency` is *effective* — it may
/// exceed 1.0 when `peak_flops` under-states the machine, which is
/// exactly the correction calibration exists to make. Degenerate or
/// non-physical fits keep the prior's launch overhead and rescale
/// `max_efficiency` alone from the aggregate throughput.
pub fn fit_gemm_efficiency(
    samples: &[GemmSample],
    peak_flops: f64,
    prior: &GemmEfficiency,
) -> GemmEfficiency {
    // eff(t) = max_efficiency · shape(t); recover the prior's shape.
    let shape = |tokens: usize| prior.efficiency(tokens) / prior.max_efficiency;
    let rows: Vec<(f64, f64, f64)> = samples
        .iter()
        .filter(|s| s.tokens > 0 && s.flops > 0.0 && s.seconds > 0.0)
        .map(|s| {
            (
                s.kernels as f64,
                s.flops / (peak_flops * shape(s.tokens)),
                s.seconds,
            )
        })
        .collect();
    if let Some((overhead, inv_emax)) = fit_two_term(&rows) {
        if overhead >= 0.0 && inv_emax > 0.0 {
            return GemmEfficiency {
                max_efficiency: 1.0 / inv_emax,
                half_saturation_tokens: prior.half_saturation_tokens,
                launch_overhead: overhead,
            };
        }
    }
    // Fallback: keep the prior overhead, match aggregate throughput.
    let (mut num, mut den) = (0.0, 0.0);
    for (k, x2, y) in &rows {
        let residual = y - prior.launch_overhead * k;
        if *x2 > 0.0 && residual > 0.0 {
            num += x2 * residual;
            den += x2 * x2;
        }
    }
    if den > 0.0 && num > 0.0 {
        GemmEfficiency {
            max_efficiency: den / num,
            half_saturation_tokens: prior.half_saturation_tokens,
            launch_overhead: prior.launch_overhead,
        }
    } else {
        *prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_recovers_exact_line() {
        let samples: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        let f = fit_affine(&samples).unwrap();
        assert!((f.alpha - 3.0).abs() < 1e-12);
        assert!((f.beta - 0.5).abs() < 1e-12);
        assert_eq!(f.samples, 8);
    }

    #[test]
    fn affine_rejects_degenerate_abscissa() {
        assert!(fit_affine(&[(2.0, 1.0), (2.0, 3.0), (2.0, 5.0)]).is_none());
        assert!(fit_affine(&[(2.0, 1.0)]).is_none());
    }

    #[test]
    fn two_term_recovers_exact_plane() {
        let rows: Vec<(f64, f64, f64)> = [(1.0, 10.0), (2.0, 5.0), (3.0, 40.0), (4.0, 2.0)]
            .iter()
            .map(|&(x1, x2)| (x1, x2, 7.0 * x1 + 0.25 * x2))
            .collect();
        let (a, b) = fit_two_term(&rows).unwrap();
        assert!((a - 7.0).abs() < 1e-9);
        assert!((b - 0.25).abs() < 1e-9);
    }

    #[test]
    fn two_term_rejects_collinear_regressors() {
        let rows = vec![(1.0, 2.0, 3.0), (2.0, 4.0, 6.0), (5.0, 10.0, 15.0)];
        assert!(fit_two_term(&rows).is_none());
    }

    #[test]
    fn link_fit_recovers_alpha_beta() {
        let truth = LinkSpec {
            name: "truth",
            bandwidth: 2e9,
            latency: 50e-6,
        };
        // Distinct bytes-per-message rows identify both parameters.
        let samples: Vec<LinkSample> = [(10.0, 1e6), (20.0, 8e6), (5.0, 64e6), (40.0, 2e6)]
            .iter()
            .map(|&(messages, bytes)| LinkSample {
                messages,
                bytes,
                seconds: messages * truth.latency + bytes / truth.bandwidth,
            })
            .collect();
        let fit = fit_link(&samples, &LinkSpec::pcie4());
        assert!((fit.latency - truth.latency).abs() / truth.latency < 1e-6);
        assert!((fit.bandwidth - truth.bandwidth).abs() / truth.bandwidth < 1e-6);
        assert_eq!(fit.name, "fitted");
    }

    #[test]
    fn link_fit_collinear_keeps_prior_bandwidth() {
        // Every row has 1 KiB/message: only latency is identifiable.
        let prior = LinkSpec::pcie4();
        let samples: Vec<LinkSample> = [10.0, 20.0, 40.0]
            .iter()
            .map(|&messages| LinkSample {
                messages,
                bytes: messages * 1024.0,
                seconds: messages * 1e-3 + messages * 1024.0 / prior.bandwidth,
            })
            .collect();
        let fit = fit_link(&samples, &prior);
        assert_eq!(fit.bandwidth, prior.bandwidth);
        assert!((fit.latency - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn link_fit_empty_returns_prior() {
        let prior = LinkSpec::ib_100g();
        assert_eq!(fit_link(&[], &prior), prior);
    }

    #[test]
    fn gemm_fit_recovers_throughput_and_overhead() {
        let truth = GemmEfficiency {
            max_efficiency: 0.031,
            half_saturation_tokens: DEFAULT_HALF_SAT,
            launch_overhead: 2e-5,
        };
        let peak = 165e12;
        let samples: Vec<GemmSample> = [(1e9, 64, 9), (8e9, 512, 18), (2e9, 128, 36), (5e8, 16, 7)]
            .iter()
            .map(|&(flops, tokens, kernels)| GemmSample {
                flops,
                tokens,
                kernels,
                seconds: truth.gemm_time(flops, tokens, peak, kernels),
            })
            .collect();
        let fit = fit_gemm_efficiency(&samples, peak, &GemmEfficiency::default());
        assert!(
            (fit.max_efficiency - truth.max_efficiency).abs() / truth.max_efficiency < 1e-6,
            "max_efficiency {}",
            fit.max_efficiency
        );
        assert!((fit.launch_overhead - truth.launch_overhead).abs() / truth.launch_overhead < 1e-6);
    }

    const DEFAULT_HALF_SAT: f64 = crate::gemm::DEFAULT_HALF_SATURATION_TOKENS;

    #[test]
    fn gemm_fit_no_samples_keeps_prior() {
        let prior = GemmEfficiency::default();
        assert_eq!(fit_gemm_efficiency(&[], 165e12, &prior), prior);
    }

    #[test]
    fn blend_moves_toward_target() {
        assert_eq!(blend(1.0, 3.0, 0.5), 2.0);
        assert_eq!(blend(1.0, 3.0, 1.0), 3.0);
        assert_eq!(blend(1.0, 3.0, 0.0), 1.0);
    }
}
