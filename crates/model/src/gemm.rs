//! Operator-efficiency model (Figure 9 calibration).
//!
//! Splitting samples — whether across CP workers or into SPP slices —
//! shrinks the token dimension of every GEMM and FlashAttention call, and
//! small GEMMs do not saturate the accelerator ("operators like GEMM and
//! FlashAttention exhibit optimal performance when the input dimensions are
//! the powers of 2", Section 5; Figure 9 quantifies the per-layer slowdown).
//!
//! We model the achieved fraction of peak as a saturation curve
//! `eff(t) = e_max · t / (t + k)` in the token dimension `t`, with `k`
//! fitted to the paper's observation that per-layer throughput drops 12.6 %
//! when SPP grows from 1 to 8 on Llama-13B (t: 4096 → 512).

/// Saturation constant (tokens at which efficiency is half of `e_max`),
/// fitted to Figure 9 as derived in DESIGN.md.
pub const DEFAULT_HALF_SATURATION_TOKENS: f64 = 86.0;

/// Peak fraction actually achievable by a well-tuned kernel at large sizes.
pub const DEFAULT_MAX_EFFICIENCY: f64 = 0.97;

/// Tile-alignment factor: "operators like GEMM and FlashAttention exhibit
/// optimal performance when the input dimensions are the powers of 2"
/// (Section 5) — more precisely, when the token dimension fills whole
/// 128-row tensor-core tiles. A ragged final tile wastes its unused rows.
pub fn alignment_factor(tokens: usize) -> f64 {
    const TILE: usize = 128;
    if tokens.is_multiple_of(TILE) {
        return 1.0;
    }
    // Work in the last, partially-filled tile is wasted pro rata; small
    // inputs inside one tile pay the full raggedness.
    let tiles = tokens.div_ceil(TILE);
    tokens as f64 / (tiles * TILE) as f64
}

/// GEMM/attention efficiency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmEfficiency {
    /// Efficiency approached asymptotically for huge inputs.
    pub max_efficiency: f64,
    /// Token count at which efficiency is half of `max_efficiency`.
    pub half_saturation_tokens: f64,
    /// Fixed per-kernel launch overhead in seconds (dominates for tiny
    /// slices, bounding useful SPP sizes from above).
    pub launch_overhead: f64,
}

impl Default for GemmEfficiency {
    fn default() -> Self {
        Self {
            max_efficiency: DEFAULT_MAX_EFFICIENCY,
            half_saturation_tokens: DEFAULT_HALF_SATURATION_TOKENS,
            launch_overhead: 4e-6,
        }
    }
}

impl GemmEfficiency {
    /// Achieved fraction of peak FLOPs for GEMMs with `tokens` rows.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn efficiency(&self, tokens: usize) -> f64 {
        assert!(tokens > 0, "efficiency undefined for zero tokens");
        let t = tokens as f64;
        self.max_efficiency * t / (t + self.half_saturation_tokens) * alignment_factor(tokens)
    }

    /// Time in seconds to execute `flops` worth of GEMM work over `tokens`
    /// rows on an accelerator with the given peak throughput, including the
    /// per-invocation launch overhead amortised over `kernels` kernels.
    pub fn gemm_time(&self, flops: f64, tokens: usize, peak_flops: f64, kernels: usize) -> f64 {
        flops / (peak_flops * self.efficiency(tokens)) + self.launch_overhead * kernels as f64
    }

    /// Relative throughput at `tokens` versus a `reference` token count —
    /// the quantity Figure 9 plots (per-layer performance normalised to
    /// CP/SPP = 1).
    pub fn relative_efficiency(&self, tokens: usize, reference: usize) -> f64 {
        self.efficiency(tokens) / self.efficiency(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_monotone_in_tokens() {
        let e = GemmEfficiency::default();
        let mut prev = 0.0;
        for t in [32usize, 64, 128, 512, 1024, 4096, 16384] {
            let x = e.efficiency(t);
            assert!(x > prev);
            assert!(x < 1.0);
            prev = x;
        }
    }

    #[test]
    fn matches_figure9_calibration_point() {
        // SPP 1 -> 8 on 13B (4096 -> 512 tokens) costs ~12.6% throughput.
        let e = GemmEfficiency::default();
        let rel = e.relative_efficiency(512, 4096);
        assert!(
            (rel - 0.874).abs() < 0.02,
            "expected ~0.874 relative efficiency, got {rel}"
        );
    }

    #[test]
    fn gemm_time_decreases_superlinearly_for_small_slices() {
        let e = GemmEfficiency::default();
        let peak = 165e12;
        let full = e.gemm_time(1e12, 4096, peak, 9);
        let eighth = e.gemm_time(1e12 / 8.0, 512, peak, 9);
        // An eighth of the work takes more than an eighth of the time.
        assert!(eighth > full / 8.0);
        assert!(eighth < full);
    }

    #[test]
    #[should_panic(expected = "zero tokens")]
    fn zero_tokens_panics() {
        GemmEfficiency::default().efficiency(0);
    }

    #[test]
    fn alignment_rewards_full_tiles() {
        assert_eq!(alignment_factor(128), 1.0);
        assert_eq!(alignment_factor(4096), 1.0);
        // 129 tokens need two tiles: barely half-used second tile.
        assert!((alignment_factor(129) - 129.0 / 256.0).abs() < 1e-12);
        // A ragged size is always worse than its aligned neighbours.
        let e = GemmEfficiency::default();
        assert!(e.efficiency(1000) < e.efficiency(1024));
    }
}
