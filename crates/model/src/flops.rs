//! FLOP accounting for decoder layers and sequence slices.
//!
//! Two observations from the paper drive this module's shape:
//!
//! * Section 5: the *dense* (GEMM) part of a layer's work is proportional
//!   to the number of tokens processed, while the attention-score part is
//!   proportional to `tokens × context`. Under slice-level scheduling the
//!   context grows with the slice index, so later slices are more
//!   expensive — the imbalance that fine-grained weight-gradient
//!   computation absorbs.
//! * The weight-gradient half of the backward pass contains *only* dense
//!   GEMMs ("weight gradient computation does not include the imbalanced
//!   computation of the attention score"), so its cost is slice-independent.

use crate::config::TransformerConfig;

/// FLOPs for the dense (token-proportional) part of one decoder layer's
/// forward pass over `tokens` tokens: QKV/out projections plus the SwiGLU
/// MLP. Each GEMM of shape `[t, a] × [a, b]` costs `2·t·a·b`.
pub fn dense_forward_flops(cfg: &TransformerConfig, tokens: usize) -> f64 {
    let t = tokens as f64;
    let h = cfg.hidden as f64;
    let kvh = cfg.kv_hidden() as f64;
    let f = cfg.ffn_hidden as f64;
    let attn_proj = 2.0 * t * h * h /* q */
        + 2.0 * t * h * kvh /* k */
        + 2.0 * t * h * kvh /* v */
        + 2.0 * t * h * h /* out */;
    let mlp = 3.0 * 2.0 * t * h * f; // Gate, up, down projections.
    attn_proj + mlp
}

/// FLOPs for the attention-score part of one layer's forward pass:
/// `QK^T` and `A·V`, each `2 · tokens · context · h`, over `tokens` query
/// tokens attending to `context` key/value tokens.
pub fn attention_forward_flops(cfg: &TransformerConfig, tokens: usize, context: usize) -> f64 {
    4.0 * tokens as f64 * context as f64 * cfg.hidden as f64
}

/// Average causal context for `tokens` query positions starting at absolute
/// position `start`: position `i` attends to `i + 1` keys, so the mean is
/// `start + (tokens + 1) / 2`.
pub fn causal_context(start: usize, tokens: usize) -> f64 {
    start as f64 + (tokens as f64 + 1.0) / 2.0
}

/// Forward FLOPs of one layer for slice `slice_idx` out of `num_slices`
/// equal slices of a `seq_len`-token sample, honouring causal masking.
pub fn slice_forward_flops(
    cfg: &TransformerConfig,
    seq_len: usize,
    num_slices: usize,
    slice_idx: usize,
) -> f64 {
    let t = seq_len / num_slices;
    let start = slice_idx * t;
    let ctx = causal_context(start, t);
    dense_forward_flops(cfg, t) + 4.0 * t as f64 * ctx * cfg.hidden as f64
}

/// Backward FLOPs of one layer for a slice: gradient w.r.t. inputs *and*
/// weights, conventionally 2× forward (each forward GEMM spawns a dX and a
/// dW GEMM of the same cost; attention backward recomputes both score
/// matmuls for dQ/dK/dV, also ≈ 2×).
pub fn slice_backward_flops(
    cfg: &TransformerConfig,
    seq_len: usize,
    num_slices: usize,
    slice_idx: usize,
) -> f64 {
    2.0 * slice_forward_flops(cfg, seq_len, num_slices, slice_idx)
}

/// The weight-gradient-only half of a slice's backward pass: one dW GEMM
/// per forward GEMM — dense cost only, *no* attention-score term.
pub fn slice_wgrad_flops(cfg: &TransformerConfig, seq_len: usize, num_slices: usize) -> f64 {
    dense_forward_flops(cfg, seq_len / num_slices)
}

/// The input-gradient half of a slice's backward pass: everything in
/// [`slice_backward_flops`] minus [`slice_wgrad_flops`].
pub fn slice_dgrad_flops(
    cfg: &TransformerConfig,
    seq_len: usize,
    num_slices: usize,
    slice_idx: usize,
) -> f64 {
    slice_backward_flops(cfg, seq_len, num_slices, slice_idx)
        - slice_wgrad_flops(cfg, seq_len, num_slices)
}

/// Number of weight-gradient GEMMs in one decoder layer (q, k, v, out,
/// gate, up, down) — the granularity at which Section 5 schedules W work.
pub const WGRAD_GEMMS_PER_LAYER: usize = 7;

/// Forward FLOPs of the output head (logits GEMM) over `tokens` tokens.
pub fn head_forward_flops(cfg: &TransformerConfig, tokens: usize) -> f64 {
    2.0 * tokens as f64 * cfg.hidden as f64 * cfg.vocab as f64
}

/// Total model FLOPs for one training iteration (forward + backward over
/// every layer, embedding lookup ignored, head included), used as the MFU
/// numerator exactly as Megatron-LM reports it.
pub fn iteration_model_flops(cfg: &TransformerConfig, samples: usize) -> f64 {
    let per_sample_layer_fwd = dense_forward_flops(cfg, cfg.seq_len)
        + 4.0 * cfg.seq_len as f64 * causal_context(0, cfg.seq_len) * cfg.hidden as f64;
    let fwd = cfg.layers as f64 * per_sample_layer_fwd + head_forward_flops(cfg, cfg.seq_len);
    3.0 * fwd * samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransformerConfig {
        TransformerConfig::llama2_13b()
    }

    #[test]
    fn later_slices_cost_more() {
        let c = cfg();
        let f0 = slice_forward_flops(&c, 4096, 8, 0);
        let f7 = slice_forward_flops(&c, 4096, 8, 7);
        assert!(f7 > f0);
        // The last slice attends to ~15x the context of the first.
        assert!(f7 / f0 < 1.5, "dense work dominates at 4k context");
    }

    #[test]
    fn slices_sum_to_whole_sample() {
        let c = cfg();
        for s in [1usize, 2, 4, 8, 16] {
            let sum: f64 = (0..s).map(|i| slice_forward_flops(&c, 4096, s, i)).sum();
            let whole = slice_forward_flops(&c, 4096, 1, 0);
            let rel = (sum - whole).abs() / whole;
            assert!(rel < 1e-9, "slice sum deviates by {rel} at s={s}");
        }
    }

    #[test]
    fn attention_share_is_under_10_percent_at_4k() {
        // Section 4.4: attention score is <10% of total computation for a
        // 7B model at context 4096.
        let c = TransformerConfig::llama2_7b();
        let dense = dense_forward_flops(&c, 4096);
        let attn = 4.0 * 4096.0 * causal_context(0, 4096) * c.hidden as f64;
        assert!(
            attn / (attn + dense) < 0.10,
            "share = {}",
            attn / (attn + dense)
        );
    }

    #[test]
    fn dgrad_plus_wgrad_equals_backward() {
        let c = cfg();
        for i in 0..4 {
            let b = slice_backward_flops(&c, 4096, 4, i);
            let d = slice_dgrad_flops(&c, 4096, 4, i);
            let w = slice_wgrad_flops(&c, 4096, 4);
            assert!((d + w - b).abs() / b < 1e-12);
        }
    }

    #[test]
    fn wgrad_is_slice_independent() {
        let c = cfg();
        let w = slice_wgrad_flops(&c, 4096, 4);
        assert!(w > 0.0);
        // No slice index parameter — compare against first-slice dense cost.
        assert_eq!(w, dense_forward_flops(&c, 1024));
    }

    #[test]
    fn iteration_flops_match_6nd_rule_of_thumb() {
        // 6·params·tokens is the standard estimate; our layer-level count
        // should land within ~25% of it for the 13B model.
        let c = cfg();
        let ours = iteration_model_flops(&c, 128);
        let rule = 6.0 * c.num_params() as f64 * (128 * c.seq_len) as f64;
        let rel = (ours - rule).abs() / rule;
        assert!(rel < 0.25, "relative deviation {rel}");
    }

    #[test]
    fn causal_context_bounds() {
        assert_eq!(causal_context(0, 1), 1.0);
        assert_eq!(causal_context(0, 4096), 2048.5);
        assert_eq!(causal_context(1024, 1024), 1536.5);
    }
}
