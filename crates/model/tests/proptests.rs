//! Property tests for the cost and memory models.

use proptest::prelude::*;

use mepipe_hw::topology::ClusterSpec;
use mepipe_model::{
    config::TransformerConfig,
    cost::ExecutionCost,
    flops,
    gemm::GemmEfficiency,
    memory,
    partition::{PartitionSpec, SequenceSplit},
};

fn spec(pp: usize, dp: usize, slices: usize, recompute: bool) -> PartitionSpec {
    PartitionSpec {
        pp,
        vp: 1,
        dp,
        seq: SequenceSplit::SlicePipeline { slices },
        recompute,
        micro_batch_size: 1,
        global_batch: 128,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slice forward FLOPs always sum exactly to the whole-sample count —
    /// slicing redistributes work, it never changes it.
    #[test]
    fn slice_flops_conservation(s_pow in 0usize..=5, seed in 0usize..3) {
        let cfg = [
            TransformerConfig::llama2_7b(),
            TransformerConfig::llama2_13b(),
            TransformerConfig::llama2_34b(),
        ][seed];
        let s = 1usize << s_pow;
        let sum: f64 = (0..s).map(|i| flops::slice_forward_flops(&cfg, 4096, s, i)).sum();
        let whole = flops::slice_forward_flops(&cfg, 4096, 1, 0);
        prop_assert!(((sum - whole) / whole).abs() < 1e-9);
    }

    /// dgrad + wgrad always equals the full backward, for every slice.
    #[test]
    fn backward_split_conservation(s_pow in 0usize..=4, i_frac in 0.0f64..1.0) {
        let cfg = TransformerConfig::llama2_13b();
        let s = 1usize << s_pow;
        let i = ((i_frac * s as f64) as usize).min(s - 1);
        let b = flops::slice_backward_flops(&cfg, 4096, s, i);
        let d = flops::slice_dgrad_flops(&cfg, 4096, s, i);
        let w = flops::slice_wgrad_flops(&cfg, 4096, s);
        prop_assert!(((d + w - b) / b).abs() < 1e-12);
    }

    /// Forward time rises with the slice index (causal imbalance) and the
    /// weight-gradient time never depends on it.
    #[test]
    fn cost_monotonicity(slices in prop::sample::select(vec![2usize, 4, 8, 16])) {
        let cfg = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let cost = ExecutionCost::new(cfg, spec(8, 8, slices, false), &cluster).unwrap();
        let mut prev = 0.0;
        for i in 0..slices {
            let t = cost.forward_time(i);
            prop_assert!(t > prev);
            prev = t;
        }
    }

    /// Memory budget shrinks as pipeline stages shrink (more parameters
    /// per worker), for every model size.
    #[test]
    fn budget_monotone_in_pp(model_idx in 0usize..3) {
        let cfg = [
            TransformerConfig::llama2_7b(),
            TransformerConfig::llama2_13b(),
            TransformerConfig::llama2_34b(),
        ][model_idx];
        let usable = ClusterSpec::rtx4090_cluster().accelerator.usable_memory_bytes();
        let b8 = memory::activation_budget_bytes(&cfg, &spec(8, 8, 4, false), usable);
        let b4 = memory::activation_budget_bytes(&cfg, &spec(4, 16, 4, false), usable);
        let b2 = memory::activation_budget_bytes(&cfg, &spec(2, 32, 4, false), usable);
        prop_assert!(b8 > b4 && b4 > b2, "{b8} {b4} {b2}");
    }

    /// Recomputation always shrinks the per-unit activation bytes by at
    /// least 85% (the paper's "reduces ... by 90%").
    #[test]
    fn recompute_reduction(slices in prop::sample::select(vec![1usize, 2, 4, 8])) {
        let cfg = TransformerConfig::llama2_13b();
        let plain = memory::activation_bytes_per_unit(&cfg, &spec(8, 8, slices, false));
        let rc = memory::activation_bytes_per_unit(&cfg, &spec(8, 8, slices, true));
        prop_assert!(rc < 0.15 * plain);
    }

    /// GEMM efficiency is bounded in (0, 1) and tile-aligned sizes always
    /// dominate the ragged size just below them.
    #[test]
    fn efficiency_bounds(t in 1usize..65536) {
        let e = GemmEfficiency::default();
        let x = e.efficiency(t);
        prop_assert!(x > 0.0 && x < 1.0);
        if t % 128 == 0 && t > 128 {
            prop_assert!(e.efficiency(t) > e.efficiency(t - 1));
        }
    }

    /// The cost model rejects exactly the partitions `validate` rejects.
    #[test]
    fn cost_model_respects_validation(pp in 1usize..=64, dp in 1usize..=64) {
        let cfg = TransformerConfig::llama2_13b();
        let cluster = ClusterSpec::rtx4090_cluster();
        let s = spec(pp, dp, 4, false);
        let valid = s.validate(&cfg, cluster.num_devices()).is_ok();
        let built = ExecutionCost::new(cfg, s, &cluster).is_ok();
        prop_assert_eq!(valid, built);
    }
}
