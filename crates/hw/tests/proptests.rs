//! Property tests for topology and rank mapping.

use proptest::prelude::*;

use mepipe_hw::{
    mapping::{ParallelLayout, RankMapping},
    topology::ClusterSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any layout that fills the cluster maps groups that partition the
    /// ranks exactly (no overlap, no gaps) along all three axes.
    #[test]
    fn groups_partition_ranks(pp_pow in 0usize..=6, dp_pow in 0usize..=6, cp_pow in 0usize..=3) {
        let (pp, dp, cp) = (1usize << pp_pow, 1usize << dp_pow, 1usize << cp_pow);
        prop_assume!(pp * dp * cp == 64);
        let cluster = ClusterSpec::rtx4090_cluster();
        let layout = ParallelLayout::new(pp, dp, cp).unwrap();
        let m = RankMapping::new(layout, &cluster).unwrap();

        let mut seen = vec![0u32; 64];
        for s in 0..pp {
            for d in 0..dp {
                for r in m.cp_group(s, d) {
                    seen[r] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x == 1), "cp groups: {:?}", seen);

        let mut seen = vec![0u32; 64];
        for d in 0..dp {
            for c in 0..cp {
                for r in m.pp_group(d, c) {
                    seen[r] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x == 1), "pp groups: {:?}", seen);
    }

    /// Stage-boundary links never report loopback for distinct ranks and
    /// the worst link is at most as fast as any individual boundary.
    #[test]
    fn pp_links_sane(pp_pow in 1usize..=6, cp_pow in 0usize..=3) {
        let pp = 1usize << pp_pow;
        let cp = 1usize << cp_pow;
        prop_assume!(64 % (pp * cp) == 0);
        let dp = 64 / (pp * cp);
        prop_assume!(dp >= 1);
        let cluster = ClusterSpec::rtx4090_cluster();
        let m = RankMapping::new(ParallelLayout::new(pp, dp, cp).unwrap(), &cluster).unwrap();
        let worst = m.worst_pp_link(&cluster);
        for s in 0..pp - 1 {
            let l = m.pp_link(&cluster, s, 0, 0).unwrap();
            prop_assert!(l.bandwidth > 0.0);
            prop_assert!(worst.bandwidth <= l.bandwidth);
        }
    }

    /// Transfer time is monotone in message size and respects latency.
    #[test]
    fn transfer_time_monotone(bytes_a in 0u64..1_000_000_000, bytes_b in 0u64..1_000_000_000) {
        let link = mepipe_hw::link::LinkSpec::pcie4();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        if hi > 0 {
            prop_assert!(link.transfer_time(hi) >= link.latency);
        }
    }
}
