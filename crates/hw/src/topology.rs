//! Cluster topology: nodes, devices and the links between them.

use crate::{accelerator::AcceleratorSpec, link::LinkSpec};

/// Physical position of one device in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId {
    /// Node (server) index.
    pub node: usize,
    /// Device index within the node.
    pub local: usize,
}

/// A homogeneous cluster: `nodes × gpus_per_node` identical accelerators,
/// one link class inside a node and one between nodes.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of servers.
    pub nodes: usize,
    /// Accelerators per server.
    pub gpus_per_node: usize,
    /// The accelerator model installed in every slot.
    pub accelerator: AcceleratorSpec,
    /// Link class between two devices in the same node.
    pub intra_node: LinkSpec,
    /// Link class between two devices in different nodes.
    pub inter_node: LinkSpec,
}

impl ClusterSpec {
    /// The paper's main testbed: 8 servers × 8 RTX 4090, PCIe 4.0 inside a
    /// node, 100 Gb/s InfiniBand between nodes (Section 7.1).
    pub fn rtx4090_cluster() -> Self {
        Self {
            nodes: 8,
            gpus_per_node: 8,
            accelerator: AcceleratorSpec::rtx4090(),
            intra_node: LinkSpec::pcie4(),
            inter_node: LinkSpec::ib_100g(),
        }
    }

    /// The paper's reference cluster: 4 servers × 8 A100-80G, NVLink inside
    /// a node, 800 Gb/s InfiniBand between nodes (Section 7.6).
    pub fn a100_cluster() -> Self {
        Self {
            nodes: 4,
            gpus_per_node: 8,
            accelerator: AcceleratorSpec::a100_80g(),
            intra_node: LinkSpec::nvlink3(),
            inter_node: LinkSpec::ib_800g(),
        }
    }

    /// Total number of devices.
    pub fn num_devices(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Device at a given global rank, ranks laid out node-major.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= num_devices()`.
    pub fn device_of_rank(&self, rank: usize) -> DeviceId {
        assert!(rank < self.num_devices(), "rank {rank} out of range");
        DeviceId {
            node: rank / self.gpus_per_node,
            local: rank % self.gpus_per_node,
        }
    }

    /// The link class connecting two devices.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> &LinkSpec {
        if a == b {
            // Same device: schedule-internal handoff, no transfer.
            const LOOPBACK: LinkSpec = LinkSpec {
                name: "loopback",
                bandwidth: f64::INFINITY,
                latency: 0.0,
            };
            // A `const` local keeps the zero-cost case allocation-free.
            static LOOPBACK_STATIC: LinkSpec = LOOPBACK;
            &LOOPBACK_STATIC
        } else if a.node == b.node {
            &self.intra_node
        } else {
            &self.inter_node
        }
    }

    /// The link class connecting two global ranks.
    pub fn link_between_ranks(&self, a: usize, b: usize) -> &LinkSpec {
        self.link_between(self.device_of_rank(a), self.device_of_rank(b))
    }

    /// The bottleneck link for a collective spanning the given ranks: the
    /// inter-node link if the group crosses a node boundary, the intra-node
    /// link if it spans multiple devices of one node, loopback otherwise.
    pub fn group_link(&self, ranks: &[usize]) -> &LinkSpec {
        if ranks.len() <= 1 {
            static LOOPBACK_STATIC: LinkSpec = LinkSpec {
                name: "loopback",
                bandwidth: f64::INFINITY,
                latency: 0.0,
            };
            return &LOOPBACK_STATIC;
        }
        let first = self.device_of_rank(ranks[0]).node;
        if ranks.iter().any(|&r| self.device_of_rank(r).node != first) {
            &self.inter_node
        } else {
            &self.intra_node
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clusters_have_64_and_32_gpus() {
        assert_eq!(ClusterSpec::rtx4090_cluster().num_devices(), 64);
        assert_eq!(ClusterSpec::a100_cluster().num_devices(), 32);
    }

    #[test]
    fn rank_layout_is_node_major() {
        let c = ClusterSpec::rtx4090_cluster();
        assert_eq!(c.device_of_rank(0), DeviceId { node: 0, local: 0 });
        assert_eq!(c.device_of_rank(7), DeviceId { node: 0, local: 7 });
        assert_eq!(c.device_of_rank(8), DeviceId { node: 1, local: 0 });
        assert_eq!(c.device_of_rank(63), DeviceId { node: 7, local: 7 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        ClusterSpec::rtx4090_cluster().device_of_rank(64);
    }

    #[test]
    fn link_selection_respects_node_boundary() {
        let c = ClusterSpec::rtx4090_cluster();
        assert_eq!(c.link_between_ranks(0, 1).name, "PCIe 4.0 x16");
        assert_eq!(c.link_between_ranks(0, 8).name, "InfiniBand 100G");
        assert_eq!(c.link_between_ranks(3, 3).name, "loopback");
    }

    #[test]
    fn group_link_is_bottleneck() {
        let c = ClusterSpec::rtx4090_cluster();
        assert_eq!(c.group_link(&[0, 1, 2, 3]).name, "PCIe 4.0 x16");
        assert_eq!(c.group_link(&[0, 8]).name, "InfiniBand 100G");
        assert_eq!(c.group_link(&[5]).name, "loopback");
    }
}
