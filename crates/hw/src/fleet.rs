//! Mutable fleet capacity model for the control plane.
//!
//! [`ClusterSpec`] describes the hardware the paper evaluates on; a
//! [`Fleet`] tracks what of it is *available right now* — slots per
//! node, which slots a running gang holds, which nodes an operator has
//! drained — so `mepipe-ctl` can gang-schedule jobs, admit them with
//! backfill, and react to capacity changes by re-sharding. The model is
//! deliberately slot-granular: one slot hosts one pipeline-stage
//! process, mirroring the one-GPU-per-stage mapping in
//! [`crate::mapping`].

use crate::topology::ClusterSpec;

/// One server's worth of schedulable accelerator slots.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operator-assigned name, unique within the fleet.
    pub name: String,
    /// Total accelerator slots on this node.
    pub slots: usize,
    /// Slots currently held by running gangs.
    pub used: usize,
    /// Drained nodes accept no new allocations (running gangs keep
    /// their slots until the control plane migrates them off).
    pub drained: bool,
}

impl Node {
    /// Slots a new allocation may take from this node.
    pub fn free(&self) -> usize {
        if self.drained {
            0
        } else {
            self.slots - self.used
        }
    }
}

/// The slots one gang holds: `count` slots spread over the named nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangAlloc {
    /// `(node name, slots taken on that node)`, in allocation order.
    pub slots: Vec<(String, usize)>,
}

impl GangAlloc {
    /// Total slots held across all nodes.
    pub fn total(&self) -> usize {
        self.slots.iter().map(|(_, n)| n).sum()
    }

    /// Whether the allocation touches the named node.
    pub fn uses(&self, node: &str) -> bool {
        self.slots.iter().any(|(name, _)| name == node)
    }
}

/// A fleet of nodes with slot-level capacity accounting.
#[derive(Debug, Clone)]
pub struct Fleet {
    nodes: Vec<Node>,
    next_name: usize,
}

impl Fleet {
    /// A fleet of `nodes` homogeneous servers with `slots_per_node`
    /// accelerators each, named `node-0..`.
    pub fn homogeneous(nodes: usize, slots_per_node: usize) -> Self {
        let mut fleet = Self {
            nodes: Vec::new(),
            next_name: 0,
        };
        for _ in 0..nodes {
            fleet.add_node(slots_per_node);
        }
        fleet
    }

    /// The fleet a [`ClusterSpec`] describes, fully idle.
    pub fn from_cluster(cluster: &ClusterSpec) -> Self {
        Self::homogeneous(cluster.nodes, cluster.gpus_per_node)
    }

    /// All nodes, in allocation-preference order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Adds a fresh node with `slots` accelerators; returns its name.
    pub fn add_node(&mut self, slots: usize) -> String {
        let name = format!("node-{}", self.next_name);
        self.next_name += 1;
        self.nodes.push(Node {
            name: name.clone(),
            slots,
            used: 0,
            drained: false,
        });
        name
    }

    /// Marks a node drained so it accepts no new allocations. Returns
    /// false if no node has that name.
    pub fn drain(&mut self, node: &str) -> bool {
        match self.nodes.iter_mut().find(|n| n.name == node) {
            Some(n) => {
                n.drained = true;
                true
            }
            None => false,
        }
    }

    /// Total slots new allocations may currently take.
    pub fn free_slots(&self) -> usize {
        self.nodes.iter().map(Node::free).sum()
    }

    /// Total slots on undrained nodes, busy or not — the ceiling a
    /// re-shard search should plan against.
    pub fn schedulable_slots(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.drained)
            .map(|n| n.slots)
            .sum()
    }

    /// Total slots held by running gangs.
    pub fn used_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.used).sum()
    }

    /// Takes `count` slots for one gang, packing nodes in order (fewest
    /// node crossings for the pipeline's p2p links). Returns `None` —
    /// and changes nothing — if the fleet cannot currently hold the
    /// gang.
    pub fn allocate(&mut self, count: usize) -> Option<GangAlloc> {
        if count == 0 || self.free_slots() < count {
            return None;
        }
        let mut remaining = count;
        let mut slots = Vec::new();
        for node in &mut self.nodes {
            let take = node.free().min(remaining);
            if take > 0 {
                node.used += take;
                slots.push((node.name.clone(), take));
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
        }
        debug_assert_eq!(remaining, 0);
        Some(GangAlloc { slots })
    }

    /// Returns a gang's slots to the fleet. Slots on nodes that no
    /// longer exist are dropped silently (the node left with the gang).
    pub fn release(&mut self, alloc: &GangAlloc) {
        for (name, n) in &alloc.slots {
            if let Some(node) = self.nodes.iter_mut().find(|x| &x.name == name) {
                node.used = node.used.saturating_sub(*n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_packs_nodes_and_releases_cleanly() {
        let mut fleet = Fleet::homogeneous(2, 2);
        assert_eq!(fleet.free_slots(), 4);

        let a = fleet.allocate(3).expect("3 of 4 slots");
        assert_eq!(a.total(), 3);
        assert_eq!(
            a.slots,
            vec![("node-0".to_string(), 2), ("node-1".to_string(), 1)]
        );
        assert_eq!(fleet.free_slots(), 1);

        assert!(fleet.allocate(2).is_none(), "must not over-commit");
        assert_eq!(fleet.free_slots(), 1, "failed allocation changes nothing");

        let b = fleet.allocate(1).expect("last slot");
        fleet.release(&a);
        fleet.release(&b);
        assert_eq!(fleet.free_slots(), 4);
        assert_eq!(fleet.used_slots(), 0);
    }

    #[test]
    fn drained_nodes_accept_no_new_work() {
        let mut fleet = Fleet::homogeneous(2, 2);
        let gang = fleet.allocate(1).unwrap();
        assert!(gang.uses("node-0"));

        assert!(fleet.drain("node-0"));
        assert!(!fleet.drain("node-9"));
        assert_eq!(fleet.free_slots(), 2, "only node-1 counts");
        assert_eq!(fleet.schedulable_slots(), 2);

        let next = fleet.allocate(2).expect("fits on node-1");
        assert!(!next.uses("node-0"));
        // The running gang still holds its slot on the drained node.
        assert_eq!(fleet.used_slots(), 3);
    }

    #[test]
    fn added_nodes_extend_capacity() {
        let mut fleet = Fleet::homogeneous(1, 2);
        assert!(fleet.allocate(4).is_none());
        let name = fleet.add_node(2);
        assert_eq!(name, "node-1");
        let gang = fleet.allocate(4).expect("fits after expansion");
        assert_eq!(gang.total(), 4);
        assert_eq!(fleet.free_slots(), 0);
    }

    #[test]
    fn from_cluster_matches_the_spec() {
        let fleet = Fleet::from_cluster(&ClusterSpec::rtx4090_cluster());
        assert_eq!(fleet.nodes().len(), 8);
        assert_eq!(fleet.free_slots(), 64);
    }
}
