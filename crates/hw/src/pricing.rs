//! Pricing and cost-effectiveness model (Table 9 and Section 9).
//!
//! The paper's headline economic claim: a 64× RTX 4090 cluster matches the
//! iteration time of a 32× A100 cluster at one fifth of the per-server
//! price per FLOP-equivalent, making it 2.5× more cost-effective. This
//! module reproduces that arithmetic, including the operating-cost
//! break-even analysis from Section 9.

use crate::accelerator::AcceleratorSpec;

/// Capital cost of one 8-GPU server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPricing {
    /// Price of one server with 8 accelerators, in USD (October 2024 per
    /// the paper).
    pub server_price_usd: f64,
    /// Accelerators per server.
    pub gpus_per_server: usize,
}

impl ServerPricing {
    /// The paper's A100 server price: $150,000.
    pub fn a100() -> Self {
        Self {
            server_price_usd: 150_000.0,
            gpus_per_server: 8,
        }
    }

    /// The paper's RTX 4090 server price: $30,000.
    pub fn rtx4090() -> Self {
        Self {
            server_price_usd: 30_000.0,
            gpus_per_server: 8,
        }
    }

    /// Capital cost per accelerator.
    pub fn price_per_gpu(&self) -> f64 {
        self.server_price_usd / self.gpus_per_server as f64
    }
}

/// Outcome of a cost-effectiveness comparison between two training setups.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Capital cost of setup A in USD.
    pub capital_a: f64,
    /// Capital cost of setup B in USD.
    pub capital_b: f64,
    /// Iteration time of setup A in seconds.
    pub iter_time_a: f64,
    /// Iteration time of setup B in seconds.
    pub iter_time_b: f64,
    /// How many times more cost-effective A is than B:
    /// `(capital_b × time_b) / (capital_a × time_a)`.
    pub cost_effectiveness_ratio: f64,
}

/// Compares the cost-effectiveness of two clusters on the same workload.
///
/// Cost-effectiveness is capital × time-to-result; lower is better, so the
/// returned ratio is `>1` when setup A wins.
///
/// # Examples
///
/// ```
/// use mepipe_hw::pricing::{compare_cost_effectiveness, ServerPricing};
///
/// // Table 9's 13B row: 5852 ms on 64x4090 vs 6131 ms on 32xA100.
/// let r = compare_cost_effectiveness(
///     ServerPricing::rtx4090(), 64, 5.852,
///     ServerPricing::a100(), 32, 6.131,
/// );
/// assert!(r.cost_effectiveness_ratio > 2.0);
/// ```
pub fn compare_cost_effectiveness(
    pricing_a: ServerPricing,
    gpus_a: usize,
    iter_time_a: f64,
    pricing_b: ServerPricing,
    gpus_b: usize,
    iter_time_b: f64,
) -> CostReport {
    let capital_a = pricing_a.price_per_gpu() * gpus_a as f64;
    let capital_b = pricing_b.price_per_gpu() * gpus_b as f64;
    let ratio = (capital_b * iter_time_b) / (capital_a * iter_time_a);
    CostReport {
        capital_a,
        capital_b,
        iter_time_a,
        iter_time_b,
        cost_effectiveness_ratio: ratio,
    }
}

/// Years of continuous operation until the *total* cost (capital + energy)
/// of the cheaper-capital cluster catches up with the pricier one, given
/// equal delivered throughput (Section 9's ~24-year figure).
///
/// Returns `None` if the cheap cluster never catches up (it draws less or
/// equal power).
pub fn operating_cost_break_even_years(
    cheap: &AcceleratorSpec,
    cheap_count: usize,
    cheap_capital: f64,
    pricey: &AcceleratorSpec,
    pricey_count: usize,
    pricey_capital: f64,
    usd_per_kwh: f64,
) -> Option<f64> {
    let cheap_kw = cheap.power_watts * cheap_count as f64 / 1000.0;
    let pricey_kw = pricey.power_watts * pricey_count as f64 / 1000.0;
    let extra_kw = cheap_kw - pricey_kw;
    if extra_kw <= 0.0 {
        return None;
    }
    let capital_gap = pricey_capital - cheap_capital;
    if capital_gap <= 0.0 {
        return Some(0.0);
    }
    let hours = capital_gap / (extra_kw * usd_per_kwh);
    Some(hours / (24.0 * 365.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_is_about_2_5x() {
        // Llama 13B, Table 9: 5852 ms on 64×4090 vs 6131 ms on 32×A100.
        let r = compare_cost_effectiveness(
            ServerPricing::rtx4090(),
            64,
            5.852,
            ServerPricing::a100(),
            32,
            6.131,
        );
        assert!(
            (r.cost_effectiveness_ratio - 2.5).abs() < 0.2,
            "expected ~2.5x, got {}",
            r.cost_effectiveness_ratio
        );
    }

    #[test]
    fn equal_setups_are_even() {
        let r = compare_cost_effectiveness(
            ServerPricing::a100(),
            32,
            1.0,
            ServerPricing::a100(),
            32,
            1.0,
        );
        assert!((r.cost_effectiveness_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn break_even_matches_section9_order_of_magnitude() {
        // 64×4090 (450 W each) vs 32×A100 (400 W each); capital gap
        // $240k vs $600k; $0.1/kWh.
        let years = operating_cost_break_even_years(
            &AcceleratorSpec::rtx4090(),
            64,
            240_000.0,
            &AcceleratorSpec::a100_80g(),
            32,
            600_000.0,
            0.1,
        )
        .expect("4090 cluster draws more power");
        assert!(
            (10.0..60.0).contains(&years),
            "expected tens of years, got {years}"
        );
    }

    #[test]
    fn break_even_none_when_cheap_is_also_frugal() {
        let years = operating_cost_break_even_years(
            &AcceleratorSpec::a100_80g(),
            32,
            100.0,
            &AcceleratorSpec::rtx4090(),
            64,
            200.0,
            0.1,
        );
        assert!(years.is_none());
    }
}
