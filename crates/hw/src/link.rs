//! Interconnect link specifications.
//!
//! Communication time for a message of `b` bytes over a link is modelled as
//! the classic alpha–beta cost: `latency + b / bandwidth`. Bandwidth values
//! are *effective* point-to-point numbers (datasheet figures derated for
//! protocol overhead), matching what NCCL-style transports actually deliver.

/// Static description of one interconnect link class.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name, e.g. `"PCIe 4.0 x16"`.
    pub name: &'static str,
    /// Effective unidirectional point-to-point bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-message latency in seconds (software + wire).
    pub latency: f64,
}

impl LinkSpec {
    /// PCIe 4.0 x16 peer-to-peer through the host bridge. Datasheet is
    /// 32 GB/s per direction; effective p2p through host memory on dual-root
    /// consumer boards is substantially lower.
    pub fn pcie4() -> Self {
        Self {
            name: "PCIe 4.0 x16",
            bandwidth: 22e9,
            latency: 12e-6,
        }
    }

    /// NVLink 3 (A100): 600 GB/s bidirectional, ~250 GB/s effective p2p.
    pub fn nvlink3() -> Self {
        Self {
            name: "NVLink 3",
            bandwidth: 250e9,
            latency: 4e-6,
        }
    }

    /// 100 Gb/s InfiniBand HDR100 (the 4090 cluster's inter-node fabric).
    pub fn ib_100g() -> Self {
        Self {
            name: "InfiniBand 100G",
            bandwidth: 11e9,
            latency: 18e-6,
        }
    }

    /// 800 Gb/s InfiniBand (the A100 cluster's inter-node fabric).
    pub fn ib_800g() -> Self {
        Self {
            name: "InfiniBand 800G",
            bandwidth: 90e9,
            latency: 14e-6,
        }
    }

    /// Zero-cost loopback for single-device groups.
    pub fn loopback() -> Self {
        Self {
            name: "loopback",
            bandwidth: f64::INFINITY,
            latency: 0.0,
        }
    }

    /// Time in seconds to move `bytes` over this link point-to-point.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time for a ring all-gather where each of `n` ranks contributes
    /// `bytes_per_rank`: `(n-1)` steps each moving one shard.
    pub fn ring_all_gather_time(&self, n: usize, bytes_per_rank: u64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (n - 1) as f64 * self.transfer_time(bytes_per_rank)
    }

    /// Time for a ring reduce-scatter over `total_bytes` of payload across
    /// `n` ranks: `(n-1)` steps each moving `total/n` bytes.
    pub fn ring_reduce_scatter_time(&self, n: usize, total_bytes: u64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let shard = total_bytes / n as u64;
        (n - 1) as f64 * self.transfer_time(shard)
    }

    /// Time for a ring all-reduce over `total_bytes` across `n` ranks
    /// (reduce-scatter followed by all-gather: `2(n-1)` shard moves).
    pub fn ring_all_reduce_time(&self, n: usize, total_bytes: u64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let shard = total_bytes / n as u64;
        2.0 * (n - 1) as f64 * self.transfer_time(shard)
    }

    /// The slower (more constrained) of two links; collectives that span
    /// both intra- and inter-node hops are bottlenecked by the weaker one.
    pub fn bottleneck<'a>(&'a self, other: &'a LinkSpec) -> &'a LinkSpec {
        if self.bandwidth <= other.bandwidth {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_alpha_beta() {
        let l = LinkSpec::pcie4();
        let t = l.transfer_time(22_000_000_000);
        assert!((t - (1.0 + l.latency)).abs() < 1e-9);
        assert_eq!(l.transfer_time(0), 0.0);
    }

    #[test]
    fn loopback_is_free() {
        let l = LinkSpec::loopback();
        assert_eq!(l.transfer_time(1 << 30), 0.0);
        assert_eq!(l.ring_all_reduce_time(8, 1 << 30), 0.0);
    }

    #[test]
    fn collectives_scale_with_ranks() {
        let l = LinkSpec::ib_100g();
        let t2 = l.ring_all_reduce_time(2, 1 << 30);
        let t8 = l.ring_all_reduce_time(8, 1 << 30);
        // All-reduce volume per rank approaches 2x payload as n grows.
        assert!(t8 > t2);
        assert_eq!(l.ring_all_reduce_time(1, 1 << 30), 0.0);
    }

    #[test]
    fn bottleneck_picks_slower() {
        let a = LinkSpec::nvlink3();
        let b = LinkSpec::ib_100g();
        assert_eq!(a.bottleneck(&b).name, b.name);
    }
}
