//! Accelerator (GPU) specifications.
//!
//! Peak throughput numbers follow Table 9 of the paper. One subtlety the
//! paper calls out in Section 7.6: to keep convergence identical across
//! clusters they run GEMMs with FP32 accumulation, which roughly *halves*
//! the effective matmul throughput of the RTX 4090 (330 → ~165 TFLOPS)
//! while the A100 keeps its full 312 TFLOPS. The `effective_matmul_flops`
//! field captures the achievable peak; `marketing_flops` keeps the
//! datasheet number used for MFU reporting.

/// Static description of one accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Human-readable model name, e.g. `"RTX 4090"`.
    pub name: &'static str,
    /// On-device memory in bytes.
    pub memory_bytes: u64,
    /// Datasheet FP16 tensor throughput in FLOP/s (used as the MFU
    /// denominator, matching the paper).
    pub marketing_flops: f64,
    /// Achievable dense-GEMM throughput in FLOP/s after accounting for the
    /// FP32-accumulation penalty described in Section 7.6.
    pub effective_matmul_flops: f64,
    /// Device memory bandwidth in bytes/s (bounds memory-bound kernels such
    /// as softmax and normalisation).
    pub memory_bandwidth: f64,
    /// Board power in watts (Section 9 discusses operating cost).
    pub power_watts: f64,
}

impl AcceleratorSpec {
    /// NVIDIA RTX 4090, 24 GB — the paper's cost-effective accelerator.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090",
            memory_bytes: 24 * GIB,
            marketing_flops: 330e12,
            // FP32 accumulation halves the throughput on Ada consumer parts.
            effective_matmul_flops: 165e12,
            memory_bandwidth: 1008e9,
            power_watts: 450.0,
        }
    }

    /// NVIDIA A100 80 GB SXM — the paper's reference datacentre accelerator.
    pub fn a100_80g() -> Self {
        Self {
            name: "A100 80GB",
            memory_bytes: 80 * GIB,
            marketing_flops: 312e12,
            effective_matmul_flops: 312e12,
            memory_bandwidth: 2039e9,
            power_watts: 400.0,
        }
    }

    /// NVIDIA A100 40 GB PCIe — used by the artifact's functionality test.
    pub fn a100_40g() -> Self {
        Self {
            name: "A100 40GB",
            memory_bytes: 40 * GIB,
            marketing_flops: 312e12,
            effective_matmul_flops: 312e12,
            memory_bandwidth: 1555e9,
            power_watts: 250.0,
        }
    }

    /// Fraction of device memory usable by the framework after CUDA context,
    /// allocator reserve and fragmentation. The paper observed the PyTorch
    /// allocator reserving extra memory (Section 7.2, the ZB OOM); 96 %
    /// usable matches the very-tight configurations Tables 5-8 report as
    /// runnable on the 24 GB card.
    pub fn usable_memory_bytes(&self) -> u64 {
        (self.memory_bytes as f64 * 0.96) as u64
    }
}

/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table9() {
        let g4090 = AcceleratorSpec::rtx4090();
        let a100 = AcceleratorSpec::a100_80g();
        assert_eq!(g4090.memory_bytes, 24 * GIB);
        assert_eq!(a100.memory_bytes, 80 * GIB);
        assert!(g4090.marketing_flops > a100.marketing_flops);
        assert!(g4090.effective_matmul_flops < a100.effective_matmul_flops);
    }

    #[test]
    fn usable_memory_leaves_reserve() {
        let g = AcceleratorSpec::rtx4090();
        assert!(g.usable_memory_bytes() < g.memory_bytes);
        assert!(g.usable_memory_bytes() > 21 * GIB);
    }
}
