//! Hardware substrate for the MEPipe reproduction.
//!
//! The paper evaluates on two clusters:
//!
//! * 8 servers × 8 NVIDIA RTX 4090 (24 GB), PCIe 4.0 intra-node,
//!   100 Gb/s InfiniBand inter-node;
//! * 4 servers × 8 NVIDIA A100-80G with NVLink intra-node and
//!   800 Gb/s InfiniBand inter-node.
//!
//! This crate models accelerators, links, cluster topology, the mapping of
//! parallel groups (pipeline / data / context-or-sequence parallelism) onto
//! physical devices, and the pricing model behind the paper's
//! cost-effectiveness analysis (Table 9).
#![warn(missing_docs)]

pub mod accelerator;
pub mod fleet;
pub mod link;
pub mod mapping;
pub mod pricing;
pub mod topology;

pub use accelerator::AcceleratorSpec;
pub use fleet::{Fleet, GangAlloc};
pub use link::LinkSpec;
pub use mapping::{ParallelLayout, RankMapping};
pub use pricing::{CostReport, ServerPricing};
pub use topology::{ClusterSpec, DeviceId};
