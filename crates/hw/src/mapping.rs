//! Mapping of parallel groups onto cluster ranks.
//!
//! The paper combines pipeline parallelism (PP) with data parallelism
//! (DP, with ZeRO-1 optimizer sharding) and either context parallelism (CP)
//! or sequence pipeline parallelism (SPP). SPP needs no extra worker
//! dimension — slices stay on the pipeline workers — so a layout is the
//! triple `(pp, dp, cp)`.
//!
//! Following Megatron-LM conventions (and minimising traffic on the weakest
//! links), the CP dimension varies fastest so CP collectives stay inside a
//! node whenever possible, DP comes next, and PP is outermost so that
//! inter-stage point-to-point transfers cross node boundaries — the cheapest
//! communication pattern for the most constrained fabric.

use crate::topology::ClusterSpec;

/// Sizes of the three worker-partitioning dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelLayout {
    /// Pipeline-parallel size (number of stages), ≥ 1.
    pub pp: usize,
    /// Data-parallel size, ≥ 1.
    pub dp: usize,
    /// Context-parallel size, ≥ 1 (1 when using SPP instead of CP).
    pub cp: usize,
}

impl ParallelLayout {
    /// Creates a layout; returns `None` if any dimension is zero.
    pub fn new(pp: usize, dp: usize, cp: usize) -> Option<Self> {
        if pp == 0 || dp == 0 || cp == 0 {
            None
        } else {
            Some(Self { pp, dp, cp })
        }
    }

    /// Total number of workers required.
    pub fn num_workers(&self) -> usize {
        self.pp * self.dp * self.cp
    }

    /// Whether this layout exactly fills the given cluster.
    pub fn fits(&self, cluster: &ClusterSpec) -> bool {
        self.num_workers() == cluster.num_devices()
    }
}

/// Resolves layout coordinates to global ranks on a concrete cluster.
#[derive(Debug, Clone)]
pub struct RankMapping {
    layout: ParallelLayout,
}

impl RankMapping {
    /// Builds a mapping; fails if the layout does not exactly fill the
    /// cluster.
    pub fn new(layout: ParallelLayout, cluster: &ClusterSpec) -> Result<Self, String> {
        if !layout.fits(cluster) {
            return Err(format!(
                "layout {}x{}x{} = {} workers does not fill {}-device cluster",
                layout.pp,
                layout.dp,
                layout.cp,
                layout.num_workers(),
                cluster.num_devices()
            ));
        }
        Ok(Self { layout })
    }

    /// The layout this mapping realises.
    pub fn layout(&self) -> ParallelLayout {
        self.layout
    }

    /// Global rank of the worker at `(stage, dp_idx, cp_idx)`.
    pub fn rank(&self, stage: usize, dp_idx: usize, cp_idx: usize) -> usize {
        debug_assert!(stage < self.layout.pp);
        debug_assert!(dp_idx < self.layout.dp);
        debug_assert!(cp_idx < self.layout.cp);
        (stage * self.layout.dp + dp_idx) * self.layout.cp + cp_idx
    }

    /// Ranks of one context-parallel group (fixed stage and DP index).
    pub fn cp_group(&self, stage: usize, dp_idx: usize) -> Vec<usize> {
        (0..self.layout.cp)
            .map(|c| self.rank(stage, dp_idx, c))
            .collect()
    }

    /// Ranks of one data-parallel group (fixed stage and CP index).
    pub fn dp_group(&self, stage: usize, cp_idx: usize) -> Vec<usize> {
        (0..self.layout.dp)
            .map(|d| self.rank(stage, d, cp_idx))
            .collect()
    }

    /// Ranks of one pipeline (fixed DP and CP index), first stage first.
    pub fn pp_group(&self, dp_idx: usize, cp_idx: usize) -> Vec<usize> {
        (0..self.layout.pp)
            .map(|s| self.rank(s, dp_idx, cp_idx))
            .collect()
    }

    /// The link used for the stage → stage+1 point-to-point transfer on
    /// pipeline `(dp_idx, cp_idx)`; `None` past the last boundary.
    pub fn pp_link<'c>(
        &self,
        cluster: &'c ClusterSpec,
        stage: usize,
        dp_idx: usize,
        cp_idx: usize,
    ) -> Option<&'c crate::link::LinkSpec> {
        if stage + 1 >= self.layout.pp {
            return None;
        }
        let a = self.rank(stage, dp_idx, cp_idx);
        let b = self.rank(stage + 1, dp_idx, cp_idx);
        Some(cluster.link_between_ranks(a, b))
    }

    /// The slowest stage-boundary link across the whole pipeline for DP/CP
    /// index (0, 0); schedules are bottlenecked by this hop.
    pub fn worst_pp_link<'c>(&self, cluster: &'c ClusterSpec) -> &'c crate::link::LinkSpec {
        let mut worst = cluster.link_between_ranks(self.rank(0, 0, 0), self.rank(0, 0, 0));
        for s in 0..self.layout.pp.saturating_sub(1) {
            let l = self.pp_link(cluster, s, 0, 0).expect("boundary exists");
            worst = worst.bottleneck(l);
        }
        worst
    }

    /// The bottleneck link for a CP collective at the given coordinates.
    pub fn cp_link<'c>(
        &self,
        cluster: &'c ClusterSpec,
        stage: usize,
        dp_idx: usize,
    ) -> &'c crate::link::LinkSpec {
        cluster.group_link(&self.cp_group(stage, dp_idx))
    }

    /// The bottleneck link for a DP gradient synchronisation at the given
    /// coordinates.
    pub fn dp_link<'c>(
        &self,
        cluster: &'c ClusterSpec,
        stage: usize,
        cp_idx: usize,
    ) -> &'c crate::link::LinkSpec {
        cluster.group_link(&self.dp_group(stage, cp_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::rtx4090_cluster()
    }

    #[test]
    fn layout_arithmetic() {
        let l = ParallelLayout::new(8, 4, 2).unwrap();
        assert_eq!(l.num_workers(), 64);
        assert!(l.fits(&cluster()));
        assert!(ParallelLayout::new(0, 1, 1).is_none());
    }

    #[test]
    fn mapping_rejects_partial_fill() {
        let l = ParallelLayout::new(4, 4, 2).unwrap();
        assert!(RankMapping::new(l, &cluster()).is_err());
    }

    #[test]
    fn cp_groups_stay_intra_node_when_small() {
        let l = ParallelLayout::new(8, 4, 2).unwrap();
        let m = RankMapping::new(l, &cluster()).unwrap();
        // CP is innermost, so a CP group of 2 occupies adjacent local slots.
        let g = m.cp_group(0, 0);
        assert_eq!(g, vec![0, 1]);
        assert_eq!(m.cp_link(&cluster(), 0, 0).name, "PCIe 4.0 x16");
    }

    #[test]
    fn pp_boundaries_cross_nodes() {
        let l = ParallelLayout::new(8, 4, 2).unwrap();
        let m = RankMapping::new(l, &cluster()).unwrap();
        // dp*cp = 8 = gpus_per_node, so each stage owns one node and every
        // stage boundary is inter-node.
        assert_eq!(
            m.pp_link(&cluster(), 0, 0, 0).unwrap().name,
            "InfiniBand 100G"
        );
        assert_eq!(m.worst_pp_link(&cluster()).name, "InfiniBand 100G");
        assert!(m.pp_link(&cluster(), 7, 0, 0).is_none());
    }

    #[test]
    fn groups_are_disjoint_and_cover() {
        let l = ParallelLayout::new(4, 4, 4).unwrap();
        let m = RankMapping::new(l, &cluster()).unwrap();
        let mut seen = [false; 64];
        for s in 0..4 {
            for d in 0..4 {
                for r in m.cp_group(s, d) {
                    assert!(!seen[r], "rank {r} appears twice");
                    seen[r] = true;
                }
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn pp_group_orders_stages() {
        let l = ParallelLayout::new(8, 8, 1).unwrap();
        let m = RankMapping::new(l, &cluster()).unwrap();
        let g = m.pp_group(3, 0);
        assert_eq!(g.len(), 8);
        for (s, r) in g.iter().enumerate() {
            assert_eq!(*r, s * 8 + 3);
        }
    }
}
