//! Observability-plane properties: quantile estimates bound the true
//! sample quantiles, and the loopback HTTP exporter serves well-formed
//! Prometheus text and JSON status mid-run.

use std::time::Duration;

use proptest::prelude::*;

use mepipe_trace::metrics::{MetricsRegistry, ITERATION_BUCKETS};
use mepipe_trace::{http_get, HttpExporter};

/// Deterministic splitmix64 stream so failures reproduce from the seed.
fn samples_from_seed(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Span past the last finite bucket (60 s) so the clamp path is
        // exercised too.
        out.push(u * 80.0);
    }
    out
}

/// The bucket interval `(lower, upper]` of `ITERATION_BUCKETS` that
/// contains `v`, with 0.0 as the floor of the first bucket. `None` when
/// `v` lies beyond the last finite bucket.
fn bucket_interval(v: f64) -> Option<(f64, f64)> {
    let mut lower = 0.0;
    for &b in &ITERATION_BUCKETS {
        if v <= b {
            return Some((lower, b));
        }
        lower = b;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A bucket-interpolated quantile estimate can never leave the
    /// bucket holding the true sample quantile: for the rank the
    /// registry targets (`max(1, ceil(q n))`), the estimate and the
    /// sorted sample at that rank land in the same `(lower, upper]`
    /// interval, so the estimate is off by at most one bucket width.
    /// Samples beyond the last finite bucket clamp to its bound, which
    /// under-reports but never over-reports.
    #[test]
    fn quantile_estimate_bounds_true_sample_quantile(
        seed in 0u64..u64::MAX,
        n in 1usize..150,
        q in prop::sample::select(vec![0.5f64, 0.9, 0.99]),
    ) {
        let samples = samples_from_seed(seed, n);
        let mut reg = MetricsRegistry::new();
        for &v in &samples {
            reg.observe(
                "p_iteration_seconds",
                "test histogram",
                &[],
                &ITERATION_BUCKETS,
                v,
            );
        }
        let est = reg.quantile("p_iteration_seconds", &[], q).unwrap();

        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * n as f64).ceil() as usize).max(1);
        let truth = sorted[rank - 1];

        match bucket_interval(truth) {
            Some((lower, upper)) => {
                prop_assert!(
                    est >= lower && est <= upper,
                    "estimate {est} outside bucket ({lower}, {upper}] of true quantile {truth}"
                );
                prop_assert!(
                    (est - truth).abs() <= upper - lower,
                    "estimate {est} further than one bucket width from {truth}"
                );
            }
            None => {
                // True quantile beyond +Inf's neighbour: estimate clamps
                // to the last finite bound.
                let last = *ITERATION_BUCKETS.last().unwrap();
                prop_assert!(
                    (est - last).abs() < 1e-12 && est <= truth,
                    "clamped estimate {est} should equal {last} and lower-bound {truth}"
                );
            }
        }
    }
}

/// Splits a Prometheus sample line into (name, value-str), tolerating an
/// optional `{labels}` block. Returns `None` for malformed lines.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let (name_part, value) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}')?;
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let sp = line.find(' ')?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    Some((name_part, value))
}

fn assert_valid_name(name: &str) {
    assert!(!name.is_empty(), "empty metric name");
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    assert!(
        first.is_ascii_alphabetic() || first == '_' || first == ':',
        "bad metric name start in {name:?}"
    );
    assert!(
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name char in {name:?}"
    );
}

/// Asserts `text` conforms to the Prometheus 0.0.4 exposition grammar:
/// every line is a `# HELP`, a `# TYPE` with a known kind, or a sample
/// whose name is legal and whose value parses as a float.
fn assert_prometheus_grammar(text: &str) -> usize {
    let mut sample_lines = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            assert_valid_name(rest.split(' ').next().unwrap());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            assert_valid_name(it.next().unwrap());
            let kind = it.next().unwrap_or("");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "unknown TYPE {kind:?} in {line:?}"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment line {line:?}");
            let (name, value) = split_sample(line).unwrap_or_else(|| {
                panic!("malformed sample line {line:?}");
            });
            assert_valid_name(name);
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
                "bad sample value {value:?} in {line:?}"
            );
            sample_lines += 1;
        }
    }
    sample_lines
}

fn populated_registry(iter: u64) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let labels: &[(&str, String)] = &[("stage", "0".to_string())];
    reg.counter(
        "p_iterations_total",
        "iterations finished",
        labels,
        iter as f64,
    );
    reg.gauge("p_completed_iterations", "progress", labels, iter as f64);
    for k in 0..=iter {
        reg.observe(
            "p_iteration_seconds",
            "latency",
            labels,
            &ITERATION_BUCKETS,
            1e-3 * (k + 1) as f64,
        );
    }
    assert!(reg.lint_names().is_empty());
    reg
}

/// Loopback smoke: a background writer keeps republishing a growing
/// registry while the test scrapes `/metrics` (Prometheus 0.0.4
/// grammar), `/status` (valid JSON with the expected fields) and
/// `/healthz` — the "scrape a live run" contract, in-process.
#[test]
fn loopback_exporter_serves_metrics_and_status_mid_run() {
    let exporter = HttpExporter::spawn("127.0.0.1:0").expect("bind loopback exporter");
    let addr = exporter.addr().to_string();
    exporter.publish_metrics(populated_registry(0).to_prometheus_text());
    exporter.publish_status(r#"{"stage":0,"completed":0,"target":32}"#.to_string());

    let writer = std::thread::spawn(move || {
        for iter in 1..=32u64 {
            exporter.publish_metrics(populated_registry(iter).to_prometheus_text());
            exporter.publish_status(format!(
                "{{\"stage\":0,\"completed\":{iter},\"target\":32}}"
            ));
            std::thread::sleep(Duration::from_millis(2));
        }
        exporter
    });

    let timeout = Duration::from_secs(5);
    let (code, body) = http_get(&addr, "/healthz", timeout).expect("GET /healthz");
    assert_eq!(code, 200);
    assert_eq!(body.trim(), "ok");

    let mut last_completed = 0u64;
    for _ in 0..4 {
        let (code, metrics) = http_get(&addr, "/metrics", timeout).expect("GET /metrics");
        assert_eq!(code, 200);
        let samples = assert_prometheus_grammar(&metrics);
        assert!(samples > 3, "expected sample lines, got {samples}");
        assert!(metrics.contains("p_iterations_total"));
        assert!(metrics.contains("p_iteration_seconds_bucket"));

        let (code, status) = http_get(&addr, "/status", timeout).expect("GET /status");
        assert_eq!(code, 200);
        let v = serde_json::from_str(&status).expect("status is JSON");
        assert_eq!(v.get("stage").and_then(|s| s.as_u64()), Some(0));
        let completed = v.get("completed").and_then(|c| c.as_u64()).unwrap();
        assert!(completed >= last_completed, "progress went backwards");
        last_completed = completed;
        std::thread::sleep(Duration::from_millis(5));
    }

    let exporter = writer.join().expect("writer thread");
    let (code, _) = http_get(&addr, "/nope", timeout).expect("GET /nope");
    assert_eq!(code, 404);
    drop(exporter);
}
