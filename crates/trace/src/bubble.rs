//! Measured bubble attribution: where each stage's idle time went.
//!
//! The paper's Figures 11–12 argument is that MEPipe's schedule turns
//! idle time into useful weight-gradient work; making that argument on
//! the *measured* runtime requires splitting each stage's wall-clock
//! idle into causes. Given a stage's recorded spans this module buckets
//! every non-compute nanosecond of the iteration window into:
//!
//! * **warmup** — before the stage's first compute span (pipeline fill);
//! * **comm stall** — overlapped by a recorded send or recv-wait span
//!   (the stage was blocked on the interconnect with nothing drainable);
//! * **dependency** — a gap not explained by recorded comm (waiting on
//!   an upstream op, scheduler overhead, OS noise);
//! * **tail** — after the stage's last compute span until the slowest
//!   stage finished (pipeline drain).
//!
//! The buckets plus busy time sum to the analysis window by
//! construction, so the report reconciles exactly with the runtime's
//! per-stage busy/idle counters measured from the same clock.

use crate::span::{IterationTrace, Span, StageTrace};

/// Idle-time decomposition of one stage, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IdleBuckets {
    /// Idle before the first compute span.
    pub warmup: f64,
    /// Idle overlapped by send/recv-wait spans.
    pub comm_stall: f64,
    /// Idle inside the active window not explained by comm spans.
    pub dependency: f64,
    /// Idle after the last compute span, to the end of the window.
    pub tail: f64,
}

impl IdleBuckets {
    /// Total idle seconds.
    pub fn total(&self) -> f64 {
        self.warmup + self.comm_stall + self.dependency + self.tail
    }
}

/// One stage's measured activity breakdown, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBubble {
    /// Pipeline stage.
    pub stage: usize,
    /// Data-parallel replica.
    pub replica: usize,
    /// Total compute time (F/B/W plus drained wgrads).
    pub busy_s: f64,
    /// Of `busy_s`, time in opportunistically drained weight gradients —
    /// the stall time the runtime converted into work.
    pub drained_s: f64,
    /// Idle decomposition over the analysis window.
    pub idle: IdleBuckets,
}

impl StageBubble {
    /// Idle fraction of the window (`span` = busy + idle).
    pub fn bubble_ratio(&self) -> f64 {
        let span = self.busy_s + self.idle.total();
        if span <= 0.0 {
            0.0
        } else {
            self.idle.total() / span
        }
    }
}

/// Whole-iteration bubble attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleReport {
    /// One row per (replica, stage), in trace order.
    pub stages: Vec<StageBubble>,
    /// Analysis window, seconds: first compute start to last compute end
    /// across all stages of a replica (epoch-aligned).
    pub makespan_s: f64,
}

impl BubbleReport {
    /// Mean idle fraction across stages.
    pub fn bubble_ratio(&self) -> f64 {
        if self.stages.is_empty() {
            return 0.0;
        }
        self.stages
            .iter()
            .map(StageBubble::bubble_ratio)
            .sum::<f64>()
            / self.stages.len() as f64
    }

    /// Plain-text table for logs and EXPERIMENTS.md-style reports.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bubble attribution over {:.3} ms (mean idle {:.1}%)\n",
            self.makespan_s * 1e3,
            self.bubble_ratio() * 100.0
        );
        out.push_str(
            "  stage |   busy ms | drained ms | warmup ms |   comm ms |    dep ms |   tail ms | idle %\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  {:>5} | {:>9.3} | {:>10.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>5.1}%\n",
                s.stage,
                s.busy_s * 1e3,
                s.drained_s * 1e3,
                s.idle.warmup * 1e3,
                s.idle.comm_stall * 1e3,
                s.idle.dependency * 1e3,
                s.idle.tail * 1e3,
                s.bubble_ratio() * 100.0
            ));
        }
        out
    }
}

/// Overlap of `[a, b)` with span `s`, nanoseconds.
fn overlap_ns(a: u64, b: u64, s: &Span) -> u64 {
    let lo = a.max(s.start_ns);
    let hi = b.min(s.end_ns);
    hi.saturating_sub(lo)
}

fn attribute_stage(st: &StageTrace, shift: u64, window_end_ns: u64) -> StageBubble {
    let compute: Vec<&Span> = st.spans.iter().filter(|s| s.kind.is_compute()).collect();
    let comm: Vec<&Span> = st.spans.iter().filter(|s| s.kind.is_comm()).collect();
    let busy_ns: u64 = compute.iter().map(|s| s.duration_ns()).sum();
    let drained_ns: u64 = compute
        .iter()
        .filter(|s| s.kind == crate::SpanKind::WgradDrain)
        .map(|s| s.duration_ns())
        .sum();
    let mut idle = IdleBuckets::default();
    if let (Some(first), Some(last)) = (compute.first(), compute.last()) {
        idle.warmup = (first.start_ns + shift) as f64 * 1e-9;
        idle.tail = window_end_ns.saturating_sub(last.end_ns + shift) as f64 * 1e-9;
        // Gaps between consecutive compute spans, split comm vs dependency.
        for pair in compute.windows(2) {
            let (a, b) = (pair[0].end_ns, pair[1].start_ns);
            if b <= a {
                continue;
            }
            let comm_ns: u64 = comm.iter().map(|s| overlap_ns(a, b, s)).sum();
            let gap = b - a;
            let comm_ns = comm_ns.min(gap);
            idle.comm_stall += comm_ns as f64 * 1e-9;
            idle.dependency += (gap - comm_ns) as f64 * 1e-9;
        }
    } else {
        idle.dependency = window_end_ns as f64 * 1e-9;
    }
    StageBubble {
        stage: st.stage,
        replica: st.replica,
        busy_s: busy_ns as f64 * 1e-9,
        drained_s: drained_ns as f64 * 1e-9,
        idle,
    }
}

/// Attributes idle time across every stage of `trace`.
///
/// The analysis window runs from the earliest compute start to the
/// latest compute end over all stages (per the epoch-aligned time axis),
/// so warmup and tail measure pipeline fill/drain rather than process
/// startup.
pub fn attribute(trace: &IterationTrace) -> BubbleReport {
    let base_epoch = trace.stages.iter().map(|s| s.epoch_ns).min().unwrap_or(0);
    // Window: earliest compute start .. latest compute end (aligned ns).
    let mut start = u64::MAX;
    let mut end = 0u64;
    for st in &trace.stages {
        let shift = st.epoch_ns - base_epoch;
        for s in st.spans.iter().filter(|s| s.kind.is_compute()) {
            start = start.min(s.start_ns + shift);
            end = end.max(s.end_ns + shift);
        }
    }
    if start == u64::MAX {
        return BubbleReport {
            stages: Vec::new(),
            makespan_s: 0.0,
        };
    }
    let stages = trace
        .stages
        .iter()
        .map(|st| {
            // Re-base each stage so the window starts at 0.
            let shift = st.epoch_ns - base_epoch;
            let rebased = StageTrace {
                stage: st.stage,
                replica: st.replica,
                epoch_ns: st.epoch_ns,
                spans: st
                    .spans
                    .iter()
                    .map(|s| Span {
                        start_ns: (s.start_ns + shift).saturating_sub(start),
                        end_ns: (s.end_ns + shift).saturating_sub(start),
                        ..*s
                    })
                    .collect(),
                dropped: st.dropped,
            };
            attribute_stage(&rebased, 0, end - start)
        })
        .collect();
    BubbleReport {
        stages,
        makespan_s: (end - start) as f64 * 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, NO_TAG};

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            kind,
            mb: 0,
            slice: 0,
            chunk: 0,
            peer: if kind.is_comm() { 1 } else { NO_TAG },
            start_ns: start,
            end_ns: end,
        }
    }

    fn trace(stage_spans: Vec<Vec<Span>>) -> IterationTrace {
        IterationTrace {
            stages: stage_spans
                .into_iter()
                .enumerate()
                .map(|(stage, spans)| StageTrace {
                    stage,
                    replica: 0,
                    epoch_ns: 0,
                    spans,
                    dropped: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn buckets_sum_to_the_window() {
        // Stage 0: F[0,100], gap with comm [100,130], B[150,300].
        // Stage 1: F[50,100], then idle to the end (tail).
        let t = trace(vec![
            vec![
                span(SpanKind::Forward, 0, 100),
                span(SpanKind::RecvWait, 100, 130),
                span(SpanKind::Backward, 150, 300),
            ],
            vec![span(SpanKind::Forward, 50, 100)],
        ]);
        let r = attribute(&t);
        assert!((r.makespan_s - 300e-9).abs() < 1e-15);
        let s0 = &r.stages[0];
        assert!((s0.busy_s - 250e-9).abs() < 1e-15);
        assert!((s0.idle.comm_stall - 30e-9).abs() < 1e-15);
        assert!((s0.idle.dependency - 20e-9).abs() < 1e-15);
        assert_eq!(s0.idle.warmup, 0.0);
        assert_eq!(s0.idle.tail, 0.0);
        let s1 = &r.stages[1];
        assert!((s1.idle.warmup - 50e-9).abs() < 1e-15);
        assert!((s1.idle.tail - 200e-9).abs() < 1e-15);
        // Reconciliation: busy + idle == window, exactly, per stage.
        for s in &r.stages {
            assert!(
                (s.busy_s + s.idle.total() - r.makespan_s).abs() < 1e-12,
                "stage {} does not reconcile",
                s.stage
            );
        }
    }

    #[test]
    fn drained_work_counts_as_busy_and_is_reported() {
        let t = trace(vec![vec![
            span(SpanKind::Forward, 0, 100),
            span(SpanKind::WgradDrain, 100, 140),
            span(SpanKind::Backward, 140, 200),
        ]]);
        let r = attribute(&t);
        let s = &r.stages[0];
        assert!((s.busy_s - 200e-9).abs() < 1e-15);
        assert!((s.drained_s - 40e-9).abs() < 1e-15);
        assert_eq!(s.idle.total(), 0.0);
        assert_eq!(s.bubble_ratio(), 0.0);
    }

    #[test]
    fn comm_overlap_is_clamped_to_the_gap() {
        // A recv-wait span that extends past the gap (it ended inside the
        // next compute's start jitter) must not over-attribute.
        let t = trace(vec![vec![
            span(SpanKind::Forward, 0, 100),
            span(SpanKind::RecvWait, 90, 250),
            span(SpanKind::Backward, 200, 300),
        ]]);
        let r = attribute(&t);
        let s = &r.stages[0];
        assert!((s.idle.comm_stall - 100e-9).abs() < 1e-15);
        assert_eq!(s.idle.dependency, 0.0);
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = attribute(&IterationTrace::default());
        assert!(r.stages.is_empty());
        assert_eq!(r.bubble_ratio(), 0.0);
        assert_eq!(r.makespan_s, 0.0);
    }

    #[test]
    fn render_mentions_every_stage() {
        let t = trace(vec![
            vec![span(SpanKind::Forward, 0, 100)],
            vec![span(SpanKind::Forward, 100, 200)],
        ]);
        let s = attribute(&t).render();
        assert!(s.contains("stage"));
        assert!(s.lines().count() >= 4);
    }
}
