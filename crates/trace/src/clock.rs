//! Clock anchoring for cross-process trace alignment.
//!
//! Span timestamps are monotonic-clock offsets from a per-process
//! [`ClockAnchor`]. Monotonic clocks of different processes share no
//! origin, so each anchor also captures where it sits on the shared
//! wall clock (`CLOCK_REALTIME`): the merger shifts every process's
//! spans by its anchor's epoch offset, putting all of them on one time
//! axis. The epoch sample is taken with a bounded two-sided handshake
//! against the monotonic clock — sample epoch, sample monotonic, sample
//! epoch again, and anchor the monotonic instant at the midpoint of the
//! two epoch reads — so the alignment error is bounded by half the
//! read-read gap (tens of nanoseconds on one machine, far below the
//! microsecond resolution of the trace format).

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic instant pinned to the wall clock.
#[derive(Debug, Clone, Copy)]
pub struct ClockAnchor {
    /// The monotonic origin all span offsets are measured from.
    pub instant: Instant,
    /// Where the origin sits on the UNIX epoch, nanoseconds.
    pub epoch_ns: u64,
    /// Half the epoch read-read gap of the anchoring handshake — the
    /// bound on this anchor's alignment error, nanoseconds.
    pub uncertainty_ns: u64,
}

impl ClockAnchor {
    /// Anchors the current moment: monotonic instant plus its epoch
    /// position, with the two-sided read bounding the offset error.
    pub fn now() -> Self {
        let epoch_before = epoch_ns_now();
        let instant = Instant::now();
        let epoch_after = epoch_ns_now();
        Self {
            instant,
            epoch_ns: epoch_before + (epoch_after - epoch_before) / 2,
            uncertainty_ns: (epoch_after - epoch_before) / 2,
        }
    }

    /// Nanoseconds elapsed since the anchor.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.instant.elapsed().as_nanos() as u64
    }
}

fn epoch_ns_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before UNIX epoch")
        .as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_ordered_on_the_epoch_axis() {
        let a = ClockAnchor::now();
        let b = ClockAnchor::now();
        assert!(b.epoch_ns >= a.epoch_ns);
        // The handshake bound is tight on one machine.
        assert!(
            a.uncertainty_ns < 1_000_000,
            "epoch reads {} ns apart",
            a.uncertainty_ns * 2
        );
    }

    #[test]
    fn elapsed_advances() {
        let a = ClockAnchor::now();
        let t0 = a.elapsed_ns();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(a.elapsed_ns() >= t0);
    }
}
