//! A small metrics registry: counters, gauges and histograms with JSON
//! and Prometheus text exposition.
//!
//! The runtime's observability previously lived in three unrelated stat
//! structs (`RunStats`, `CommStats`, `ArenaStats`), each printed ad hoc
//! by whichever bench touched it. The registry gives them one schema:
//! callers register samples under Prometheus naming conventions
//! (`snake_case`, `_total` for counters, base units in the name) with
//! label sets, and the registry renders either exposition format. It is
//! a recording surface, not a server — scrape endpoints can be layered
//! on later without touching producers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::chrome::push_json_string;

/// Default histogram buckets for op/span durations, seconds.
pub const DURATION_BUCKETS: [f64; 10] = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0];

/// Histogram buckets for whole-iteration latencies, seconds — the
/// duration ladder extended upward, since an iteration of a real model
/// can run for minutes while a span never should.
pub const ITERATION_BUCKETS: [f64; 12] = [
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 60.0,
];

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(f64),
    Gauge(f64),
    Histogram {
        buckets: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct Family {
    help: String,
    kind: &'static str,
    // Samples keyed by their rendered label set (sorted, stable).
    samples: BTreeMap<String, Value>,
}

/// Label set: name/value pairs rendered in the given order.
pub type Labels<'a> = &'a [(&'a str, String)];

fn label_key(labels: Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// A registry of metric families.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                samples: BTreeMap::new(),
            })
    }

    /// Adds `v` to the counter `name{labels}` (creating it at 0).
    pub fn counter(&mut self, name: &str, help: &str, labels: Labels, v: f64) {
        let sample = self
            .family(name, help, "counter")
            .samples
            .entry(label_key(labels))
            .or_insert(Value::Counter(0.0));
        if let Value::Counter(c) = sample {
            *c += v;
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge(&mut self, name: &str, help: &str, labels: Labels, v: f64) {
        self.family(name, help, "gauge")
            .samples
            .insert(label_key(labels), Value::Gauge(v));
    }

    /// Observes `v` into the histogram `name{labels}` with `buckets`
    /// upper bounds (a `+Inf` bucket is implicit).
    pub fn observe(&mut self, name: &str, help: &str, labels: Labels, buckets: &[f64], v: f64) {
        let sample = self
            .family(name, help, "histogram")
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| Value::Histogram {
                buckets: buckets.to_vec(),
                counts: vec![0; buckets.len()],
                sum: 0.0,
                count: 0,
            });
        if let Value::Histogram {
            buckets,
            counts,
            sum,
            count,
        } = sample
        {
            for (b, c) in buckets.iter().zip(counts.iter_mut()) {
                if v <= *b {
                    *c += 1;
                }
            }
            *sum += v;
            *count += 1;
        }
    }

    /// Number of metric families registered.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The value of a counter/gauge sample, for tests and reconciliation.
    pub fn get(&self, name: &str, labels: Labels) -> Option<f64> {
        match self.families.get(name)?.samples.get(&label_key(labels))? {
            Value::Counter(v) | Value::Gauge(v) => Some(*v),
            Value::Histogram { sum, .. } => Some(*sum),
        }
    }

    /// Estimates the `q`-quantile (0..=1) of the histogram
    /// `name{labels}` by linear interpolation inside the bucket holding
    /// the target rank — the same estimate `histogram_quantile` makes
    /// server-side in Prometheus. Values above the last finite bucket
    /// clamp to that bucket's bound (their true position is unknowable
    /// from `+Inf` alone). Returns `None` for missing samples, empty
    /// histograms, or non-histogram metrics.
    pub fn quantile(&self, name: &str, labels: Labels, q: f64) -> Option<f64> {
        let sample = self.families.get(name)?.samples.get(&label_key(labels))?;
        let Value::Histogram {
            buckets,
            counts,
            count,
            ..
        } = sample
        else {
            return None;
        };
        if *count == 0 || buckets.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * *count as f64).ceil() as u64).max(1);
        let mut lower = 0.0;
        let mut below = 0u64;
        for (b, c) in buckets.iter().zip(counts) {
            // Counts are cumulative: `c` samples are <= `b`.
            if *c >= rank {
                let in_bucket = c - below;
                let frac = (rank - below) as f64 / in_bucket as f64;
                return Some(lower + (b - lower) * frac);
            }
            lower = *b;
            below = *c;
        }
        buckets.last().copied()
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            for (labels, value) in &fam.samples {
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Value::Histogram {
                        buckets,
                        counts,
                        sum,
                        count,
                    } => {
                        // Bucket counts are recorded cumulatively (observe
                        // increments every bucket the value fits), matching
                        // the exposition format; close with +Inf/_sum/_count.
                        let inner = labels.trim_start_matches('{').trim_end_matches('}');
                        let sep = if inner.is_empty() { "" } else { "," };
                        for (b, c) in buckets.iter().zip(counts) {
                            let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"{b}\"}} {c}");
                        }
                        let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"+Inf\"}} {count}");
                        let _ = writeln!(out, "{name}_sum{labels} {sum}");
                        let _ = writeln!(out, "{name}_count{labels} {count}");
                    }
                }
            }
        }
        out
    }

    /// Lints every family name against Prometheus conventions: the
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar, and `_total` on counters
    /// (and on nothing else). Returns one message per violation; empty
    /// means conforming.
    pub fn lint_names(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (name, fam) in &self.families {
            let mut chars = name.chars();
            let head_ok = chars
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
            let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
            if !head_ok || !tail_ok {
                problems.push(format!(
                    "{name}: invalid Prometheus metric name (grammar [a-zA-Z_:][a-zA-Z0-9_:]*)"
                ));
                continue;
            }
            if fam.kind == "counter" && !name.ends_with("_total") {
                problems.push(format!("{name}: counter must end in _total"));
            }
            if fam.kind != "counter" && name.ends_with("_total") {
                problems.push(format!("{name}: _total suffix on a {}", fam.kind));
            }
        }
        problems
    }

    /// JSON exposition: an object keyed by family name, each with kind,
    /// help and a samples array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (fi, (name, fam)) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(":{\"type\":");
            push_json_string(&mut out, fam.kind);
            out.push_str(",\"help\":");
            push_json_string(&mut out, &fam.help);
            out.push_str(",\"samples\":[");
            for (si, (labels, value)) in fam.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":");
                push_json_string(&mut out, labels);
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = write!(out, ",\"value\":{v}}}");
                    }
                    Value::Histogram {
                        buckets,
                        counts,
                        sum,
                        count,
                    } => {
                        out.push_str(",\"buckets\":[");
                        for (i, (b, c)) in buckets.iter().zip(counts).enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "[{b},{c}]");
                        }
                        let _ = write!(out, "],\"sum\":{sum},\"count\":{count}}}");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_label(i: usize) -> [(&'static str, String); 1] {
        [("stage", i.to_string())]
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter("mepipe_tx_bytes_total", "bytes sent", &stage_label(0), 10.0);
        r.counter("mepipe_tx_bytes_total", "bytes sent", &stage_label(0), 5.0);
        r.gauge("mepipe_loss", "loss", &[], 2.0);
        r.gauge("mepipe_loss", "loss", &[], 1.5);
        assert_eq!(r.get("mepipe_tx_bytes_total", &stage_label(0)), Some(15.0));
        assert_eq!(r.get("mepipe_loss", &[]), Some(1.5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let mut r = MetricsRegistry::new();
        r.counter("a_total", "help a", &stage_label(1), 3.0);
        r.gauge("b", "help b", &[], 0.5);
        let text = r.to_prometheus_text();
        assert!(text.contains("# HELP a_total help a"));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{stage=\"1\"} 3"));
        assert!(text.contains("b 0.5"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf() {
        let mut r = MetricsRegistry::new();
        for v in [0.5, 1.5, 20.0] {
            r.observe("lat_seconds", "latency", &[], &[1.0, 10.0], v);
        }
        let text = r.to_prometheus_text();
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_sum 22"));
    }

    #[test]
    fn json_exposition_parses_and_round_trips_values() {
        let mut r = MetricsRegistry::new();
        r.counter("c_total", "a \"quoted\" help", &stage_label(0), 7.0);
        r.observe(
            "h_seconds",
            "hist",
            &stage_label(0),
            &DURATION_BUCKETS,
            0.002,
        );
        let v: serde_json::Value = serde_json::from_str(&r.to_json()).expect("valid JSON");
        assert_eq!(v["c_total"]["samples"][0]["value"].as_f64(), Some(7.0));
        assert_eq!(v["h_seconds"]["samples"][0]["count"].as_f64(), Some(1.0));
        assert_eq!(v["c_total"]["help"].as_str(), Some("a \"quoted\" help"));
    }

    #[test]
    fn quantiles_interpolate_within_the_rank_bucket() {
        let mut r = MetricsRegistry::new();
        // 10 samples: 4 land in (0,1], 4 in (1,10], 2 in (10, +Inf).
        for v in [0.2, 0.4, 0.6, 0.8, 2.0, 4.0, 6.0, 8.0, 20.0, 30.0] {
            r.observe("lat_seconds", "latency", &[], &[1.0, 10.0], v);
        }
        // p50 rank = 5 → second bucket, first of its 4 → 1 + 9/4.
        let p50 = r.quantile("lat_seconds", &[], 0.5).expect("p50");
        assert!((p50 - 3.25).abs() < 1e-9, "p50 = {p50}");
        // p99 rank = 10 → beyond the last finite bucket: clamp to 10.
        assert_eq!(r.quantile("lat_seconds", &[], 0.99), Some(10.0));
        // p0 clamps to rank 1 → interpolates inside the first bucket.
        let p0 = r.quantile("lat_seconds", &[], 0.0).expect("p0");
        assert!(p0 > 0.0 && p0 <= 1.0, "p0 = {p0}");
        // Non-histograms and missing samples yield None.
        r.gauge("g", "g", &[], 1.0);
        assert_eq!(r.quantile("g", &[], 0.5), None);
        assert_eq!(r.quantile("missing", &[], 0.5), None);
    }

    #[test]
    fn name_lint_catches_bad_names_and_suffixes() {
        let mut r = MetricsRegistry::new();
        r.counter("good_total", "ok", &[], 1.0);
        r.gauge("good_seconds", "ok", &[], 1.0);
        assert!(r.lint_names().is_empty(), "{:?}", r.lint_names());
        r.counter("bad_counter", "no _total", &[], 1.0);
        r.gauge("bad_gauge_total", "_total on a gauge", &[], 1.0);
        r.gauge("0bad", "leading digit", &[], 1.0);
        r.gauge("bad-dash", "dash", &[], 1.0);
        let problems = r.lint_names();
        assert_eq!(problems.len(), 4, "{problems:?}");
    }

    #[test]
    fn histogram_labels_merge_with_le() {
        let mut r = MetricsRegistry::new();
        r.observe("d_seconds", "d", &stage_label(2), &[1.0], 0.5);
        let text = r.to_prometheus_text();
        assert!(text.contains("d_seconds_bucket{stage=\"2\",le=\"1\"} 1"));
    }
}
