//! A small metrics registry: counters, gauges and histograms with JSON
//! and Prometheus text exposition.
//!
//! The runtime's observability previously lived in three unrelated stat
//! structs (`RunStats`, `CommStats`, `ArenaStats`), each printed ad hoc
//! by whichever bench touched it. The registry gives them one schema:
//! callers register samples under Prometheus naming conventions
//! (`snake_case`, `_total` for counters, base units in the name) with
//! label sets, and the registry renders either exposition format. It is
//! a recording surface, not a server — scrape endpoints can be layered
//! on later without touching producers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::chrome::push_json_string;

/// Default histogram buckets for op/span durations, seconds.
pub const DURATION_BUCKETS: [f64; 10] = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0];

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(f64),
    Gauge(f64),
    Histogram {
        buckets: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct Family {
    help: String,
    kind: &'static str,
    // Samples keyed by their rendered label set (sorted, stable).
    samples: BTreeMap<String, Value>,
}

/// Label set: name/value pairs rendered in the given order.
pub type Labels<'a> = &'a [(&'a str, String)];

fn label_key(labels: Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// A registry of metric families.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                samples: BTreeMap::new(),
            })
    }

    /// Adds `v` to the counter `name{labels}` (creating it at 0).
    pub fn counter(&mut self, name: &str, help: &str, labels: Labels, v: f64) {
        let sample = self
            .family(name, help, "counter")
            .samples
            .entry(label_key(labels))
            .or_insert(Value::Counter(0.0));
        if let Value::Counter(c) = sample {
            *c += v;
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn gauge(&mut self, name: &str, help: &str, labels: Labels, v: f64) {
        self.family(name, help, "gauge")
            .samples
            .insert(label_key(labels), Value::Gauge(v));
    }

    /// Observes `v` into the histogram `name{labels}` with `buckets`
    /// upper bounds (a `+Inf` bucket is implicit).
    pub fn observe(&mut self, name: &str, help: &str, labels: Labels, buckets: &[f64], v: f64) {
        let sample = self
            .family(name, help, "histogram")
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| Value::Histogram {
                buckets: buckets.to_vec(),
                counts: vec![0; buckets.len()],
                sum: 0.0,
                count: 0,
            });
        if let Value::Histogram {
            buckets,
            counts,
            sum,
            count,
        } = sample
        {
            for (b, c) in buckets.iter().zip(counts.iter_mut()) {
                if v <= *b {
                    *c += 1;
                }
            }
            *sum += v;
            *count += 1;
        }
    }

    /// Number of metric families registered.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// The value of a counter/gauge sample, for tests and reconciliation.
    pub fn get(&self, name: &str, labels: Labels) -> Option<f64> {
        match self.families.get(name)?.samples.get(&label_key(labels))? {
            Value::Counter(v) | Value::Gauge(v) => Some(*v),
            Value::Histogram { sum, .. } => Some(*sum),
        }
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
            for (labels, value) in &fam.samples {
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Value::Histogram {
                        buckets,
                        counts,
                        sum,
                        count,
                    } => {
                        // Bucket counts are recorded cumulatively (observe
                        // increments every bucket the value fits), matching
                        // the exposition format; close with +Inf/_sum/_count.
                        let inner = labels.trim_start_matches('{').trim_end_matches('}');
                        let sep = if inner.is_empty() { "" } else { "," };
                        for (b, c) in buckets.iter().zip(counts) {
                            let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"{b}\"}} {c}");
                        }
                        let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"+Inf\"}} {count}");
                        let _ = writeln!(out, "{name}_sum{labels} {sum}");
                        let _ = writeln!(out, "{name}_count{labels} {count}");
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: an object keyed by family name, each with kind,
    /// help and a samples array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (fi, (name, fam)) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(":{\"type\":");
            push_json_string(&mut out, fam.kind);
            out.push_str(",\"help\":");
            push_json_string(&mut out, &fam.help);
            out.push_str(",\"samples\":[");
            for (si, (labels, value)) in fam.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":");
                push_json_string(&mut out, labels);
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = write!(out, ",\"value\":{v}}}");
                    }
                    Value::Histogram {
                        buckets,
                        counts,
                        sum,
                        count,
                    } => {
                        out.push_str(",\"buckets\":[");
                        for (i, (b, c)) in buckets.iter().zip(counts).enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "[{b},{c}]");
                        }
                        let _ = write!(out, "],\"sum\":{sum},\"count\":{count}}}");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_label(i: usize) -> [(&'static str, String); 1] {
        [("stage", i.to_string())]
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter("mepipe_tx_bytes_total", "bytes sent", &stage_label(0), 10.0);
        r.counter("mepipe_tx_bytes_total", "bytes sent", &stage_label(0), 5.0);
        r.gauge("mepipe_loss", "loss", &[], 2.0);
        r.gauge("mepipe_loss", "loss", &[], 1.5);
        assert_eq!(r.get("mepipe_tx_bytes_total", &stage_label(0)), Some(15.0));
        assert_eq!(r.get("mepipe_loss", &[]), Some(1.5));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let mut r = MetricsRegistry::new();
        r.counter("a_total", "help a", &stage_label(1), 3.0);
        r.gauge("b", "help b", &[], 0.5);
        let text = r.to_prometheus_text();
        assert!(text.contains("# HELP a_total help a"));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{stage=\"1\"} 3"));
        assert!(text.contains("b 0.5"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf() {
        let mut r = MetricsRegistry::new();
        for v in [0.5, 1.5, 20.0] {
            r.observe("lat_seconds", "latency", &[], &[1.0, 10.0], v);
        }
        let text = r.to_prometheus_text();
        assert!(text.contains("lat_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_sum 22"));
    }

    #[test]
    fn json_exposition_parses_and_round_trips_values() {
        let mut r = MetricsRegistry::new();
        r.counter("c_total", "a \"quoted\" help", &stage_label(0), 7.0);
        r.observe(
            "h_seconds",
            "hist",
            &stage_label(0),
            &DURATION_BUCKETS,
            0.002,
        );
        let v: serde_json::Value = serde_json::from_str(&r.to_json()).expect("valid JSON");
        assert_eq!(v["c_total"]["samples"][0]["value"].as_f64(), Some(7.0));
        assert_eq!(v["h_seconds"]["samples"][0]["count"].as_f64(), Some(1.0));
        assert_eq!(v["c_total"]["help"].as_str(), Some("a \"quoted\" help"));
    }

    #[test]
    fn histogram_labels_merge_with_le() {
        let mut r = MetricsRegistry::new();
        r.observe("d_seconds", "d", &stage_label(2), &[1.0], 0.5);
        let text = r.to_prometheus_text();
        assert!(text.contains("d_seconds_bucket{stage=\"2\",le=\"1\"} 1"));
    }
}
