//! Straggler detection over per-stage iteration latencies.
//!
//! A pipeline moves at the speed of its slowest stage, and on the
//! commodity fleets MEPipe targets the slow stage is rarely slow by
//! design — it is a thermally-throttled card, a noisy neighbour, a
//! half-broken link. The detector watches the per-stage iteration
//! latency stream the runtime already measures (span-derived busy+idle
//! per stage per iteration) and flags any stage that stays above
//! `k ×` the across-stage median for several consecutive iterations.
//! Persistence matters: a single slow iteration is noise (page fault,
//! GC of the host, checkpoint write); a stage that is slow *every*
//! iteration is a straggler, and is exactly the process the control
//! plane's hang detector will eventually declare dead — this flag is
//! the early warning.

/// Default latency multiple over the stage median that counts a strike.
pub const DEFAULT_STRAGGLER_FACTOR: f64 = 1.5;

/// Default consecutive strikes before a stage is flagged.
pub const DEFAULT_STRAGGLER_ROUNDS: u32 = 3;

/// One flagged stage: how far above the median, for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerFlag {
    /// The persistently slow stage.
    pub stage: usize,
    /// This iteration's latency over the across-stage median.
    pub ratio: f64,
    /// Consecutive iterations the stage has been over threshold.
    pub rounds: u32,
}

/// Persistence-gated straggler detector.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    factor: f64,
    min_rounds: u32,
    strikes: Vec<u32>,
}

impl Default for StragglerDetector {
    fn default() -> Self {
        Self::new(DEFAULT_STRAGGLER_FACTOR, DEFAULT_STRAGGLER_ROUNDS)
    }
}

impl StragglerDetector {
    /// A detector flagging stages > `factor` × median for `min_rounds`
    /// consecutive observations.
    pub fn new(factor: f64, min_rounds: u32) -> Self {
        StragglerDetector {
            factor: factor.max(1.0),
            min_rounds: min_rounds.max(1),
            strikes: Vec::new(),
        }
    }

    /// Feeds one iteration's per-stage latencies; returns the stages
    /// currently flagged (strike count already at the persistence bar).
    pub fn observe(&mut self, per_stage_seconds: &[f64]) -> Vec<StragglerFlag> {
        if self.strikes.len() != per_stage_seconds.len() {
            // Stage count changed (re-shard): restart the persistence count.
            self.strikes = vec![0; per_stage_seconds.len()];
        }
        let median = median(per_stage_seconds);
        if median.is_nan() || median <= 0.0 {
            for s in &mut self.strikes {
                *s = 0;
            }
            return Vec::new();
        }
        let mut flags = Vec::new();
        for (stage, (&lat, strikes)) in per_stage_seconds
            .iter()
            .zip(self.strikes.iter_mut())
            .enumerate()
        {
            let ratio = lat / median;
            if ratio > self.factor {
                *strikes += 1;
                if *strikes >= self.min_rounds {
                    flags.push(StragglerFlag {
                        stage,
                        ratio,
                        rounds: *strikes,
                    });
                }
            } else {
                *strikes = 0;
            }
        }
        flags
    }

    /// Current consecutive-strike count per stage.
    pub fn strikes(&self) -> &[u32] {
        &self.strikes
    }
}

/// Median of a slice (average of the middle two for even lengths);
/// 0.0 for an empty slice.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_slow_iteration_is_not_a_straggler() {
        let mut d = StragglerDetector::new(1.5, 3);
        assert!(d.observe(&[1.0, 1.0, 5.0, 1.0]).is_empty());
        assert!(d.observe(&[1.0, 1.0, 1.0, 1.0]).is_empty());
        assert_eq!(d.strikes(), &[0, 0, 0, 0]);
    }

    #[test]
    fn persistent_slowness_is_flagged_with_ratio() {
        let mut d = StragglerDetector::new(1.5, 3);
        assert!(d.observe(&[1.0, 1.0, 4.0, 1.0]).is_empty());
        assert!(d.observe(&[1.0, 1.0, 4.0, 1.0]).is_empty());
        let flags = d.observe(&[1.0, 1.0, 4.0, 1.0]);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].stage, 2);
        assert_eq!(flags[0].rounds, 3);
        assert!((flags[0].ratio - 4.0).abs() < 1e-9);
        // Stays flagged while slow, unflags the moment it recovers.
        assert_eq!(d.observe(&[1.0, 1.0, 4.0, 1.0]).len(), 1);
        assert!(d.observe(&[1.0, 1.0, 1.0, 1.0]).is_empty());
    }

    #[test]
    fn reshard_resets_persistence() {
        let mut d = StragglerDetector::new(1.5, 2);
        d.observe(&[1.0, 1.0, 4.0, 1.0]);
        assert_eq!(d.strikes().len(), 4);
        assert_eq!(d.strikes()[2], 1);
        // A stage-count change (live re-shard) restarts every count.
        d.observe(&[1.0, 1.0]);
        assert_eq!(d.strikes(), &[0, 0]);
    }

    #[test]
    fn all_equal_latencies_never_flag() {
        let mut d = StragglerDetector::default();
        for _ in 0..10 {
            assert!(d.observe(&[2.0, 2.0, 2.0]).is_empty());
        }
    }

    #[test]
    fn zero_median_is_a_no_op() {
        let mut d = StragglerDetector::new(1.5, 1);
        assert!(d.observe(&[0.0, 0.0]).is_empty());
        assert!(d.observe(&[]).is_empty());
    }
}
