//! Dependency-free HTTP/1.1 exporter for live metrics and status.
//!
//! Observability so far has been post-hoc files — `metrics.prom`,
//! `metrics.json`, merged Chrome traces — written after a run ends. A
//! long-running control plane needs the *live* view: this module serves
//! it over plain `std::net::TcpListener`, no HTTP library, because the
//! protocol surface we need (GET, three routes, `Connection: close`) is
//! ~40 lines.
//!
//! Two integration shapes, matching the two runtime architectures:
//!
//! * [`HttpServer`] — a non-blocking listener polled from a
//!   single-threaded loop. `mepipe-ctl serve` calls
//!   [`HttpServer::poll`] once per scheduler tick, so the daemon's
//!   no-locking design is preserved: responses are rendered from daemon
//!   state between ticks, never concurrently with it.
//! * [`HttpExporter`] — a background thread wrapping an `HttpServer`
//!   around a mutex-held [`ObsSnapshot`]. The worker's driver thread
//!   *publishes* fresh snapshots after each iteration; the exporter
//!   thread only ever reads them, so scrapes cannot perturb (or be
//!   blocked by) the compute path beyond one mutex swap.
//!
//! Routes: `/metrics` (Prometheus text 0.0.4), `/status` (JSON),
//! `/healthz`. [`http_get`] is the matching client — check.sh smokes
//! use it through `mepipe-worker http-get` so CI needs no curl.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One HTTP response: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 503).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A 200 with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type,
            body,
        }
    }

    /// A 404 with a plain-text body.
    pub fn not_found() -> Self {
        HttpResponse {
            status: 404,
            content_type: "text/plain",
            body: "not found\n".to_string(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())
    }
}

/// The state an exporter serves: pre-rendered documents, swapped in
/// whole so a scrape never observes a half-updated view.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Prometheus text exposition served at `/metrics`.
    pub metrics_text: String,
    /// JSON document served at `/status`.
    pub status_json: String,
    /// `/healthz` verdict: `true` serves 200 "ok", `false` a 503.
    pub healthy: bool,
}

/// Routes one of the three well-known paths against a snapshot.
pub fn route_obs(snapshot: &ObsSnapshot, path: &str) -> HttpResponse {
    match path {
        "/metrics" => HttpResponse::ok("text/plain; version=0.0.4", snapshot.metrics_text.clone()),
        "/status" => HttpResponse::ok("application/json", snapshot.status_json.clone()),
        "/healthz" => {
            if snapshot.healthy {
                HttpResponse::ok("text/plain", "ok\n".to_string())
            } else {
                HttpResponse {
                    status: 503,
                    content_type: "text/plain",
                    body: "unhealthy\n".to_string(),
                }
            }
        }
        _ => HttpResponse::not_found(),
    }
}

/// Reads the request head off `stream` and returns the GET path, or
/// `None` for anything malformed (the connection is just dropped —
/// a scraper that can't say `GET /path HTTP/1.x` gets no reply).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    // Read until the blank line ending the header block (or 8 KiB).
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    (method == "GET").then(|| path.to_string())
}

/// A non-blocking HTTP listener meant to be polled from a
/// single-threaded loop.
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` to let the OS pick a port) and
    /// switches the listener to non-blocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates bind/configure failures.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(HttpServer { listener })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves every connection currently pending, routing each GET path
    /// through `respond`. Returns how many requests were answered.
    /// Never blocks beyond the per-connection read timeout.
    pub fn poll<F: FnMut(&str) -> HttpResponse>(&self, mut respond: F) -> usize {
        let mut served = 0;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    if let Some(path) = read_request_path(&mut stream) {
                        let _ = respond(&path).write_to(&mut stream);
                        served += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        served
    }
}

/// A background-thread exporter serving published [`ObsSnapshot`]s.
#[derive(Debug)]
pub struct HttpExporter {
    state: Arc<Mutex<ObsSnapshot>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpExporter {
    /// Binds `addr` and spawns the serving thread. The exporter starts
    /// healthy with empty documents; publish real ones as they exist.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str) -> std::io::Result<Self> {
        let server = HttpServer::bind(addr)?;
        let addr = server.local_addr()?;
        let state = Arc::new(Mutex::new(ObsSnapshot {
            healthy: true,
            ..ObsSnapshot::default()
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_state = Arc::clone(&state);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                let served = server.poll(|path| {
                    let snap = thread_state.lock().expect("exporter state poisoned");
                    route_obs(&snap, path)
                });
                if served == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        });
        Ok(HttpExporter {
            state,
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address scrapers should hit.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the `/metrics` document.
    pub fn publish_metrics(&self, text: String) {
        self.state
            .lock()
            .expect("exporter state poisoned")
            .metrics_text = text;
    }

    /// Replaces the `/status` document.
    pub fn publish_status(&self, json: String) {
        self.state
            .lock()
            .expect("exporter state poisoned")
            .status_json = json;
    }

    /// Flips the `/healthz` verdict.
    pub fn set_healthy(&self, healthy: bool) {
        self.state.lock().expect("exporter state poisoned").healthy = healthy;
    }
}

impl Drop for HttpExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Minimal HTTP GET client: returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read failures and malformed responses.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock_addr: SocketAddr = addr.parse().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr}: {e}"))
    })?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let header_end = text.find("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, text[header_end + 4..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exporter_serves_all_three_routes() {
        let exporter = HttpExporter::spawn("127.0.0.1:0").expect("bind loopback");
        exporter.publish_metrics("# HELP a_total a\n# TYPE a_total counter\na_total 1\n".into());
        exporter.publish_status("{\"jobs\":[]}".into());
        let addr = exporter.addr().to_string();
        let t = Duration::from_secs(5);
        let (code, body) = http_get(&addr, "/metrics", t).expect("GET /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("a_total 1"));
        let (code, body) = http_get(&addr, "/status", t).expect("GET /status");
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert!(v["jobs"].as_array().is_some());
        let (code, body) = http_get(&addr, "/healthz", t).expect("GET /healthz");
        assert_eq!(code, 200);
        assert_eq!(body, "ok\n");
        let (code, _) = http_get(&addr, "/nope", t).expect("GET 404");
        assert_eq!(code, 404);
    }

    #[test]
    fn unhealthy_exporter_serves_503() {
        let exporter = HttpExporter::spawn("127.0.0.1:0").expect("bind loopback");
        exporter.set_healthy(false);
        let (code, _) = http_get(
            &exporter.addr().to_string(),
            "/healthz",
            Duration::from_secs(5),
        )
        .expect("GET /healthz");
        assert_eq!(code, 503);
    }

    #[test]
    fn polled_server_answers_between_polls() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr().expect("addr").to_string();
        let client = std::thread::spawn(move || {
            http_get(&addr, "/status", Duration::from_secs(5)).expect("GET /status")
        });
        // Poll until the request lands (the client retries nothing; the
        // listener queues the connection, so one poll after connect wins).
        let mut served = 0;
        for _ in 0..500 {
            served += server.poll(|path| {
                assert_eq!(path, "/status");
                HttpResponse::ok("application/json", "{}".to_string())
            });
            if served > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(served, 1);
        let (code, body) = client.join().expect("client thread");
        assert_eq!(code, 200);
        assert_eq!(body, "{}");
    }
}
