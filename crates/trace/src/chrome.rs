//! Shared Chrome/Perfetto Trace Event writer.
//!
//! Both the simulator's predicted timelines (`mepipe-sim`) and the
//! runtime's measured ones serialise through this writer, so the two
//! sides render identically in `chrome://tracing` / Perfetto and can be
//! loaded side by side. The writer emits the Trace Event Format's JSON
//! array form: complete (`"X"`) events for intervals, counter (`"C"`)
//! events for running totals, and metadata (`"M"`) events naming process
//! and thread tracks. All strings pass through JSON escaping — event
//! names are data, not trusted literals.

use crate::span::IterationTrace;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

/// Incremental builder for a Trace Event Format JSON array.
#[derive(Debug, Default)]
pub struct ChromeTraceWriter {
    out: String,
    any: bool,
}

impl ChromeTraceWriter {
    /// An empty trace.
    pub fn new() -> Self {
        Self {
            out: String::from("["),
            any: false,
        }
    }

    fn sep(&mut self) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
    }

    /// A complete (`"X"`) event: one interval on track (`pid`, `tid`).
    /// Times are microseconds, as the format requires.
    pub fn complete(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) {
        self.sep();
        self.out.push_str("{\"name\":");
        push_json_string(&mut self.out, name);
        self.out.push_str(",\"cat\":");
        push_json_string(&mut self.out, cat);
        self.out.push_str(&format!(
            ",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}}}"
        ));
    }

    /// A counter (`"C"`) event: named series values at one timestamp.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, series: &[(&str, f64)]) {
        self.sep();
        self.out.push_str("{\"name\":");
        push_json_string(&mut self.out, name);
        self.out.push_str(&format!(
            ",\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts_us:.3},\"args\":{{"
        ));
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            push_json_string(&mut self.out, k);
            self.out.push_str(&format!(":{v}"));
        }
        self.out.push_str("}}");
    }

    /// A `process_name` metadata event labelling `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata("process_name", pid, None, name);
    }

    /// A `thread_name` metadata event labelling (`pid`, `tid`).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, Some(tid), name);
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: Option<u64>, name: &str) {
        self.sep();
        self.out.push_str("{\"name\":");
        push_json_string(&mut self.out, kind);
        self.out.push_str(&format!(",\"ph\":\"M\",\"pid\":{pid}"));
        if let Some(tid) = tid {
            self.out.push_str(&format!(",\"tid\":{tid}"));
        }
        self.out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut self.out, name);
        self.out.push_str("}}");
    }

    /// Closes the array and returns the JSON string.
    pub fn finish(mut self) -> String {
        self.out.push(']');
        self.out
    }
}

/// How measured stage traces map to Perfetto process tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PidKey {
    /// One process track per data-parallel replica (in-process runs):
    /// stages are threads of their replica.
    Replica,
    /// One process track per stage (merged multi-process runs): each
    /// stage really was its own OS process.
    Stage,
}

/// Serialises measured stage traces as a Chrome trace.
///
/// Traces from different processes are aligned onto one time axis by
/// their [`ClockAnchor`](crate::ClockAnchor) epochs: the earliest anchor
/// becomes t = 0 and every other trace is shifted by its epoch delta.
/// Comm spans (send / recv-wait) land on a separate sub-track
/// (`tid + 1000`) so waits render under the compute row they explain.
pub fn traces_to_chrome(trace: &IterationTrace, key: PidKey) -> String {
    let mut w = ChromeTraceWriter::new();
    let base_epoch = trace.stages.iter().map(|s| s.epoch_ns).min().unwrap_or(0);
    let mut named_pids: Vec<u64> = Vec::new();
    for st in &trace.stages {
        let pid = match key {
            PidKey::Replica => st.replica as u64,
            PidKey::Stage => st.stage as u64,
        };
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let pname = match key {
                PidKey::Replica => format!("replica {}", st.replica),
                PidKey::Stage => format!("stage {} (process)", st.stage),
            };
            w.process_name(pid, &pname);
        }
        let tid = st.stage as u64;
        w.thread_name(pid, tid, &format!("stage {} compute", st.stage));
        w.thread_name(pid, tid + 1000, &format!("stage {} comm", st.stage));
        let shift = st.epoch_ns - base_epoch;
        for s in &st.spans {
            let track = if s.kind.is_comm() { tid + 1000 } else { tid };
            w.complete(
                &s.label(),
                s.kind.name(),
                pid,
                track,
                (s.start_ns + shift) as f64 * 1e-3,
                s.duration_ns() as f64 * 1e-3,
            );
        }
    }
    w.finish()
}

/// Convenience for per-op accounting: spans grouped `(stage, kind)` with
/// total seconds, across all replicas.
pub fn busy_seconds_by_kind(trace: &IterationTrace) -> Vec<((usize, crate::SpanKind), f64)> {
    let mut acc: Vec<((usize, crate::SpanKind), f64)> = Vec::new();
    for st in &trace.stages {
        for s in &st.spans {
            let key = (st.stage, s.kind);
            match acc.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += s.duration_ns() as f64 * 1e-9,
                None => acc.push((key, s.duration_ns() as f64 * 1e-9)),
            }
        }
    }
    acc
}

/// Lookup helper used by merge validation: the distinct (pid, tid)
/// compute tracks a serialised trace would contain.
pub fn compute_tracks(trace: &IterationTrace, key: PidKey) -> Vec<(u64, u64)> {
    let mut tracks = Vec::new();
    for st in &trace.stages {
        let pid = match key {
            PidKey::Replica => st.replica as u64,
            PidKey::Stage => st.stage as u64,
        };
        let t = (pid, st.stage as u64);
        if !tracks.contains(&t) {
            tracks.push(t);
        }
    }
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanKind, StageTrace, NO_TAG};

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            kind,
            mb: 0,
            slice: 0,
            chunk: 0,
            peer: NO_TAG,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let mut w = ChromeTraceWriter::new();
        w.complete("evil \"name\"\\\n\u{1}", "cat", 0, 0, 0.0, 1.0);
        let json = w.finish();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v[0]["name"].as_str().unwrap(), "evil \"name\"\\\n\u{1}");
    }

    #[test]
    fn counter_and_metadata_events_parse() {
        let mut w = ChromeTraceWriter::new();
        w.process_name(3, "replica 3");
        w.thread_name(3, 1, "stage 1");
        w.counter("arena", 3, 10.0, &[("hits", 5.0), ("misses", 1.0)]);
        let v: serde_json::Value = serde_json::from_str(&w.finish()).unwrap();
        assert_eq!(v[0]["ph"].as_str().unwrap(), "M");
        assert_eq!(v[2]["args"]["hits"].as_f64().unwrap(), 5.0);
    }

    #[test]
    fn cross_process_traces_align_on_epochs() {
        let t = IterationTrace {
            stages: vec![
                StageTrace {
                    stage: 0,
                    replica: 0,
                    epoch_ns: 1_000,
                    spans: vec![span(SpanKind::Forward, 0, 500)],
                    dropped: 0,
                },
                StageTrace {
                    stage: 1,
                    replica: 0,
                    epoch_ns: 1_500,
                    spans: vec![span(SpanKind::Forward, 0, 500)],
                    dropped: 0,
                },
            ],
        };
        let v: serde_json::Value =
            serde_json::from_str(&traces_to_chrome(&t, PidKey::Stage)).unwrap();
        let events = v.as_array().unwrap();
        // Stage 1's span is shifted by its 500 ns anchor delta.
        let xs: Vec<(u64, f64)> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| (e["pid"].as_u64().unwrap(), e["ts"].as_f64().unwrap()))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0], (0, 0.0));
        assert_eq!(xs[1].0, 1);
        assert!((xs[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn replicas_get_distinct_pids() {
        let mk = |replica| StageTrace {
            stage: 0,
            replica,
            epoch_ns: 0,
            spans: vec![span(SpanKind::Forward, 0, 10)],
            dropped: 0,
        };
        let t = IterationTrace {
            stages: vec![mk(0), mk(1)],
        };
        let tracks = compute_tracks(&t, PidKey::Replica);
        assert_eq!(tracks, vec![(0, 0), (1, 0)]);
        let v: serde_json::Value =
            serde_json::from_str(&traces_to_chrome(&t, PidKey::Replica)).unwrap();
        let pids: std::collections::BTreeSet<u64> = v
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| e["pid"].as_u64().unwrap())
            .collect();
        assert_eq!(pids.len(), 2);
    }

    #[test]
    fn comm_spans_land_on_the_comm_subtrack() {
        let t = IterationTrace {
            stages: vec![StageTrace {
                stage: 2,
                replica: 0,
                epoch_ns: 0,
                spans: vec![
                    span(SpanKind::Forward, 0, 10),
                    Span {
                        kind: SpanKind::RecvWait,
                        mb: NO_TAG,
                        slice: NO_TAG,
                        chunk: NO_TAG,
                        peer: 1,
                        start_ns: 10,
                        end_ns: 20,
                    },
                ],
                dropped: 0,
            }],
        };
        let v: serde_json::Value =
            serde_json::from_str(&traces_to_chrome(&t, PidKey::Replica)).unwrap();
        let tids: Vec<u64> = v
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![2, 1002]);
    }
}
