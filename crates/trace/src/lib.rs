//! `mepipe-trace`: measured-execution tracing for the real runtime.
//!
//! The simulator can already render the paper's timeline story (Figures
//! 11–12); this crate gives the *measured* side the same voice. Each
//! stage thread or process records [`Span`]s into a preallocated
//! per-stage ring buffer ([`StageTracer`]): compute spans tagged with op
//! kind, micro-batch, slice and chunk; send / receive-wait spans; and
//! opportunistic weight-gradient drains. On top of the raw spans:
//!
//! * [`chrome`] — a shared Chrome/Perfetto Trace Event writer with
//!   correct JSON string escaping, used by both `mepipe-sim`'s predicted
//!   timelines and the runtime's measured ones, so the two render side by
//!   side in one viewer. Multi-process traces merge through per-process
//!   [`ClockAnchor`]s (see [`clock`]).
//! * [`bubble`] — attribution of each stage's measured idle time into
//!   warmup / comm-stall / dependency / tail buckets, the runtime-side
//!   counterpart of `sim::timeline::stage_activity`.
//! * [`metrics`] — a small counter/gauge/histogram registry with JSON and
//!   Prometheus text exposition (plus bucket-interpolated quantile
//!   estimates), unifying the runtime's scattered stat structs behind
//!   one schema.
//! * [`event`] — a structured JSON-lines event log whose bounded ring
//!   doubles as a crash flight recorder ([`EventLog::dump_postmortem`]).
//! * [`http`] — a dependency-free HTTP/1.1 exporter serving `/metrics`,
//!   `/status` and `/healthz` live, either polled from a single-threaded
//!   loop ([`HttpServer`]) or on a background thread ([`HttpExporter`]).
//! * [`straggler`] — persistence-gated detection of stages running
//!   `k ×` above the stage median iteration latency.
//!
//! Tracing has three states: *statically off* (the `off` cargo feature
//! removes every record call at compile time), *runtime-disabled* (the
//! default — one predictable branch per record, no allocation), and
//! *enabled* (a clock read and a ring-buffer write per span; the `train`
//! bench measures and bounds the end-to-end overhead).
#![warn(missing_docs)]

pub mod bubble;
pub mod chrome;
pub mod clock;
pub mod dump;
pub mod event;
pub mod http;
pub mod metrics;
pub mod span;
pub mod straggler;

pub use bubble::{BubbleReport, IdleBuckets, StageBubble};
pub use chrome::{ChromeTraceWriter, PidKey};
pub use clock::ClockAnchor;
pub use event::{Event, EventLog, Level};
pub use http::{http_get, route_obs, HttpExporter, HttpResponse, HttpServer, ObsSnapshot};
pub use metrics::MetricsRegistry;
pub use span::{
    IterationTrace, Span, SpanKind, StageTrace, StageTracer, DEFAULT_RING_CAPACITY, NO_TAG,
};
pub use straggler::{
    StragglerDetector, StragglerFlag, DEFAULT_STRAGGLER_FACTOR, DEFAULT_STRAGGLER_ROUNDS,
};
