//! Structured JSON-lines event log with a bounded flight recorder.
//!
//! The control plane and the worker binaries used to narrate themselves
//! through ad-hoc `eprintln!` calls: unparseable, unlevelled, and gone
//! the moment the process dies. [`EventLog`] replaces them with one
//! schema — every event is a single JSON line carrying a monotonic
//! timestamp (plus its wall-clock position from the process's
//! [`ClockAnchor`], so multi-process logs merge on one axis), a level,
//! the emitting component, and optional job/stage tags — streamed to a
//! sink (stderr or a file) *and* retained in a bounded ring.
//!
//! The ring is the **flight recorder**: when something dies — a worker
//! process, a verification pass, a transport — the owner calls
//! [`EventLog::dump_postmortem`], which snapshots the last N events,
//! whatever spans are open, and an optional metrics-registry snapshot
//! into a postmortem JSON file. The crash artifact answers "what was it
//! doing right before?" without anyone having had to foresee the crash
//! and turn logging up.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;

use crate::chrome::push_json_string;
use crate::clock::ClockAnchor;
use crate::metrics::MetricsRegistry;

/// Default flight-recorder ring capacity (events retained for postmortems).
pub const DEFAULT_RECORDER_CAPACITY: usize = 512;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Chatty diagnostics, off by default.
    Debug,
    /// Normal lifecycle narration.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Lowercase name as it appears in the JSON `level` field.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured event: what happened, when, where.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic nanoseconds since the log's anchor.
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Job name this event concerns, if any.
    pub job: Option<String>,
    /// Pipeline stage this event concerns, if any.
    pub stage: Option<usize>,
    /// Human-readable message (data, not a format string).
    pub message: String,
    /// Extra key/value tags appended verbatim to the JSON object.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    /// `component` and `epoch_ns` come from the owning log so every
    /// line carries the process identity and wall-clock anchor.
    pub fn to_json(&self, component: &str, anchor_epoch_ns: u64) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"ts_ns\":{},\"epoch_ns\":{},\"level\":\"{}\",\"component\":",
            self.ts_ns,
            anchor_epoch_ns.saturating_add(self.ts_ns),
            self.level.name()
        );
        push_json_string(&mut out, component);
        if let Some(job) = &self.job {
            out.push_str(",\"job\":");
            push_json_string(&mut out, job);
        }
        if let Some(stage) = self.stage {
            let _ = write!(out, ",\"stage\":{stage}");
        }
        out.push_str(",\"msg\":");
        push_json_string(&mut out, &self.message);
        for (k, v) in &self.fields {
            out.push(',');
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// A leveled, ring-buffered JSON-lines event log.
///
/// Single-owner by design: the daemon mutates it between ticks, the
/// worker binary from its driver thread. (The HTTP exporter never reads
/// it — it serves snapshots published separately.)
pub struct EventLog {
    anchor: ClockAnchor,
    component: String,
    min_level: Level,
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    sink: Option<Box<dyn Write + Send>>,
    open_spans: Vec<String>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("component", &self.component)
            .field("min_level", &self.min_level)
            .field("ring_len", &self.ring.len())
            .field("dropped", &self.dropped)
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl EventLog {
    /// A log that streams JSON lines to stderr (the `eprintln!`
    /// replacement) while retaining the flight-recorder ring.
    pub fn stderr(component: &str) -> Self {
        Self::with_sink(component, Some(Box::new(std::io::stderr())))
    }

    /// A log that only retains the ring — for tests and embedded use.
    pub fn silent(component: &str) -> Self {
        Self::with_sink(component, None)
    }

    /// A log streaming to an arbitrary sink (e.g. an events.jsonl file).
    pub fn with_sink(component: &str, sink: Option<Box<dyn Write + Send>>) -> Self {
        EventLog {
            anchor: ClockAnchor::now(),
            component: component.to_string(),
            min_level: Level::Info,
            ring: VecDeque::with_capacity(DEFAULT_RECORDER_CAPACITY),
            capacity: DEFAULT_RECORDER_CAPACITY,
            dropped: 0,
            sink,
            open_spans: Vec::new(),
        }
    }

    /// Lowers or raises the level below which events are discarded.
    pub fn min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }

    /// Overrides the flight-recorder ring capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// The component tag every event from this log carries.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Records a fully-tagged event.
    pub fn event(
        &mut self,
        level: Level,
        job: Option<&str>,
        stage: Option<usize>,
        message: impl Into<String>,
        fields: &[(&str, String)],
    ) {
        if level < self.min_level {
            return;
        }
        let ev = Event {
            ts_ns: self.anchor.elapsed_ns(),
            level,
            job: job.map(str::to_string),
            stage,
            message: message.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if let Some(sink) = &mut self.sink {
            let _ = writeln!(
                sink,
                "{}",
                ev.to_json(&self.component, self.anchor.epoch_ns)
            );
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Untagged info event.
    pub fn info(&mut self, message: impl Into<String>) {
        self.event(Level::Info, None, None, message, &[]);
    }

    /// Untagged warning.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.event(Level::Warn, None, None, message, &[]);
    }

    /// Untagged error.
    pub fn error(&mut self, message: impl Into<String>) {
        self.event(Level::Error, None, None, message, &[]);
    }

    /// Marks a long-running operation as open; it appears in
    /// postmortems until [`EventLog::span_close`] pops it.
    pub fn span_open(&mut self, name: impl Into<String>) {
        self.open_spans.push(name.into());
    }

    /// Closes the most recently opened span.
    pub fn span_close(&mut self) {
        self.open_spans.pop();
    }

    /// Events currently retained in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// How many events the ring has discarded to stay bounded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the flight-recorder contents as one postmortem JSON
    /// document: the trigger reason, ring stats, open spans, the last N
    /// events, and an optional metrics snapshot.
    pub fn postmortem_json(&self, reason: &str, registry: Option<&MetricsRegistry>) -> String {
        let mut out = String::from("{\"reason\":");
        push_json_string(&mut out, reason);
        out.push_str(",\"component\":");
        push_json_string(&mut out, &self.component);
        let _ = write!(
            out,
            ",\"epoch_ns\":{},\"dropped\":{},\"open_spans\":[",
            self.anchor.epoch_ns, self.dropped
        );
        for (i, s) in self.open_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, s);
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ev.to_json(&self.component, self.anchor.epoch_ns));
        }
        out.push_str("],\"metrics\":");
        match registry {
            Some(reg) => out.push_str(&reg.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Dumps the flight recorder to `path` (written atomically via a
    /// sibling temp file, so a crash mid-dump never leaves a truncated
    /// postmortem).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing or renaming the file.
    pub fn dump_postmortem(
        &self,
        path: &Path,
        reason: &str,
        registry: Option<&MetricsRegistry>,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.postmortem_json(reason, registry))?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_lines_with_tags() {
        let mut log = EventLog::silent("ctl");
        log.event(
            Level::Warn,
            Some("job-a"),
            Some(2),
            "stage 2 exited with signal 6",
            &[("restarts", "1".to_string())],
        );
        let ev = log.events().next().expect("one event");
        let line = ev.to_json("ctl", 0);
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v["level"].as_str(), Some("warn"));
        assert_eq!(v["component"].as_str(), Some("ctl"));
        assert_eq!(v["job"].as_str(), Some("job-a"));
        assert_eq!(v["stage"].as_f64(), Some(2.0));
        assert_eq!(v["restarts"].as_str(), Some("1"));
        assert!(v["msg"].as_str().unwrap().contains("signal 6"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut log = EventLog::silent("worker").capacity(4);
        for i in 0..10 {
            log.info(format!("event {i}"));
        }
        assert_eq!(log.events().count(), 4);
        assert_eq!(log.dropped(), 6);
        assert_eq!(log.events().next().unwrap().message, "event 6");
    }

    #[test]
    fn min_level_filters() {
        let mut log = EventLog::silent("worker");
        log.event(Level::Debug, None, None, "chatty", &[]);
        log.info("kept");
        assert_eq!(log.events().count(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut log = EventLog::silent("worker");
        log.info("a");
        log.info("b");
        let ts: Vec<u64> = log.events().map(|e| e.ts_ns).collect();
        assert!(ts[1] >= ts[0]);
    }

    #[test]
    fn postmortem_includes_events_spans_and_metrics() {
        let mut log = EventLog::silent("worker");
        log.span_open("iteration 3");
        log.event(Level::Error, Some("j"), Some(1), "stage 1 died", &[]);
        let mut reg = MetricsRegistry::new();
        reg.counter("mepipe_test_total", "t", &[], 1.0);
        let doc = log.postmortem_json("chaos kill", Some(&reg));
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(v["reason"].as_str(), Some("chaos kill"));
        assert_eq!(v["open_spans"][0].as_str(), Some("iteration 3"));
        assert_eq!(v["events"][0]["msg"].as_str(), Some("stage 1 died"));
        assert!(v["metrics"]["mepipe_test_total"].as_object().is_some());
        log.span_close();
        let doc = log.postmortem_json("later", None);
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(v["open_spans"].as_array().unwrap().len(), 0);
        assert!(matches!(v["metrics"], serde_json::Value::Null));
    }

    #[test]
    fn dump_postmortem_writes_atomically() {
        let dir = std::env::temp_dir().join(format!("mepipe-obs-test-{}", std::process::id()));
        let path = dir.join("postmortem.json");
        let mut log = EventLog::silent("worker");
        log.error("boom");
        log.dump_postmortem(&path, "test", None).expect("dump");
        let text = std::fs::read_to_string(&path).expect("read back");
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v["reason"].as_str(), Some("test"));
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
