//! Line-oriented stage-trace dumps crossing process boundaries.
//!
//! A worker process records its [`StageTrace`] locally and dumps it as a
//! small text file; whoever launched it (the `mepipe-worker` launcher,
//! the `mepipe-ctl` control plane) reads the dumps back and merges them
//! onto one time axis via each trace's clock-anchor epoch. Text rather
//! than JSON so the dump path needs no serializer and the merge path
//! exercises the same epoch-alignment code the in-process writer uses.
//!
//! Format (`MEPIPE-STAGE-TRACE v1`): four header fields, then one
//! `span <letter> <mb> <slice> <chunk> <peer> <start_ns> <end_ns>` line
//! per span.

use std::path::Path;

use crate::span::{Span, SpanKind, StageTrace};

/// Header line identifying the dump format (bump on layout changes).
pub const DUMP_HEADER: &str = "MEPIPE-STAGE-TRACE v1";

/// Serialises one stage's trace to the dump text.
pub fn stage_trace_to_text(st: &StageTrace) -> String {
    let mut out = format!(
        "{DUMP_HEADER}\nstage {}\nreplica {}\nepoch_ns {}\ndropped {}\n",
        st.stage, st.replica, st.epoch_ns, st.dropped
    );
    for s in &st.spans {
        out.push_str(&format!(
            "span {} {} {} {} {} {} {}\n",
            s.kind.letter(),
            s.mb,
            s.slice,
            s.chunk,
            s.peer,
            s.start_ns,
            s.end_ns
        ));
    }
    out
}

/// Writes one stage's trace dump to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_stage_trace(path: &Path, st: &StageTrace) -> std::io::Result<()> {
    std::fs::write(path, stage_trace_to_text(st))
}

/// Parses a dump produced by [`stage_trace_to_text`].
///
/// # Errors
///
/// Returns a message naming the malformed line on any format violation.
pub fn stage_trace_from_text(text: &str) -> Result<StageTrace, String> {
    let mut lines = text.lines();
    if lines.next() != Some(DUMP_HEADER) {
        return Err(format!("bad trace dump header (expected {DUMP_HEADER:?})"));
    }
    let mut field = |name: &str| -> Result<u64, String> {
        let line = lines.next().ok_or_else(|| format!("missing {name} line"))?;
        line.strip_prefix(name)
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("bad {name} line: {line}"))
    };
    let stage = field("stage")? as usize;
    let replica = field("replica")? as usize;
    let epoch_ns = field("epoch_ns")?;
    let dropped = field("dropped")?;
    let spans = lines
        .map(|line| {
            let mut f = line.split_whitespace();
            if f.next() != Some("span") {
                return Err(format!("bad span line: {line}"));
            }
            let letter = f
                .next()
                .and_then(|s| s.chars().next())
                .ok_or_else(|| format!("span line missing kind: {line}"))?;
            let mut num = |what: &str| -> Result<u64, String> {
                f.next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| format!("span line missing {what}: {line}"))
            };
            Ok(Span {
                kind: SpanKind::from_letter(letter)
                    .ok_or_else(|| format!("unknown span letter {letter}"))?,
                mb: num("mb")? as u32,
                slice: num("slice")? as u32,
                chunk: num("chunk")? as u32,
                peer: num("peer")? as u32,
                start_ns: num("start_ns")?,
                end_ns: num("end_ns")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(StageTrace {
        stage,
        replica,
        epoch_ns,
        spans,
        dropped,
    })
}

/// Reads a stage-trace dump file written by [`write_stage_trace`].
///
/// # Errors
///
/// Returns a message for I/O failures or format violations.
pub fn read_stage_trace(path: &Path) -> Result<StageTrace, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read stage trace {}: {e}", path.display()))?;
    stage_trace_from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NO_TAG;

    fn sample() -> StageTrace {
        StageTrace {
            stage: 2,
            replica: 1,
            epoch_ns: 123_456_789,
            dropped: 3,
            spans: vec![
                Span {
                    kind: SpanKind::Forward,
                    mb: 0,
                    slice: 1,
                    chunk: 0,
                    peer: NO_TAG,
                    start_ns: 10,
                    end_ns: 20,
                },
                Span {
                    kind: SpanKind::Send,
                    mb: NO_TAG,
                    slice: NO_TAG,
                    chunk: NO_TAG,
                    peer: 3,
                    start_ns: 21,
                    end_ns: 22,
                },
            ],
        }
    }

    #[test]
    fn dump_round_trips() {
        let st = sample();
        let text = stage_trace_to_text(&st);
        let back = stage_trace_from_text(&text).unwrap();
        assert_eq!(back.stage, st.stage);
        assert_eq!(back.replica, st.replica);
        assert_eq!(back.epoch_ns, st.epoch_ns);
        assert_eq!(back.dropped, st.dropped);
        assert_eq!(back.spans, st.spans);
    }

    #[test]
    fn malformed_dumps_are_rejected_with_context() {
        assert!(stage_trace_from_text("").is_err());
        assert!(stage_trace_from_text("NOT-A-TRACE\n").is_err());
        let text = stage_trace_to_text(&sample());
        let missing_field = text.replace("epoch_ns 123456789\n", "");
        assert!(stage_trace_from_text(&missing_field).is_err());
        let bad_span = format!("{text}span ? broken\n");
        assert!(stage_trace_from_text(&bad_span).is_err());
    }
}
