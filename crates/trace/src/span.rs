//! Spans and the preallocated per-stage ring buffer that records them.

use crate::clock::ClockAnchor;

/// What a stage was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A forward pass.
    Forward,
    /// A fused backward pass (input + weight gradients).
    Backward,
    /// An input-gradient backward pass.
    BackwardInput,
    /// Weight-gradient GEMMs applied at their static list position.
    BackwardWeight,
    /// A weight-gradient GEMM drained into a wait gap or the final sweep.
    WgradDrain,
    /// Sending a boundary tensor (includes any flow-control stall).
    Send,
    /// Blocked in a transport receive with nothing else to do.
    RecvWait,
}

impl SpanKind {
    /// Whether the span is compute (counts as busy time).
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            SpanKind::Forward
                | SpanKind::Backward
                | SpanKind::BackwardInput
                | SpanKind::BackwardWeight
                | SpanKind::WgradDrain
        )
    }

    /// Whether the span is communication (send or receive wait).
    pub fn is_comm(self) -> bool {
        matches!(self, SpanKind::Send | SpanKind::RecvWait)
    }

    /// Stable lowercase name (trace categories, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::BackwardInput => "backward_input",
            SpanKind::BackwardWeight => "backward_weight",
            SpanKind::WgradDrain => "wgrad_drain",
            SpanKind::Send => "send",
            SpanKind::RecvWait => "recv_wait",
        }
    }

    /// Single-letter tag matching `sim::timeline::SegmentKind::letter`.
    pub fn letter(self) -> char {
        match self {
            SpanKind::Forward => 'F',
            SpanKind::Backward => 'B',
            SpanKind::BackwardInput => 'b',
            SpanKind::BackwardWeight => 'W',
            SpanKind::WgradDrain => 'w',
            SpanKind::Send => 's',
            SpanKind::RecvWait => 'r',
        }
    }

    /// Inverse of [`SpanKind::letter`] — used when traces round-trip
    /// through text files (per-process dumps merged by a launcher).
    pub fn from_letter(letter: char) -> Option<Self> {
        Some(match letter {
            'F' => SpanKind::Forward,
            'B' => SpanKind::Backward,
            'b' => SpanKind::BackwardInput,
            'W' => SpanKind::BackwardWeight,
            'w' => SpanKind::WgradDrain,
            's' => SpanKind::Send,
            'r' => SpanKind::RecvWait,
            _ => return None,
        })
    }
}

/// Sentinel for an absent tag component (`mb`/`slice`/`chunk`/`peer`).
pub const NO_TAG: u32 = u32::MAX;

/// One recorded interval on one stage. Timestamps are nanoseconds since
/// the recording process's [`ClockAnchor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Activity class.
    pub kind: SpanKind,
    /// Micro-batch index, or [`NO_TAG`].
    pub mb: u32,
    /// Sequence-slice index, or [`NO_TAG`].
    pub slice: u32,
    /// Local virtual-chunk index, or [`NO_TAG`].
    pub chunk: u32,
    /// Peer stage for comm spans, or [`NO_TAG`].
    pub peer: u32,
    /// Start offset from the anchor, nanoseconds.
    pub start_ns: u64,
    /// End offset from the anchor, nanoseconds.
    pub end_ns: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Display name: letter plus the op tag, e.g. `F mb1 sl0 ck0`.
    pub fn label(&self) -> String {
        if self.mb == NO_TAG {
            match self.kind {
                SpanKind::Send => format!("send -> {}", self.peer),
                SpanKind::RecvWait => "recv wait".to_string(),
                _ => format!("{} drain", self.kind.letter()),
            }
        } else {
            format!(
                "{} mb{} sl{} ck{}",
                self.kind.letter(),
                self.mb,
                self.slice,
                self.chunk
            )
        }
    }
}

/// The spans one stage recorded over one iteration, plus the anchor that
/// places them on the shared wall clock.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// Pipeline stage index.
    pub stage: usize,
    /// Data-parallel replica index (0 outside DP).
    pub replica: usize,
    /// Epoch position of offset 0, nanoseconds (from the recorder's
    /// [`ClockAnchor`]).
    pub epoch_ns: u64,
    /// Spans in chronological order.
    pub spans: Vec<Span>,
    /// Spans overwritten because the ring filled (oldest-first loss).
    pub dropped: u64,
}

impl StageTrace {
    /// Sum of compute span durations, nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind.is_compute())
            .map(Span::duration_ns)
            .sum()
    }
}

/// Every stage's trace for one measured iteration. Under data
/// parallelism the vector holds one entry per (replica, stage) pair;
/// merged multi-process runs concatenate one entry per worker process.
#[derive(Debug, Clone, Default)]
pub struct IterationTrace {
    /// Per-stage traces (all replicas).
    pub stages: Vec<StageTrace>,
}

/// Per-stage span recorder: a preallocated ring buffer behind an
/// enabled/disabled switch.
///
/// Disabled tracers allocate nothing and every record call is a single
/// predictable branch (or nothing at all with the crate's `off`
/// feature). Enabled tracers never allocate after construction: when the
/// ring fills, the oldest span is overwritten and counted in `dropped`.
#[derive(Debug)]
pub struct StageTracer {
    enabled: bool,
    stage: usize,
    replica: usize,
    anchor: ClockAnchor,
    spans: Vec<Span>,
    head: usize,
    dropped: u64,
}

/// Default ring capacity: comfortably above the span count of any
/// schedule this repo runs (ops + comm spans per stage per iteration),
/// ~1.5 MiB per stage when enabled.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 15;

impl StageTracer {
    /// A recorder that records nothing and allocates nothing.
    pub fn disabled(anchor: ClockAnchor) -> Self {
        Self {
            enabled: false,
            stage: 0,
            replica: 0,
            anchor,
            spans: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// An enabled recorder for `stage` with a preallocated ring of
    /// `capacity` spans, offsets measured from `anchor`.
    pub fn enabled(stage: usize, anchor: ClockAnchor, capacity: usize) -> Self {
        Self {
            enabled: true,
            stage,
            replica: 0,
            anchor,
            spans: Vec::with_capacity(capacity.max(1)),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether record calls store spans.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "off")]
        {
            false
        }
        #[cfg(not(feature = "off"))]
        {
            self.enabled
        }
    }

    /// Nanoseconds since the anchor — the timestamp source for both span
    /// recording and the runtime's busy/idle accounting (which stays on
    /// even when tracing is disabled).
    #[inline]
    pub fn clock_ns(&self) -> u64 {
        self.anchor.elapsed_ns()
    }

    /// The anchor spans are measured from.
    pub fn anchor(&self) -> ClockAnchor {
        self.anchor
    }

    /// Records a span ending now. No-op when disabled.
    #[inline]
    pub fn record(&mut self, kind: SpanKind, mb: u32, slice: u32, chunk: u32, start_ns: u64) {
        self.record_to(kind, mb, slice, chunk, NO_TAG, start_ns, self.clock_ns());
    }

    /// Records a comm span (send/recv-wait) ending now. No-op when
    /// disabled.
    #[inline]
    pub fn record_comm(&mut self, kind: SpanKind, peer: u32, start_ns: u64) {
        self.record_to(
            kind,
            NO_TAG,
            NO_TAG,
            NO_TAG,
            peer,
            start_ns,
            self.clock_ns(),
        );
    }

    /// Records a fully specified span. No-op when disabled; zero-length
    /// spans are skipped.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record_to(
        &mut self,
        kind: SpanKind,
        mb: u32,
        slice: u32,
        chunk: u32,
        peer: u32,
        start_ns: u64,
        end_ns: u64,
    ) {
        #[cfg(feature = "off")]
        {
            let _ = (kind, mb, slice, chunk, peer, start_ns, end_ns);
        }
        #[cfg(not(feature = "off"))]
        {
            if !self.enabled || end_ns <= start_ns {
                return;
            }
            let span = Span {
                kind,
                mb,
                slice,
                chunk,
                peer,
                start_ns,
                end_ns,
            };
            if self.spans.len() < self.spans.capacity() {
                self.spans.push(span);
            } else {
                // Ring full: overwrite the oldest.
                self.spans[self.head] = span;
                self.head = (self.head + 1) % self.spans.len();
                self.dropped += 1;
            }
        }
    }

    /// Tags every span this tracer emits with a replica index.
    pub fn set_replica(&mut self, replica: usize) {
        self.replica = replica;
    }

    /// Consumes the tracer into its chronological trace (`None` when
    /// disabled).
    pub fn finish(self) -> Option<StageTrace> {
        if !self.enabled {
            return None;
        }
        let mut spans = self.spans;
        // Un-rotate the ring so spans come out oldest-first.
        spans.rotate_left(self.head);
        Some(StageTrace {
            stage: self.stage,
            replica: self.replica,
            epoch_ns: self.anchor.epoch_ns,
            spans,
            dropped: self.dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(cap: usize) -> StageTracer {
        StageTracer::enabled(0, ClockAnchor::now(), cap)
    }

    #[test]
    fn disabled_records_nothing_and_allocates_nothing() {
        let mut t = StageTracer::disabled(ClockAnchor::now());
        assert!(!t.is_enabled());
        t.record(SpanKind::Forward, 0, 0, 0, 0);
        assert_eq!(t.spans.capacity(), 0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_come_out_in_order() {
        let mut t = tracer(8);
        for i in 0..3u32 {
            t.record_to(
                SpanKind::Forward,
                i,
                0,
                0,
                NO_TAG,
                u64::from(i) * 10,
                u64::from(i) * 10 + 5,
            );
        }
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.dropped, 0);
        assert!(trace
            .spans
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(trace.busy_ns(), 15);
    }

    #[test]
    fn full_ring_overwrites_oldest() {
        let mut t = tracer(4);
        for i in 0..10u64 {
            t.record_to(SpanKind::WgradDrain, 0, 0, 0, NO_TAG, i * 10, i * 10 + 1);
        }
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.dropped, 6);
        // The survivors are the newest four, oldest-first.
        let starts: Vec<u64> = trace.spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![60, 70, 80, 90]);
    }

    #[test]
    fn zero_length_spans_are_skipped() {
        let mut t = tracer(4);
        t.record_to(SpanKind::Send, 0, 0, 0, 1, 5, 5);
        assert!(t.finish().unwrap().spans.is_empty());
    }

    #[test]
    fn letters_round_trip() {
        for kind in [
            SpanKind::Forward,
            SpanKind::Backward,
            SpanKind::BackwardInput,
            SpanKind::BackwardWeight,
            SpanKind::WgradDrain,
            SpanKind::Send,
            SpanKind::RecvWait,
        ] {
            assert_eq!(SpanKind::from_letter(kind.letter()), Some(kind));
        }
        assert_eq!(SpanKind::from_letter('x'), None);
    }

    #[test]
    fn labels_render_tags_and_comm() {
        let s = Span {
            kind: SpanKind::Forward,
            mb: 1,
            slice: 2,
            chunk: 0,
            peer: NO_TAG,
            start_ns: 0,
            end_ns: 1,
        };
        assert_eq!(s.label(), "F mb1 sl2 ck0");
        let c = Span {
            kind: SpanKind::Send,
            mb: NO_TAG,
            slice: NO_TAG,
            chunk: NO_TAG,
            peer: 3,
            start_ns: 0,
            end_ns: 1,
        };
        assert_eq!(c.label(), "send -> 3");
    }
}
