//! Backend equivalence: the training runtime must produce bit-identical
//! results no matter which transport carries the boundary tensors.
//!
//! The pipeline's numerics are fully determined by the schedule and the
//! weights; the transport only moves bytes. So InProc (no serialization),
//! Socket (framed tensors over UDS between threads), and Emulated over a
//! zero-latency loopback (reliable stop-and-wait with acks) must all
//! yield the same loss bits and the same gradient bytes. Any divergence
//! means a transport corrupted, reordered, or dropped a tensor.

use proptest::prelude::*;

use mepipe_comm::{Backend, CodecId, FaultSpec, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_hw::LinkSpec;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_tensor::init::synthetic_tokens;
use mepipe_train::{params::ModelParams, PipelineRuntime, RunStats, WgradMode};

fn run_with(seed: u64, stages: usize, config: TransportConfig) -> (RunStats, PipelineRuntime) {
    let cfg = TransformerConfig {
        seq_len: 16,
        ..TransformerConfig::tiny(4)
    };
    let micro_batches = stages; // minimal full pipeline
    let schedule = Mepipe::new()
        .generate(&Dims::new(stages, micro_batches).slices(2))
        .unwrap();
    let batch: Vec<Vec<usize>> = (0..micro_batches)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed + i as u64))
        .collect();
    let rt = PipelineRuntime::new(ModelParams::init(cfg, seed), stages, 1).with_transport(config);
    let stats = rt
        .run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None)
        .expect("iteration");
    (stats, rt)
}

fn uds_dir(tag: &str, seed: u64, stages: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mepipe-eq-{tag}-{}-{seed}-{stages}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// InProc, Socket(UDS), and Emulated(zero-latency loopback) agree
    /// bit-for-bit on loss and gradients across seeds and stage counts.
    #[test]
    fn backends_are_bit_identical(seed in 1u64..1000, stages in prop::sample::select(vec![2usize, 4])) {
        let (inproc, _) = run_with(seed, stages, TransportConfig::in_proc());

        let dir = uds_dir("uds", seed, stages);
        let (socket, _) = run_with(seed, stages, TransportConfig {
            backend: Backend::Uds(dir.clone()),
            ..TransportConfig::default()
        });
        let _ = std::fs::remove_dir_all(&dir);

        let (emulated, _) = run_with(
            seed,
            stages,
            TransportConfig::in_proc().with_link(LinkSpec::loopback()),
        );

        prop_assert_eq!(inproc.loss.to_bits(), socket.loss.to_bits(), "socket loss differs");
        prop_assert_eq!(inproc.loss.to_bits(), emulated.loss.to_bits(), "emulated loss differs");
        prop_assert_eq!(inproc.grads.max_abs_diff(&socket.grads), 0.0, "socket grads differ");
        prop_assert_eq!(inproc.grads.max_abs_diff(&emulated.grads), 0.0, "emulated grads differ");

        // The socket run really did serialize tensors onto the wire.
        let socket_bytes: u64 = socket.comm.iter().map(|c| c.total().tx_bytes).sum();
        prop_assert!(socket_bytes > 0, "socket run moved no bytes");
    }

    /// Seeded fault injection (drops, corruption, delays) never changes
    /// the result — the reliable layer retries until delivery — and the
    /// counters prove faults actually fired.
    #[test]
    fn faults_recover_bit_identically(seed in 1u64..1000) {
        let stages = 2;
        let (clean, _) = run_with(seed, stages, TransportConfig::in_proc());
        let faults = FaultSpec {
            drop_first_n: 1,
            drop_permille: 100,
            corrupt_permille: 100,
            seed,
            ..FaultSpec::default()
        };
        let (faulted, _) = run_with(seed, stages, TransportConfig::in_proc().with_faults(faults));

        let totals = faulted
            .comm
            .iter()
            .map(|c| c.total())
            .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
        prop_assert!(totals.injected_drops >= 1, "no drops injected");
        prop_assert!(totals.retries >= totals.injected_drops, "drops were not retried");
        prop_assert_eq!(clean.loss.to_bits(), faulted.loss.to_bits(), "faulted loss differs");
        prop_assert_eq!(clean.grads.max_abs_diff(&faulted.grads), 0.0, "faulted grads differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Backend equivalence holds under every wire codec: the in-process
    /// backend applies lossy codecs as an encode/decode round trip, so
    /// InProc, Socket and Emulated still agree bit-for-bit even when
    /// the wire carries bf16. The socket run's codec counters prove the
    /// compression actually happened.
    #[test]
    fn backends_agree_under_every_codec(
        seed in 1u64..1000,
        codec in prop::sample::select(vec![CodecId::F32, CodecId::Bf16, CodecId::Lossy]),
    ) {
        let stages = 2;
        let (inproc, _) = run_with(seed, stages, TransportConfig::in_proc().with_codec(codec));

        let dir = uds_dir("codec", seed, stages);
        let (socket, _) = run_with(seed, stages, TransportConfig {
            backend: Backend::Uds(dir.clone()),
            ..TransportConfig::default()
        }.with_codec(codec));
        let _ = std::fs::remove_dir_all(&dir);

        let (emulated, _) = run_with(
            seed,
            stages,
            TransportConfig::in_proc().with_link(LinkSpec::loopback()).with_codec(codec),
        );

        prop_assert_eq!(inproc.loss.to_bits(), socket.loss.to_bits(), "socket loss differs");
        prop_assert_eq!(inproc.loss.to_bits(), emulated.loss.to_bits(), "emulated loss differs");
        prop_assert_eq!(inproc.grads.max_abs_diff(&socket.grads), 0.0, "socket grads differ");
        prop_assert_eq!(inproc.grads.max_abs_diff(&emulated.grads), 0.0, "emulated grads differ");

        let totals = socket
            .comm
            .iter()
            .map(|c| c.total())
            .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
        prop_assert!(totals.payload_bytes_precodec > 0, "no payload counted");
        if codec == CodecId::F32 {
            prop_assert_eq!(totals.payload_bytes_postcodec, totals.payload_bytes_precodec);
        } else {
            prop_assert!(
                totals.payload_bytes_postcodec < totals.payload_bytes_precodec,
                "lossy codec did not shrink the wire payload"
            );
        }
    }

    /// Fault recovery composes with codec frames: dropped/corrupted
    /// bf16 frames are retransmitted and the result still matches a
    /// clean run under the same codec, bit for bit.
    #[test]
    fn faults_recover_bit_identically_with_codec(seed in 1u64..1000) {
        let stages = 2;
        let codec = CodecId::Bf16;
        let (clean, _) = run_with(seed, stages, TransportConfig::in_proc().with_codec(codec));
        let faults = FaultSpec {
            drop_first_n: 1,
            drop_permille: 100,
            corrupt_permille: 100,
            seed,
            ..FaultSpec::default()
        };
        let (faulted, _) = run_with(
            seed,
            stages,
            TransportConfig::in_proc().with_faults(faults).with_codec(codec),
        );

        let totals = faulted
            .comm
            .iter()
            .map(|c| c.total())
            .fold(mepipe_comm::LinkStats::default(), |a, l| a.merged(&l));
        prop_assert!(totals.injected_drops >= 1, "no drops injected");
        prop_assert!(totals.retries >= totals.injected_drops, "drops were not retried");
        prop_assert!(
            totals.payload_bytes_postcodec < totals.payload_bytes_precodec,
            "bf16 frames did not shrink on the wire"
        );
        prop_assert_eq!(clean.loss.to_bits(), faulted.loss.to_bits(), "faulted loss differs");
        prop_assert_eq!(clean.grads.max_abs_diff(&faulted.grads), 0.0, "faulted grads differ");
    }
}

/// Deterministic (non-proptest) spot check that the TCP backend also
/// agrees, on one fixed scenario — kept out of the proptest loop to
/// avoid burning localhost ports.
#[test]
fn tcp_backend_matches_inproc_once() {
    let (inproc, _) = run_with(11, 2, TransportConfig::in_proc());
    let (tcp, _) = run_with(
        11,
        2,
        TransportConfig {
            backend: Backend::Tcp(47230),
            ..TransportConfig::default()
        },
    );
    assert_eq!(inproc.loss.to_bits(), tcp.loss.to_bits());
    assert_eq!(inproc.grads.max_abs_diff(&tcp.grads), 0.0);
}

/// Repeated runs on the same backend are bit-reproducible. This is what
/// makes the cross-backend assertions above meaningful: W-drain timing
/// varies run to run, but the FIFO `pending_w` queue pins the gradient
/// accumulation order to the insertion order regardless of timing.
#[test]
fn repeated_runs_are_deterministic_per_backend() {
    let (inproc, _) = run_with(518, 4, TransportConfig::in_proc());
    let (inproc2, _) = run_with(518, 4, TransportConfig::in_proc());
    assert_eq!(inproc.grads.max_abs_diff(&inproc2.grads), 0.0);
    let mut socket_runs = Vec::new();
    for tag in ["det-a", "det-b"] {
        let dir = uds_dir(tag, 518, 4);
        let (s, _) = run_with(
            518,
            4,
            TransportConfig {
                backend: Backend::Uds(dir.clone()),
                ..TransportConfig::default()
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
        socket_runs.push(s);
    }
    assert_eq!(
        socket_runs[0].grads.max_abs_diff(&socket_runs[1].grads),
        0.0
    );
    assert_eq!(inproc.grads.max_abs_diff(&socket_runs[0].grads), 0.0);
}
