//! Property tests for checkpoint integrity and recovery correctness.
//!
//! Two families:
//!
//! * **Integrity** — random truncations and bit-flips of a serialized
//!   checkpoint are *always* rejected with a typed error, never
//!   partially deserialized (the magic + FNV trailer added for the
//!   control plane's crash-recovery path).
//! * **Recovery** — killing a training run at iteration `k` and
//!   restoring from the last checkpoint replays onto a bit-identical
//!   trajectory: the final loss equals an uninterrupted run's bit for
//!   bit, across the in-process and UDS socket transports.

use proptest::prelude::*;

use mepipe_comm::{Backend, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_train::{
    checkpoint, data::batch_for_iter, params::ModelParams, PipelineRuntime, WgradMode,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any truncation of a valid checkpoint is rejected.
    #[test]
    fn truncations_are_always_rejected(
        seed in 0u64..1000,
        cut_permille in 0usize..1000,
    ) {
        let model = ModelParams::init(TransformerConfig::tiny(2), seed);
        let bytes = checkpoint::save(&model);
        let keep = bytes.len() * cut_permille / 1000;
        prop_assert!(keep < bytes.len());
        prop_assert!(checkpoint::restore(&bytes[..keep]).is_err());
    }

    /// Any single bit-flip anywhere in a valid checkpoint is rejected.
    #[test]
    fn bit_flips_are_always_rejected(
        seed in 0u64..1000,
        pos_permille in 0usize..1000,
        bit in 0usize..8,
    ) {
        let model = ModelParams::init(TransformerConfig::tiny(2), seed);
        let mut bytes = checkpoint::save(&model);
        let pos = bytes.len() * pos_permille / 1000;
        bytes[pos] ^= 1 << bit;
        prop_assert!(checkpoint::restore(&bytes).is_err());
    }
}

/// Runs `iters` training iterations from `start`, stepping the model
/// with SGD, returning the last iteration's loss. Batches derive from
/// the iteration index alone, exactly like the job runner's.
fn run_span(rt: &mut PipelineRuntime, start: usize, iters: usize, seed: u64) -> f64 {
    let cfg = rt.model.cfg;
    let sch = Mepipe::new().generate(&Dims::new(2, 2).slices(4)).unwrap();
    let mut last = f64::NAN;
    for k in start..start + iters {
        let batch = batch_for_iter(&cfg, 2, seed, k);
        let stats = rt
            .train_step(&sch, &batch, WgradMode::DrainOnWait, 0.1)
            .expect("train step");
        last = stats.loss;
    }
    last
}

fn uds_config(tag: &str) -> TransportConfig {
    let dir = std::env::temp_dir().join(format!("mepipe-ckpt-test-{}-{tag}", std::process::id()));
    TransportConfig {
        backend: Backend::Uds(dir),
        ..TransportConfig::in_proc()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill at iteration `k`, restore from the last checkpoint, finish
    /// the job: final loss is bit-identical to an uninterrupted run —
    /// over the in-process transport and over a real UDS socket mesh
    /// (threads of one process on both ends of the sockets).
    #[test]
    fn kill_and_restore_is_bit_identical(
        seed in 0u64..100,
        total in 4usize..7,
        interval in 1usize..4,
        kill_offset in 0usize..3,
        uds in 0usize..2,
    ) {
        let cfg = TransformerConfig { seq_len: 16, ..TransformerConfig::tiny(2) };
        let transport = if uds == 1 {
            uds_config(&format!("{seed}-{total}-{interval}-{kill_offset}"))
        } else {
            TransportConfig::in_proc()
        };

        // Uninterrupted reference.
        let mut reference = PipelineRuntime::new(ModelParams::init(cfg, seed), 2, 1)
            .with_transport(transport.clone());
        let ref_loss = run_span(&mut reference, 0, total, seed);

        // Interrupted run: train to the kill point, checkpointing every
        // `interval` iterations; "crash"; restore the last checkpoint
        // and replay the rest.
        let ckpt_at = interval.min(total - 1);
        let kill_at = (ckpt_at + kill_offset).min(total - 1);
        let mut rt = PipelineRuntime::new(ModelParams::init(cfg, seed), 2, 1)
            .with_transport(transport.clone());
        run_span(&mut rt, 0, ckpt_at, seed);
        let ckpt = checkpoint::save(&rt.model);
        // Work past the checkpoint that the crash will throw away.
        run_span(&mut rt, ckpt_at, kill_at - ckpt_at, seed);
        drop(rt); // the crash

        let restored = checkpoint::restore(&ckpt).expect("restore last checkpoint");
        let mut rt = PipelineRuntime::new(restored, 2, 1).with_transport(transport.clone());
        let final_loss = run_span(&mut rt, ckpt_at, total - ckpt_at, seed);

        prop_assert_eq!(
            ref_loss.to_bits(),
            final_loss.to_bits(),
            "recovered trajectory diverged: {} vs {}", ref_loss, final_loss
        );
    }
}
