//! Tracing must be an observer: a traced run produces bit-identical
//! loss and gradients to an untraced run, on every transport backend.
//!
//! The tracer only reads clocks and writes into a preallocated ring —
//! it never touches tensors or accumulation order — so any divergence
//! here means a record call leaked into the math. The tests also pin
//! down what a trace must *contain*: spans for every op class the
//! schedule ran, and busy/idle numbers that reconcile with the bubble
//! attribution computed from the same spans.

use proptest::prelude::*;

use mepipe_comm::{Backend, TransportConfig};
use mepipe_core::svpp::Mepipe;
use mepipe_model::config::TransformerConfig;
use mepipe_schedule::generator::{Dims, ScheduleGenerator};
use mepipe_tensor::init::synthetic_tokens;
use mepipe_trace::{bubble, SpanKind};
use mepipe_train::{params::ModelParams, PipelineRuntime, RunStats, WgradMode};

fn run_with(seed: u64, stages: usize, tracing: bool, config: TransportConfig) -> RunStats {
    let cfg = TransformerConfig {
        seq_len: 16,
        ..TransformerConfig::tiny(4)
    };
    let micro_batches = stages;
    let schedule = Mepipe::new()
        .generate(&Dims::new(stages, micro_batches).slices(2))
        .unwrap();
    let batch: Vec<Vec<usize>> = (0..micro_batches)
        .map(|i| synthetic_tokens(cfg.seq_len + 1, cfg.vocab, seed + i as u64))
        .collect();
    let rt = PipelineRuntime::new(ModelParams::init(cfg, seed), stages, 1)
        .with_transport(config)
        .with_tracing(tracing);
    rt.run_iteration(&schedule, &batch, WgradMode::DrainOnWait, None)
        .expect("iteration")
}

fn uds_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mepipe-trace-{tag}-{}-{seed}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Traced and untraced runs agree bit-for-bit on InProc and UDS.
    #[test]
    fn tracing_is_bit_invisible(seed in 1u64..1000, stages in prop::sample::select(vec![2usize, 4])) {
        let plain = run_with(seed, stages, false, TransportConfig::in_proc());
        let traced = run_with(seed, stages, true, TransportConfig::in_proc());
        prop_assert_eq!(plain.loss.to_bits(), traced.loss.to_bits(), "inproc loss differs");
        prop_assert_eq!(plain.grads.max_abs_diff(&traced.grads), 0.0, "inproc grads differ");
        prop_assert!(plain.trace.is_none());
        prop_assert!(traced.trace.is_some());

        let dir = uds_dir("plain", seed);
        let uds_plain = run_with(seed, stages, false, TransportConfig {
            backend: Backend::Uds(dir.clone()),
            ..TransportConfig::default()
        });
        let _ = std::fs::remove_dir_all(&dir);
        let dir = uds_dir("traced", seed);
        let uds_traced = run_with(seed, stages, true, TransportConfig {
            backend: Backend::Uds(dir.clone()),
            ..TransportConfig::default()
        });
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(uds_plain.loss.to_bits(), uds_traced.loss.to_bits(), "uds loss differs");
        prop_assert_eq!(uds_plain.grads.max_abs_diff(&uds_traced.grads), 0.0, "uds grads differ");
        prop_assert_eq!(plain.loss.to_bits(), uds_traced.loss.to_bits(), "cross-backend loss differs");
    }
}

/// A trace records every op class the schedule executed, with tags, and
/// nothing was dropped at the default ring capacity.
#[test]
fn trace_contains_every_op_class() {
    let stats = run_with(7, 2, true, TransportConfig::in_proc());
    let trace = stats.trace.expect("trace present");
    assert_eq!(trace.stages.len(), 2);
    for st in &trace.stages {
        assert_eq!(st.dropped, 0, "stage {} dropped spans", st.stage);
        assert!(!st.spans.is_empty());
        // Forward work appears on every stage; so do sends (stage 0
        // sends activations up, stage 1 sends gradients down).
        assert!(st.spans.iter().any(|s| s.kind == SpanKind::Forward));
        assert!(st.spans.iter().any(|s| s.kind == SpanKind::Send));
        // Spans come out chronologically ordered.
        assert!(st.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
    // The MEPipe schedule splits backward, so input-gradient ops and
    // drained (or swept) weight gradients both show up somewhere.
    let all: Vec<SpanKind> = trace
        .stages
        .iter()
        .flat_map(|st| st.spans.iter().map(|s| s.kind))
        .collect();
    assert!(all.contains(&SpanKind::BackwardInput));
    assert!(all.contains(&SpanKind::WgradDrain));
    assert!(all.contains(&SpanKind::RecvWait));
}

/// The trace's compute time equals the runtime's busy counter (same
/// clock, same spans), and bubble attribution reconciles: busy + idle
/// buckets sum to the analysis window for every stage.
#[test]
fn busy_counters_and_bubble_report_reconcile() {
    let stats = run_with(11, 2, true, TransportConfig::in_proc());
    let trace = stats.trace.as_ref().expect("trace present");
    for st in &trace.stages {
        let span_busy = st.busy_ns() as f64 * 1e-9;
        let counted = stats.busy_seconds[st.stage];
        assert!(
            (span_busy - counted).abs() < 1e-6,
            "stage {}: spans say {span_busy}s busy, counter says {counted}s",
            st.stage
        );
    }
    let report = bubble::attribute(trace);
    assert_eq!(report.stages.len(), 2);
    for s in &report.stages {
        assert!(
            (s.busy_s + s.idle.total() - report.makespan_s).abs() < 1e-9,
            "stage {} does not reconcile with the window",
            s.stage
        );
    }
    // Busy/idle are measured even when tracing is off.
    let untraced = run_with(11, 2, false, TransportConfig::in_proc());
    assert!(untraced.busy_seconds.iter().all(|&b| b > 0.0));
    assert!(untraced.busy_seconds.len() == 2 && untraced.idle_seconds.len() == 2);
}
